//! Using the asynchronous DMA copy engine directly: issue copies, overlap
//! them with computation, and find the size where the engine beats the
//! CPU (the paper's Fig. 6 and §7 discussion).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example copy_offload
//! ```

use ioat_sim::memsim::{AddressAllocator, CpuCopier, DmaConfig, DmaEngine, DmaRequest};
use ioat_sim::simcore::Sim;
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    let mut sim = Sim::new();
    let engine = DmaEngine::new_ref(DmaConfig::default(), None);
    let copier = CpuCopier::default();
    let mut alloc = AddressAllocator::new();

    println!("size      cold-CPU-copy   DMA-total   DMA-overhead   overlap");
    for i in 0..=6 {
        let size = 1024u64 << i;
        let req = DmaRequest::new(alloc.alloc(size), alloc.alloc(size));
        let e = engine.borrow();
        println!(
            "{:<8}  {:>10.2}us  {:>9.2}us  {:>11.2}us  {:>6.1}%",
            ioat_simcore::time::units::fmt_bytes(size),
            copier.cold_cost(size, 64).as_micros_f64(),
            e.total_cost(&req).as_micros_f64(),
            e.cpu_overhead(&req).as_micros_f64(),
            e.overlap_fraction(&req) * 100.0,
        );
    }

    // Overlap in action: while the engine moves 64 KB, the "CPU" does
    // other work and only pays the issue overhead.
    let req = DmaRequest::new(alloc.alloc(65_536), alloc.alloc(65_536));
    let done_at = Rc::new(Cell::new(None));
    let d = Rc::clone(&done_at);
    DmaEngine::issue(&engine, &mut sim, req, move |sim| d.set(Some(sim.now())));
    sim.run();
    println!(
        "\n64 KB copy completed at t={} while the CPU was free to process packets",
        done_at.get().expect("copy completed")
    );
}
