//! PVFS scenario: six I/O daemons on one node, compute clients on the
//! other, `pvfs-test`-style concurrent reads and writes over striped
//! files (the paper's §6 environment).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pvfs_striping
//! ```

use ioat_sim::core::IoatConfig;
use ioat_sim::pvfs::harness::{concurrent_read, concurrent_write, PvfsConfig};
use ioat_sim::pvfs::Layout;

fn main() {
    // Show the striping itself first.
    let layout = Layout::default_over(6);
    let pieces = layout.pieces(0, 512 * 1024);
    println!(
        "a 512 KB request splits into {} stripe pieces over 6 servers:",
        pieces.len()
    );
    for p in pieces.iter().take(4) {
        println!(
            "  server {} <- file[{:>7}..{:>7}]",
            p.server,
            p.file_offset,
            p.file_offset + p.len
        );
    }
    println!("  ...");

    for clients in [1usize, 4] {
        for (name, ioat) in [
            ("non-I/OAT", IoatConfig::disabled()),
            ("I/OAT", IoatConfig::full()),
        ] {
            let cfg = PvfsConfig::paper(6, clients, ioat);
            let r = concurrent_read(&cfg);
            let w = concurrent_write(&cfg);
            println!(
                "{clients} client(s) {name:9}: read {:4.0} MB/s (client CPU {:4.1}%) | \
                 write {:4.0} MB/s (server CPU {:4.1}%)",
                r.mbytes_per_sec,
                r.client_cpu * 100.0,
                w.mbytes_per_sec,
                w.server_cpu * 100.0,
            );
        }
    }
}
