//! Data-center scenario: a two-tier proxy + web-server testbed serving a
//! Zipf-distributed static workload with an edge cache, with and without
//! I/OAT on the server nodes (the paper's §5 environment).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example datacenter_zipf
//! ```

use ioat_sim::core::IoatConfig;
use ioat_sim::datacenter::tiers::{run_zipf, DataCenterConfig};

fn main() {
    println!("two-tier data-center, Zipf(0.9) over 10k documents, 512 MB edge cache");
    for (name, ioat) in [
        ("non-I/OAT", IoatConfig::disabled()),
        ("I/OAT", IoatConfig::full()),
    ] {
        let mut cfg = DataCenterConfig::paper(ioat);
        cfg.proxy_cache_bytes = 512 << 20;
        cfg.client_ports = 4;
        cfg.tier_ports = 2;
        let r = run_zipf(&cfg, 0.9, 10_000, 2 * 1024);
        println!(
            "  {name:9}: {:7.0} TPS | proxy CPU {:5.1}% | web CPU {:5.1}% | \
             cache hit {:4.1}% | p50 {:5.0} us | p99 {:6.0} us",
            r.tps,
            r.proxy_cpu * 100.0,
            r.web_cpu * 100.0,
            r.cache_hit_rate * 100.0,
            r.latency_p50_us,
            r.latency_p99_us,
        );
    }
}
