//! Quickstart: build the paper's two-node testbed, stream data over three
//! GigE ports, and compare receiver CPU with and without I/OAT.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ioat_sim::core::microbench::bandwidth::{self, BandwidthConfig};
use ioat_sim::core::IoatConfig;

fn main() {
    let cfg = BandwidthConfig::paper(3);

    let non_ioat = bandwidth::run(&cfg, IoatConfig::disabled());
    let ioat = bandwidth::run(&cfg, IoatConfig::full());

    println!("ttcp bandwidth over 3 GigE ports (64 KB messages)");
    println!(
        "  non-I/OAT: {:7.0} Mbps at {:4.1}% receiver CPU",
        non_ioat.mbps,
        non_ioat.rx_cpu * 100.0
    );
    println!(
        "  I/OAT    : {:7.0} Mbps at {:4.1}% receiver CPU",
        ioat.mbps,
        ioat.rx_cpu * 100.0
    );
    let benefit = (non_ioat.rx_cpu - ioat.rx_cpu) / non_ioat.rx_cpu;
    println!(
        "  relative CPU benefit of I/OAT: {:.1}% (paper reports up to 38%)",
        benefit * 100.0
    );
    assert!(benefit > 0.0, "I/OAT should reduce receiver CPU");
}
