//! Per-component CPU attribution for the receive path (paper Fig. 7).
//!
//! Runs the Fig. 7 streaming configuration at 64 KB with the telemetry
//! tracer on, once without I/OAT and once with the full feature set, and
//! prints where the receive-path CPU time goes — interrupt handling,
//! TCP/IP protocol processing and the kernel-to-user copy — next to the
//! paper's qualitative expectations. Pass a path argument to also write a
//! Perfetto-loadable Chrome trace of the I/OAT run:
//!
//! ```text
//! cargo run --example trace_splitup [trace.json]
//! ```

use ioat_sim::core::metrics::ExperimentWindow;
use ioat_sim::core::microbench::splitup;
use ioat_sim::core::IoatConfig;
use ioat_sim::telemetry::{cpu_splitup, export, Category, SplitupReport, Tracer};

fn run(label: &str, ioat: IoatConfig) -> (SplitupReport, Tracer) {
    let cfg = splitup::SplitupConfig {
        ports: 2,
        window: ExperimentWindow::quick(),
    };
    let tracer = Tracer::enabled();
    let (res, (from, to)) = splitup::run_one_traced(&cfg, ioat, 64 * 1024, &tracer);
    let report = cpu_splitup(&tracer.events(), from, to);
    println!("\n== {label}: 64 KB messages, 2 streaming clients ==");
    print!("{}", report.render_table());
    println!(
        "receiver cpu {:.1}%, goodput {:.0} Mbps, {} trace events",
        res.rx_cpu * 100.0,
        res.mbps,
        tracer.len()
    );
    for (cat, share) in report.receive_path_shares() {
        println!(
            "  {:<10} {:>5.1}% of the CPU receive path",
            cat.name(),
            share * 100.0
        );
    }
    (report, tracer)
}

fn main() {
    let (non, _) = run("non-I/OAT", IoatConfig::disabled());
    let (full, tracer) = run("I/OAT full", IoatConfig::full());

    let copy_non = non.share_among(
        Category::Copy,
        &[Category::Interrupt, Category::Protocol, Category::Copy],
    );
    let copy_full = full.share_among(
        Category::Copy,
        &[Category::Interrupt, Category::Protocol, Category::Copy],
    );
    println!("\n== What I/OAT changes (paper §4.4, Fig. 7) ==");
    println!(
        "kernel-to-user copy share of the CPU receive path: {:.1}% -> {:.1}%",
        copy_non * 100.0,
        copy_full * 100.0
    );
    println!(
        "CPU copy time absorbed by the DMA engine: {:.0} us now run on the dma-chan track",
        full.busy(Category::Dma).as_micros_f64()
    );
    println!("paper expectation: the copy component shrinks the most — the engine");
    println!("moves the bytes while interrupt + protocol work stays on the CPU.");

    if let Some(path) = std::env::args().nth(1) {
        let path = std::path::PathBuf::from(path);
        export::write_chrome_trace(&path, &tracer).expect("write trace");
        println!(
            "\nwrote {} — open at https://ui.perfetto.dev",
            path.display()
        );
    }
}
