//! `ioat-sim` — umbrella crate for the ISPASS 2007 I/OAT reproduction.
//!
//! This crate re-exports the workspace members so examples and integration
//! tests can reach the whole system through a single dependency:
//!
//! * [`simcore`] — deterministic discrete-event kernel.
//! * [`memsim`] — cache / copy / DMA-engine models.
//! * [`netsim`] — links, switch, NIC and TCP/IP stack models.
//! * [`fabric`] — fat-tree/Clos switch fabrics with shared buffers and
//!   deterministic ECMP.
//! * [`core`] — the I/OAT cluster model and micro-benchmark suite.
//! * [`datacenter`] — multi-tier data-center application domain.
//! * [`pvfs`] — parallel virtual file system application domain.
//! * [`telemetry`] — sim-time tracing, metrics and Chrome-trace export.
//! * [`faults`] — deterministic fault injection (loss, overflow, crash
//!   windows) and the retry/failover policies the stack recovers with.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and per-experiment index.

pub use ioat_core as core;
pub use ioat_datacenter as datacenter;
pub use ioat_fabric as fabric;
pub use ioat_faults as faults;
pub use ioat_memsim as memsim;
pub use ioat_netsim as netsim;
pub use ioat_pvfs as pvfs;
pub use ioat_simcore as simcore;
pub use ioat_telemetry as telemetry;
