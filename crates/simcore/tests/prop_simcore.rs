//! Property-based tests for the simulation kernel invariants.

use ioat_simcore::{Histogram, Sim, SimDuration, SimTime, UtilizationMeter};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always execute in non-decreasing time order, and equal-time
    /// events execute in scheduling order, regardless of insertion order.
    #[test]
    fn events_execute_in_time_then_fifo_order(delays in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = Rc::clone(&log);
            sim.schedule(SimDuration::from_nanos(d), move |s| {
                log.borrow_mut().push((s.now().as_nanos(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at equal times");
            }
        }
        // Each event fires at exactly its requested time.
        for &(at, i) in log.iter() {
            prop_assert_eq!(at, delays[i]);
        }
    }

    /// The final clock equals the max scheduled delay.
    #[test]
    fn final_clock_is_last_event_time(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Sim::new();
        for &d in &delays {
            sim.schedule(SimDuration::from_nanos(d), |_| {});
        }
        let end = sim.run();
        prop_assert_eq!(end.as_nanos(), *delays.iter().max().unwrap());
    }

    /// Utilization is always within [0, 1] and busy_between is additive
    /// over a partition of the window.
    #[test]
    fn utilization_meter_is_consistent(
        gaps in prop::collection::vec((0u64..50, 1u64..50), 1..100),
        split in 0u64..5_000,
    ) {
        let mut m = UtilizationMeter::new();
        let mut t = 0u64;
        for &(gap, busy) in &gaps {
            let start = t + gap;
            let end = start + busy;
            m.record(SimTime::from_nanos(start), SimTime::from_nanos(end));
            t = end;
        }
        let total = SimTime::from_nanos(t);
        let u = m.utilization_between(SimTime::ZERO, total);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&u));
        // Additivity across a split point.
        let mid = SimTime::from_nanos(split.min(t));
        let a = m.busy_between(SimTime::ZERO, mid);
        let b = m.busy_between(mid, total);
        prop_assert_eq!(a + b, m.total_busy());
    }

    /// Histogram quantiles are monotone in q and bounded by recorded
    /// extremes (within one sub-bucket of relative error).
    #[test]
    fn histogram_quantiles_are_monotone(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut prev = 0;
        for &q in &qs {
            let x = h.quantile(q);
            prop_assert!(x >= prev, "quantile not monotone");
            prev = x;
        }
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        prop_assert!(h.quantile(1.0) <= max);
        // Lower bound under-estimates by at most one sub-bucket (~3.2%).
        prop_assert!(h.quantile(0.0) as f64 >= min as f64 * 0.96 - 1.0);
    }

    /// Cancelling a random subset of events prevents exactly those events.
    #[test]
    fn cancellation_is_exact(
        n in 1usize..100,
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut sim = Sim::new();
        let fired: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let mut ids = Vec::new();
        for i in 0..n {
            let fired = Rc::clone(&fired);
            ids.push(sim.schedule(SimDuration::from_nanos(i as u64), move |_| {
                fired.borrow_mut().push(i);
            }));
        }
        let mut expect: Vec<usize> = Vec::new();
        for i in 0..n {
            if cancel_mask[i] {
                prop_assert!(sim.cancel(ids[i]));
            } else {
                expect.push(i);
            }
        }
        sim.run();
        prop_assert_eq!(&*fired.borrow(), &expect);
    }
}
