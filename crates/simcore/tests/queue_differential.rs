//! Differential property test for the indexed event queue.
//!
//! The scheduler was rebuilt from `BinaryHeap + pending/cancelled HashSet`
//! tombstoning to a slab-backed indexed priority queue with
//! generation-tagged handles. The determinism contract — events execute in
//! exact `(time, seq)` order, FIFO on ties — must survive the swap. This
//! test drives the real [`Sim`] and a straightforward reference
//! implementation of the *old* design (a `BinaryHeap` ordered by
//! `(time, seq)` plus a cancelled-seq set) through identical seeded
//! operation scripts — schedules with colliding instants, nested
//! scheduling from inside events, interleaved cancels, windowed runs
//! (both the inclusive [`Sim::run_until`] and the exclusive-edge
//! [`Sim::run_before`] used by the conservative parallel engine) — and
//! asserts identical execution order, cancel outcomes, clocks, pending
//! counts, and [`Sim::next_event_at`] lower bounds at every step. All
//! randomness comes from a fixed-seed xorshift generator: no host
//! entropy, bit-reproducible across runs and machines.

use ioat_simcore::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

/// xorshift64* — tiny, seedable, no host entropy.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Reference model of the pre-rewrite scheduler: a min-`BinaryHeap` of
/// `(at, seq)`-ordered entries plus a cancelled-seq tombstone set, exactly
/// the old design minus the compaction plumbing (which never affected
/// execution order, only memory).
struct RefEngine {
    now: u64,
    next_seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    cancelled: HashSet<u64>,
    events: Vec<RefEvent>,
    /// Registration-order handle list, mirroring the real run's handle
    /// list index-for-index.
    handles: Vec<usize>,
    log: Vec<u64>,
}

struct RefEvent {
    seq: u64,
    tag: u64,
    /// `(delta_ns, child_tag)`: on firing, schedule a child.
    child: Option<(u64, u64)>,
    fired: bool,
    cancelled: bool,
}

impl RefEngine {
    fn new() -> Self {
        RefEngine {
            now: 0,
            next_seq: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            events: Vec::new(),
            handles: Vec::new(),
            log: Vec::new(),
        }
    }

    fn schedule(&mut self, delay: u64, tag: u64, child: Option<(u64, u64)>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let at = self.now + delay;
        let idx = self.events.len();
        self.events.push(RefEvent {
            seq,
            tag,
            child,
            fired: false,
            cancelled: false,
        });
        self.heap.push(Reverse((at, seq, idx)));
        self.handles.push(idx);
    }

    fn cancel(&mut self, handle_idx: usize) -> bool {
        let idx = self.handles[handle_idx];
        let ev = &mut self.events[idx];
        if ev.fired || ev.cancelled {
            return false;
        }
        ev.cancelled = true;
        self.cancelled.insert(ev.seq);
        true
    }

    fn pending(&self) -> usize {
        self.events
            .iter()
            .filter(|e| !e.fired && !e.cancelled)
            .count()
    }

    /// The instant of the next live event, draining stale (cancelled)
    /// heap tops on the way — the reference for [`Sim::next_event_at`].
    fn next_event_at(&mut self) -> Option<u64> {
        while let Some(&Reverse((at, seq, _))) = self.heap.peek() {
            if self.cancelled.contains(&seq) {
                self.heap.pop();
                continue;
            }
            return Some(at);
        }
        None
    }

    /// Fires events while `at <= limit` (`inclusive`) or `at < limit`
    /// (the [`Sim::run_before`] window-execution contract: events at
    /// exactly the window edge stay queued), then advances the clock to
    /// the edge either way.
    fn run_window(&mut self, limit: u64, inclusive: bool) {
        while let Some(&Reverse((at, seq, idx))) = self.heap.peek() {
            if self.cancelled.contains(&seq) {
                self.heap.pop();
                continue;
            }
            if at > limit || (!inclusive && at == limit) {
                break;
            }
            self.heap.pop();
            self.now = at;
            self.events[idx].fired = true;
            let tag = self.events[idx].tag;
            self.log.push(tag);
            if let Some((delta, child_tag)) = self.events[idx].child {
                self.schedule(delta, child_tag, None);
            }
        }
        // Mirrors both runners advancing to the window edge.
        self.now = self.now.max(limit);
    }

    fn run_until(&mut self, limit: u64) {
        self.run_window(limit, true);
    }

    fn run_before(&mut self, limit: u64) {
        self.run_window(limit, false);
    }
}

/// Schedules an event on the real [`Sim`] that logs `tag` and, when
/// `child` is set, schedules a logging child and registers its handle —
/// in the same order the reference registers its child.
fn schedule_real(
    sim: &mut Sim,
    delay: u64,
    tag: u64,
    child: Option<(u64, u64)>,
    log: &Rc<RefCell<Vec<u64>>>,
    handles: &Rc<RefCell<Vec<ioat_simcore::EventId>>>,
) {
    let log2 = Rc::clone(log);
    let handles2 = Rc::clone(handles);
    let id = sim.schedule(SimDuration::from_nanos(delay), move |s| {
        log2.borrow_mut().push(tag);
        if let Some((delta, child_tag)) = child {
            let log3 = Rc::clone(&log2);
            let cid = s.schedule(SimDuration::from_nanos(delta), move |_| {
                log3.borrow_mut().push(child_tag);
            });
            handles2.borrow_mut().push(cid);
        }
    });
    handles.borrow_mut().push(id);
}

/// One scripted round: apply `ops` random operations to both engines,
/// checking agreement after every step.
fn run_script(seed: u64, ops: usize) {
    let mut rng = XorShift::new(seed);
    let mut reference = RefEngine::new();
    let mut sim = Sim::new();
    let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let handles: Rc<RefCell<Vec<ioat_simcore::EventId>>> = Rc::new(RefCell::new(Vec::new()));
    let mut next_tag = 0u64;

    for step in 0..ops {
        match rng.below(12) {
            // 0..=5: schedule. Tiny delay range (0..16 ns) forces heavy
            // (time) collisions so the FIFO seq tie-break is exercised;
            // a quarter of events schedule a nested child on firing.
            0..=5 => {
                let delay = rng.below(16);
                let tag = next_tag;
                next_tag += 1;
                let child = if rng.below(4) == 0 {
                    let c = (rng.below(8), next_tag);
                    next_tag += 1;
                    Some(c)
                } else {
                    None
                };
                reference.schedule(delay, tag, child);
                schedule_real(&mut sim, delay, tag, child, &log, &handles);
            }
            // 6..=7: cancel a random previously issued handle (possibly
            // already fired or already cancelled — outcomes must agree).
            6..=7 => {
                let n = handles.borrow().len();
                if n > 0 {
                    let i = rng.below(n as u64) as usize;
                    let id = handles.borrow()[i];
                    let want = reference.cancel(i);
                    let got = sim.cancel(id);
                    assert_eq!(got, want, "seed {seed} step {step}: cancel({i}) outcome");
                }
            }
            // 8..=9: run a short inclusive window.
            8..=9 => {
                let window = rng.below(24);
                let limit = reference.now + window;
                reference.run_until(limit);
                sim.run_until(SimTime::from_nanos(limit));
                assert_eq!(
                    sim.now(),
                    SimTime::from_nanos(reference.now),
                    "seed {seed} step {step}: clock"
                );
            }
            // 10..=11: run a short exclusive-edge window, the
            // conservative parallel engine's execution primitive.
            // Small windows over 0..16 ns delays make edge collisions
            // (an event at exactly `limit`) common, which is the whole
            // point: those events must stay queued.
            _ => {
                let window = rng.below(24);
                let limit = reference.now + window;
                reference.run_before(limit);
                sim.run_before(SimTime::from_nanos(limit));
                assert_eq!(
                    sim.now(),
                    SimTime::from_nanos(reference.now),
                    "seed {seed} step {step}: clock after run_before"
                );
            }
        }
        // The conservative window computation is built on this lower
        // bound, so it must agree with the reference after every op.
        assert_eq!(
            sim.next_event_at().map(|t| t.as_nanos()),
            reference.next_event_at(),
            "seed {seed} step {step}: next_event_at"
        );
        assert_eq!(
            sim.events_pending(),
            reference.pending(),
            "seed {seed} step {step}: pending count"
        );
        if *log.borrow() != reference.log {
            let l = log.borrow();
            let n = l.len().min(reference.log.len());
            let mut i = 0;
            while i < n && l[i] == reference.log[i] {
                i += 1;
            }
            panic!(
                "seed {seed} step {step}: diverge at {i}: real {:?} ref {:?}",
                &l[i.saturating_sub(3)..(i + 5).min(l.len())],
                &reference.log[i.saturating_sub(3)..(i + 5).min(reference.log.len())]
            );
        }
    }

    // Drain both completely and compare the full history.
    let final_limit = reference.now + 1_000;
    reference.run_until(final_limit);
    sim.run_until(SimTime::from_nanos(final_limit));
    assert_eq!(*log.borrow(), reference.log, "seed {seed}: final order");
    assert_eq!(sim.events_pending(), reference.pending(), "seed {seed}");
    assert_eq!(
        sim.events_executed(),
        reference.log.len() as u64,
        "seed {seed}: executed count matches logged events"
    );
}

#[test]
fn indexed_queue_matches_binary_heap_reference() {
    // A spread of fixed seeds; each script is a few hundred operations.
    for seed in [1, 2, 3, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        run_script(seed, 400);
    }
}

#[test]
fn indexed_queue_matches_reference_under_cancel_storms() {
    // Cancel-heavy mix: schedule then immediately cancel most events, so
    // the real queue churns slots/generations while the reference churns
    // tombstones. Order of the survivors must still agree.
    for seed in [7, 11, 13] {
        let mut rng = XorShift::new(seed);
        let mut reference = RefEngine::new();
        let mut sim = Sim::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let handles: Rc<RefCell<Vec<ioat_simcore::EventId>>> = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..2_000u64 {
            let delay = rng.below(32);
            reference.schedule(delay, tag, None);
            schedule_real(&mut sim, delay, tag, None, &log, &handles);
            // Cancel ~15/16ths of everything scheduled so far.
            if rng.below(16) != 0 {
                let i = rng.below(handles.borrow().len() as u64) as usize;
                let id = handles.borrow()[i];
                assert_eq!(sim.cancel(id), reference.cancel(i), "seed {seed} tag {tag}");
            }
            if rng.below(8) == 0 {
                let limit = reference.now + rng.below(16);
                reference.run_until(limit);
                sim.run_until(SimTime::from_nanos(limit));
            }
        }
        let limit = reference.now + 1_000;
        reference.run_until(limit);
        sim.run_until(SimTime::from_nanos(limit));
        assert_eq!(*log.borrow(), reference.log, "seed {seed}: survivor order");
        assert_eq!(sim.events_pending(), 0);
    }
}

#[test]
fn run_before_leaves_window_edge_events_queued() {
    // The exclusive-edge contract, pinned deterministically (no script):
    // events at exactly the window edge must survive a `run_before` and
    // then fire — in seq order — under the inclusive `run_until`. Both
    // engines are checked against each other at every stage.
    let mut reference = RefEngine::new();
    let mut sim = Sim::new();
    let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let handles: Rc<RefCell<Vec<ioat_simcore::EventId>>> = Rc::new(RefCell::new(Vec::new()));
    for (delay, tag) in [(5u64, 0u64), (10, 1), (10, 2), (15, 3)] {
        reference.schedule(delay, tag, None);
        schedule_real(&mut sim, delay, tag, None, &log, &handles);
    }

    reference.run_before(10);
    sim.run_before(SimTime::from_nanos(10));
    assert_eq!(*log.borrow(), vec![0], "only the t=5 event fired");
    assert_eq!(*log.borrow(), reference.log);
    assert_eq!(sim.now(), SimTime::from_nanos(10), "clock is at the edge");
    assert_eq!(
        sim.next_event_at().map(|t| t.as_nanos()),
        Some(10),
        "edge events are still queued"
    );
    assert_eq!(reference.next_event_at(), Some(10));
    assert_eq!(sim.events_pending(), reference.pending());
    assert_eq!(sim.events_pending(), 3);

    // A second run_before at the same edge is a no-op.
    reference.run_before(10);
    sim.run_before(SimTime::from_nanos(10));
    assert_eq!(*log.borrow(), vec![0]);
    assert_eq!(*log.borrow(), reference.log);

    // The inclusive window executes both edge events, FIFO on the tie.
    reference.run_until(10);
    sim.run_until(SimTime::from_nanos(10));
    assert_eq!(*log.borrow(), vec![0, 1, 2], "seq order on the t=10 tie");
    assert_eq!(*log.borrow(), reference.log);
    assert_eq!(sim.next_event_at().map(|t| t.as_nanos()), Some(15));

    // Cancelling the last event makes next_event_at drain to None in
    // both engines.
    let id = handles.borrow()[3];
    assert!(sim.cancel(id));
    assert!(reference.cancel(3));
    assert_eq!(sim.next_event_at(), None);
    assert_eq!(reference.next_event_at(), None);
    reference.run_before(20);
    sim.run_before(SimTime::from_nanos(20));
    assert_eq!(*log.borrow(), vec![0, 1, 2], "cancelled event never fires");
    assert_eq!(*log.borrow(), reference.log);
    assert_eq!(sim.now(), SimTime::from_nanos(20));
}

#[test]
fn coalescer_preempt_pattern_matches_reference() {
    // The rx-coalescer preempt pattern from `ioat-netsim` (the PR 9
    // tail-flush fix): a timer is armed, a full batch preempts it —
    // cancel the armed handle, schedule an immediate (delay-0) flush at
    // the *current* instant, then re-arm a fresh timer at the same
    // relative delay. Cancel and re-schedule collide on the same
    // timestamps constantly; both engines must agree on cancel
    // outcomes, FIFO order of the same-instant survivors, and clocks.
    for seed in [21, 42, 0xC0A1] {
        let mut rng = XorShift::new(seed);
        let mut reference = RefEngine::new();
        let mut sim = Sim::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let handles: Rc<RefCell<Vec<ioat_simcore::EventId>>> = Rc::new(RefCell::new(Vec::new()));
        let mut next_tag = 0u64;
        // Index (into the shared handle list) of the armed timer, if any.
        let mut armed: Option<usize> = None;

        for step in 0..600 {
            match rng.below(8) {
                // Arm: one pending timer at a tiny delay.
                0..=2 => {
                    if armed.is_none() {
                        let delay = rng.below(8);
                        reference.schedule(delay, next_tag, None);
                        schedule_real(&mut sim, delay, next_tag, None, &log, &handles);
                        next_tag += 1;
                        armed = Some(handles.borrow().len() - 1);
                    }
                }
                // Preempt: cancel the timer, flush now (delay 0), re-arm
                // at the same relative delay — three operations at one
                // instant, the RaiseNow path of the coalescer.
                3..=5 => {
                    if let Some(i) = armed.take() {
                        let id = handles.borrow()[i];
                        let want = reference.cancel(i);
                        let got = sim.cancel(id);
                        assert_eq!(got, want, "seed {seed} step {step}: preempt cancel");
                        reference.schedule(0, next_tag, None);
                        schedule_real(&mut sim, 0, next_tag, None, &log, &handles);
                        next_tag += 1;
                        let delay = rng.below(8);
                        reference.schedule(delay, next_tag, None);
                        schedule_real(&mut sim, delay, next_tag, None, &log, &handles);
                        next_tag += 1;
                        armed = Some(handles.borrow().len() - 1);
                    }
                }
                // Advance: short inclusive or exclusive-edge windows; a
                // fired timer is no longer armed.
                _ => {
                    let window = rng.below(12);
                    let limit = reference.now + window;
                    if rng.below(2) == 0 {
                        reference.run_until(limit);
                        sim.run_until(SimTime::from_nanos(limit));
                    } else {
                        reference.run_before(limit);
                        sim.run_before(SimTime::from_nanos(limit));
                    }
                    if let Some(i) = armed {
                        let id = handles.borrow()[i];
                        // Probe without perturbing: a fired timer cannot
                        // be cancelled in either engine.
                        let fired = reference.events[reference.handles[i]].fired;
                        if fired {
                            assert!(!sim.cancel(id), "seed {seed} step {step}: fired probe");
                            assert!(!reference.cancel(i));
                            armed = None;
                        }
                    }
                }
            }
            assert_eq!(
                sim.next_event_at().map(|t| t.as_nanos()),
                reference.next_event_at(),
                "seed {seed} step {step}: next_event_at"
            );
            assert_eq!(
                sim.events_pending(),
                reference.pending(),
                "seed {seed} step {step}"
            );
            assert_eq!(
                *log.borrow(),
                reference.log,
                "seed {seed} step {step}: order"
            );
        }
        let limit = reference.now + 1_000;
        reference.run_until(limit);
        sim.run_until(SimTime::from_nanos(limit));
        assert_eq!(*log.borrow(), reference.log, "seed {seed}: final order");
    }
}
