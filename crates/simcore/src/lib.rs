//! Deterministic discrete-event simulation kernel for `ioat-sim`.
//!
//! This crate provides the substrate every other `ioat-sim` crate builds on:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) with unit helpers (bytes, bandwidths, frequencies).
//! * [`engine`] — the event loop ([`Sim`]): a binary heap of scheduled
//!   closures with deterministic tie-breaking, event cancellation and
//!   run-until-limit execution.
//! * [`resource`] — non-preemptive serialized resources ([`Resource`]) used
//!   to model CPU cores, DMA channels and link transmitters, plus
//!   utilization accounting over measurement windows.
//! * [`stats`] — counters, rate meters, summaries and log-scale histograms.
//! * [`rng`] — a seedable, reproducible random-number source.
//!
//! # Example
//!
//! ```rust
//! use ioat_simcore::{Sim, SimDuration};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let mut sim = Sim::new();
//! let fired = Rc::new(Cell::new(0u32));
//! let f = Rc::clone(&fired);
//! sim.schedule(SimDuration::from_micros(5), move |_sim| {
//!     f.set(f.get() + 1);
//! });
//! sim.run();
//! assert_eq!(fired.get(), 1);
//! assert_eq!(sim.now().as_nanos(), 5_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod hash;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{EventId, Sim};
pub use hash::{stable_mix, FastHashMap, FastHashSet};
pub use resource::{Resource, ResourceRef, UtilizationMeter};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, RateMeter, Summary};
pub use time::{SimDuration, SimTime};
