//! Seedable, reproducible randomness for simulations.
//!
//! All stochastic model decisions (workload sampling, think times) draw
//! from a [`SimRng`]. Experiments construct one from an explicit seed so
//! every run — and every figure in `EXPERIMENTS.md` — is reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number source.
///
/// Wraps [`rand::rngs::SmallRng`] and adds the distribution helpers the
/// workloads need (exponential inter-arrivals, discrete choices). A
/// `SimRng` can be `fork`ed to give each model component an independent
/// stream that does not perturb the others when one component draws more.
///
/// ```rust
/// use ioat_simcore::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream; the parent advances by one draw.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.gen::<u64>() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// method). A zero or negative mean returns 0.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // 1 - uniform() is in (0, 1]; ln of it is finite.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Picks an index in `[0, weights.len())` proportional to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty slice");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut parent1 = SimRng::seed_from(1);
        let mut parent2 = SimRng::seed_from(1);
        let mut fork1 = parent1.fork();
        let mut fork2 = parent2.fork();
        assert_eq!(fork1.next_u64(), fork2.next_u64());
        assert_ne!(fork1.next_u64(), parent1.next_u64());
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from(99);
        let n = 50_000;
        let mean = 10.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() / mean < 0.03, "empirical mean {emp}");
        assert_eq!(rng.exponential(0.0), 0.0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1_000 {
            let v = rng.range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = SimRng::seed_from(11);
        let weights = [1.0, 0.0, 3.0];
        let mut hits = [0u32; 3];
        for _ in 0..40_000 {
            hits[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(hits[1], 0);
        let frac = hits[2] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-3.0));
        assert!(rng.chance(4.0));
    }
}
