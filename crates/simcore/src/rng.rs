//! Seedable, reproducible randomness for simulations.
//!
//! All stochastic model decisions (workload sampling, think times) draw
//! from a [`SimRng`]. Experiments construct one from an explicit seed so
//! every run — and every figure in `EXPERIMENTS.md` — is reproducible.
//!
//! The generator is a self-contained xoshiro256++ (the algorithm behind
//! `rand 0.8`'s `SmallRng` on 64-bit targets), seeded through SplitMix64
//! exactly as `SeedableRng::seed_from_u64` does, so historic streams are
//! preserved without a registry dependency.

/// A deterministic random-number source.
///
/// Implements xoshiro256++ with the distribution helpers the workloads
/// need (exponential inter-arrivals, discrete choices). A `SimRng` can be
/// `fork`ed to give each model component an independent stream that does
/// not perturb the others when one component draws more.
///
/// ```rust
/// use ioat_simcore::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step: advances `state` and returns the mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, as in
    /// `rand`'s `seed_from_u64`).
    pub fn seed_from(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four zero words from any seed, but guard anyway.
        if s == [0; 4] {
            return SimRng::seed_from(0x9e37_79b9_7f4a_7c15);
        }
        SimRng { s }
    }

    /// Derives an independent stream; the parent advances by one draw.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Derives the `stream_id`-th stream of a seed family *without* any
    /// shared mutable parent: `stream(seed, a)` and `stream(seed, b)` are
    /// statistically independent for `a != b`, and neither consumes draws
    /// from any other generator. This is how the fault layer obtains
    /// per-link RNG streams that cannot perturb workload streams seeded
    /// from the same experiment seed.
    pub fn stream(seed: u64, stream_id: u64) -> SimRng {
        // Two SplitMix64 mixes with the stream id injected between them:
        // a single xor of the raw id would map adjacent ids to correlated
        // xoshiro seeds; the second mix decorrelates them.
        let mut st = seed;
        let mixed = splitmix64(&mut st);
        let mut st2 = mixed ^ stream_id;
        SimRng::seed_from(splitmix64(&mut st2))
    }

    /// Next raw 64-bit value (xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` (53 high bits, as `rand`'s `Standard`).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` (Lemire widening-multiply rejection,
    /// matching `rand 0.8`'s single-sample `gen_range`).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let range = hi - lo;
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let m = u128::from(self.next_u64()) * u128::from(range);
            let high = (m >> 64) as u64;
            let low = m as u64;
            if low <= zone {
                return lo + high;
            }
        }
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// method). A zero or negative mean returns 0.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // 1 - uniform() is in (0, 1]; ln of it is finite.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Picks an index in `[0, weights.len())` proportional to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty slice");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Snapshot of the internal state — equal states produce equal future
    /// streams. Used by determinism tests to prove two runs consumed the
    /// generator identically.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_reference_vectors() {
        // First outputs of rand 0.8 SmallRng::seed_from_u64(0) on x86_64,
        // i.e. SplitMix64-seeded xoshiro256++. Computed from the published
        // reference algorithms; pins the stream across refactors.
        let mut st = 0u64;
        let s0 = splitmix64(&mut st);
        assert_eq!(s0, 0xe220_a839_7b1d_cdaf); // SplitMix64(0) first output
        let mut rng = SimRng::seed_from(0);
        let first = rng.next_u64();
        // xoshiro256++ first output = rotl(s0 + s3, 23) + s0 on the seeded state.
        let mut st2 = 0u64;
        let q = [
            splitmix64(&mut st2),
            splitmix64(&mut st2),
            splitmix64(&mut st2),
            splitmix64(&mut st2),
        ];
        let expect = q[0].wrapping_add(q[3]).rotate_left(23).wrapping_add(q[0]);
        assert_eq!(first, expect);
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut parent1 = SimRng::seed_from(1);
        let mut parent2 = SimRng::seed_from(1);
        let mut fork1 = parent1.fork();
        let mut fork2 = parent2.fork();
        assert_eq!(fork1.next_u64(), fork2.next_u64());
        assert_ne!(fork1.next_u64(), parent1.next_u64());
    }

    #[test]
    fn stream_split_is_deterministic_and_distinct() {
        let mut a = SimRng::stream(42, 0);
        let mut a2 = SimRng::stream(42, 0);
        let mut b = SimRng::stream(42, 1);
        let mut c = SimRng::stream(43, 0);
        let (x, x2, y, z) = (a.next_u64(), a2.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, x2, "same (seed, stream) must replay");
        assert_ne!(x, y, "adjacent stream ids must diverge");
        assert_ne!(x, z, "different seeds must diverge");
        // A split stream must also differ from the plain seeded stream so
        // fault draws never alias workload draws.
        assert_ne!(x, SimRng::seed_from(42).next_u64());
    }

    #[test]
    fn stream_split_does_not_perturb_workload_streams() {
        // Consuming arbitrarily many draws from a fault stream leaves a
        // workload generator seeded from the same experiment seed on the
        // exact same trajectory.
        let mut workload_ref = SimRng::seed_from(0xFEED);
        let reference: Vec<u64> = (0..64).map(|_| workload_ref.next_u64()).collect();

        let mut fault = SimRng::stream(0xFEED, 7);
        let mut workload = SimRng::seed_from(0xFEED);
        let mut observed = Vec::new();
        for i in 0..64 {
            for _ in 0..(i % 5) {
                fault.next_u64(); // interleaved fault draws
            }
            observed.push(workload.next_u64());
        }
        assert_eq!(observed, reference);
    }

    #[test]
    fn stream_split_streams_are_statistically_uncorrelated() {
        // Crude independence check: adjacent stream ids should agree on a
        // bit-position about half the time, not systematically.
        let mut a = SimRng::stream(9, 100);
        let mut b = SimRng::stream(9, 101);
        let mut matching_bits = 0u32;
        let samples = 1_000;
        for _ in 0..samples {
            matching_bits += (a.next_u64() ^ b.next_u64()).count_zeros();
        }
        let frac = f64::from(matching_bits) / (samples as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit agreement {frac}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from(99);
        let n = 50_000;
        let mean = 10.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() / mean < 0.03, "empirical mean {emp}");
        assert_eq!(rng.exponential(0.0), 0.0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1_000 {
            let v = rng.range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SimRng::seed_from(17);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.range(0, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = SimRng::seed_from(11);
        let weights = [1.0, 0.0, 3.0];
        let mut hits = [0u32; 3];
        for _ in 0..40_000 {
            hits[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(hits[1], 0);
        let frac = hits[2] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-3.0));
        assert!(rng.chance(4.0));
    }

    #[test]
    fn state_snapshot_pins_future_stream() {
        let mut a = SimRng::seed_from(23);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.state(), b.state());
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.state(), SimRng::seed_from(23).state());
    }
}
