//! Serialized resources and utilization accounting.
//!
//! A [`Resource`] models anything that can do one thing at a time: a CPU
//! core, a DMA channel, a link transmitter, a disk head. Work is submitted
//! as `(duration, completion-action)` pairs; the resource executes jobs
//! back-to-back in FIFO order and records its busy intervals so that
//! experiments can compute utilization over an arbitrary measurement
//! window — the paper's headline "CPU utilization" metric.

use crate::engine::Sim;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle to a [`Resource`].
///
/// Model components capture clones of this in event closures; the
/// simulation is single-threaded, so `Rc<RefCell<_>>` is the right tool.
pub type ResourceRef = Rc<RefCell<Resource>>;

/// Accumulates non-overlapping busy intervals and answers utilization
/// queries over arbitrary windows.
///
/// Intervals must be reported in non-decreasing start order (which a FIFO
/// resource guarantees); adjacent intervals are merged so a saturated
/// resource costs O(1) memory.
#[derive(Debug, Clone, Default)]
pub struct UtilizationMeter {
    /// Closed-open busy intervals, sorted, non-overlapping, merged.
    intervals: Vec<(SimTime, SimTime)>,
    total_busy: SimDuration,
}

impl UtilizationMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or if `start` precedes the end of the last
    /// recorded interval (busy intervals on a serialized resource never
    /// overlap).
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        assert!(start <= end, "busy interval ends before it starts");
        if start == end {
            return;
        }
        if let Some(last) = self.intervals.last_mut() {
            assert!(
                start >= last.1,
                "busy intervals must be reported in order: {start} < {}",
                last.1
            );
            if start == last.1 {
                last.1 = end;
                self.total_busy += end - start;
                return;
            }
        }
        self.total_busy += end - start;
        self.intervals.push((start, end));
    }

    /// Total busy time ever recorded.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Busy time that falls inside `[from, to)`.
    pub fn busy_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        if to <= from {
            return SimDuration::ZERO;
        }
        // Binary search for the first interval that might intersect.
        let idx = self.intervals.partition_point(|&(_, end)| end <= from);
        let mut busy = SimDuration::ZERO;
        for &(s, e) in &self.intervals[idx..] {
            if s >= to {
                break;
            }
            let lo = s.max(from);
            let hi = e.min(to);
            if hi > lo {
                busy += hi - lo;
            }
        }
        busy
    }

    /// Fraction of `[from, to)` this resource was busy, in `[0, 1]`.
    pub fn utilization_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        self.busy_between(from, to).as_nanos() as f64 / (to - from).as_nanos() as f64
    }
}

/// A non-preemptive FIFO server.
///
/// Jobs submitted while the resource is busy queue implicitly: each new job
/// starts at `max(now, busy_until)`. The completion action is scheduled on
/// the simulator at the job's finish time.
///
/// ```rust
/// use ioat_simcore::{Resource, Sim, SimDuration};
///
/// let mut sim = Sim::new();
/// let core = Resource::new_ref("cpu0");
/// // Two 10us jobs submitted together finish at 10us and 20us.
/// core.borrow_mut().run_job(&mut sim, SimDuration::from_micros(10), |_| {});
/// let done = core
///     .borrow_mut()
///     .run_job(&mut sim, SimDuration::from_micros(10), |_| {});
/// assert_eq!(done.as_nanos(), 20_000);
/// sim.run();
/// ```
#[derive(Debug)]
pub struct Resource {
    name: String,
    busy_until: SimTime,
    meter: UtilizationMeter,
    jobs_completed: u64,
}

impl Resource {
    /// Creates a resource that is idle at time zero.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            busy_until: SimTime::ZERO,
            meter: UtilizationMeter::new(),
            jobs_completed: 0,
        }
    }

    /// Creates a shared handle to a new resource.
    pub fn new_ref(name: impl Into<String>) -> ResourceRef {
        Rc::new(RefCell::new(Resource::new(name)))
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instant at which all currently queued work completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// True when the resource has no queued work at the current instant.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Queueing delay a job submitted now would experience before starting.
    pub fn backlog_at(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_duration_since(now)
    }

    /// Number of jobs that have been submitted (the completion action may
    /// not have fired yet for the most recent ones).
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    /// Submits a job of length `duration`; `on_complete` fires when it
    /// finishes. Returns the completion instant.
    ///
    /// Zero-length jobs complete "now" (their action is still scheduled
    /// through the event queue to preserve FIFO ordering with other events).
    pub fn run_job<F>(&mut self, sim: &mut Sim, duration: SimDuration, on_complete: F) -> SimTime
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let start = self.busy_until.max(sim.now());
        let end = start + duration;
        self.meter.record(start, end);
        self.busy_until = end;
        self.jobs_completed += 1;
        sim.schedule_at(end, on_complete);
        end
    }

    /// Submits a job without a completion callback; the busy time is still
    /// accounted. Returns the completion instant.
    pub fn consume(&mut self, sim: &mut Sim, duration: SimDuration) -> SimTime {
        let start = self.busy_until.max(sim.now());
        let end = start + duration;
        self.meter.record(start, end);
        self.busy_until = end;
        self.jobs_completed += 1;
        end
    }

    /// Busy-time accounting for this resource.
    pub fn meter(&self) -> &UtilizationMeter {
        &self.meter
    }
}

/// A pool of identical serialized resources (e.g. the cores of a node).
///
/// The pool dispatches to the member with the shortest backlog, which is
/// how the simulated OS spreads application threads across cores while the
/// receive path stays pinned to a designated interrupt core.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    members: Vec<ResourceRef>,
}

impl ResourcePool {
    /// Creates a pool of `n` resources named `{prefix}{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(prefix: &str, n: usize) -> Self {
        assert!(n > 0, "a resource pool needs at least one member");
        ResourcePool {
            members: (0..n)
                .map(|i| Resource::new_ref(format!("{prefix}{i}")))
                .collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the pool somehow has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Shared handle to member `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn member(&self, idx: usize) -> &ResourceRef {
        &self.members[idx]
    }

    /// All members.
    pub fn members(&self) -> &[ResourceRef] {
        &self.members
    }

    /// The member with the least queued work at `now` (ties broken by
    /// lowest index, keeping runs deterministic).
    pub fn least_loaded(&self, now: SimTime) -> &ResourceRef {
        self.member(self.least_loaded_index(now))
    }

    /// Index of the member [`ResourcePool::least_loaded`] would pick —
    /// for callers that also need to attribute the work to a core.
    pub fn least_loaded_index(&self, now: SimTime) -> usize {
        self.members
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.borrow().backlog_at(now))
            .expect("pool is non-empty")
            .0
    }

    /// Aggregate busy time across members within `[from, to)`.
    pub fn busy_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        self.members
            .iter()
            .map(|r| r.borrow().meter().busy_between(from, to))
            .sum()
    }

    /// Mean utilization across all members within `[from, to)` — the
    /// paper's "overall CPU utilization" for a node.
    pub fn utilization_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let window = (to - from).as_nanos() as f64 * self.members.len() as f64;
        self.busy_between(from, to).as_nanos() as f64 / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_serialize_fifo() {
        let mut sim = Sim::new();
        let r = Resource::new_ref("r");
        let d = SimDuration::from_micros(10);
        let t1 = r.borrow_mut().run_job(&mut sim, d, |_| {});
        let t2 = r.borrow_mut().run_job(&mut sim, d, |_| {});
        assert_eq!(t1, SimTime::from_micros(10));
        assert_eq!(t2, SimTime::from_micros(20));
        sim.run();
        assert_eq!(r.borrow().jobs_completed(), 2);
        assert_eq!(r.borrow().meter().total_busy(), d * 2);
    }

    #[test]
    fn idle_gaps_do_not_count_as_busy() {
        let mut sim = Sim::new();
        let r = Resource::new_ref("r");
        let rr = Rc::clone(&r);
        r.borrow_mut()
            .run_job(&mut sim, SimDuration::from_micros(1), move |sim| {
                // Resubmit after a 9us idle gap.
                sim.schedule(SimDuration::from_micros(9), move |sim| {
                    rr.borrow_mut()
                        .run_job(sim, SimDuration::from_micros(1), |_| {});
                });
            });
        sim.run();
        let m = r.borrow();
        let meter = m.meter();
        assert_eq!(meter.total_busy(), SimDuration::from_micros(2));
        let util = meter.utilization_between(SimTime::ZERO, SimTime::from_micros(11));
        assert!((util - 2.0 / 11.0).abs() < 1e-9, "util = {util}");
    }

    #[test]
    fn utilization_window_clips_intervals() {
        let mut m = UtilizationMeter::new();
        m.record(SimTime::from_nanos(10), SimTime::from_nanos(20));
        m.record(SimTime::from_nanos(30), SimTime::from_nanos(40));
        // Window covering half of each interval.
        let busy = m.busy_between(SimTime::from_nanos(15), SimTime::from_nanos(35));
        assert_eq!(busy, SimDuration::from_nanos(10));
        assert_eq!(
            m.busy_between(SimTime::from_nanos(20), SimTime::from_nanos(30)),
            SimDuration::ZERO
        );
        assert_eq!(
            m.busy_between(SimTime::from_nanos(40), SimTime::from_nanos(10)),
            SimDuration::ZERO,
            "inverted window is empty"
        );
    }

    #[test]
    fn adjacent_intervals_merge() {
        let mut m = UtilizationMeter::new();
        m.record(SimTime::from_nanos(0), SimTime::from_nanos(10));
        m.record(SimTime::from_nanos(10), SimTime::from_nanos(20));
        assert_eq!(m.intervals.len(), 1);
        assert_eq!(m.total_busy(), SimDuration::from_nanos(20));
    }

    #[test]
    #[should_panic(expected = "must be reported in order")]
    fn overlapping_intervals_panic() {
        let mut m = UtilizationMeter::new();
        m.record(SimTime::from_nanos(0), SimTime::from_nanos(10));
        m.record(SimTime::from_nanos(5), SimTime::from_nanos(15));
    }

    #[test]
    fn pool_dispatches_to_least_loaded() {
        let mut sim = Sim::new();
        let pool = ResourcePool::new("core", 2);
        pool.member(0)
            .borrow_mut()
            .run_job(&mut sim, SimDuration::from_micros(100), |_| {});
        let pick = pool.least_loaded(sim.now());
        assert_eq!(pick.borrow().name(), "core1");
        pick.borrow_mut()
            .run_job(&mut sim, SimDuration::from_micros(10), |_| {});
        sim.run();
        // Overall utilization over 100us on 2 cores: (100 + 10) / 200.
        let u = pool.utilization_between(SimTime::ZERO, SimTime::from_micros(100));
        assert!((u - 0.55).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn consume_accounts_busy_without_callback() {
        let mut sim = Sim::new();
        let r = Resource::new_ref("r");
        let end = r.borrow_mut().consume(&mut sim, SimDuration::from_nanos(7));
        assert_eq!(end, SimTime::from_nanos(7));
        assert_eq!(r.borrow().meter().total_busy(), SimDuration::from_nanos(7));
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn backlog_reflects_queued_work() {
        let mut sim = Sim::new();
        let r = Resource::new_ref("r");
        assert!(r.borrow().is_idle_at(sim.now()));
        r.borrow_mut()
            .run_job(&mut sim, SimDuration::from_micros(3), |_| {});
        assert_eq!(
            r.borrow().backlog_at(SimTime::ZERO),
            SimDuration::from_micros(3)
        );
        assert!(!r.borrow().is_idle_at(SimTime::ZERO));
        assert!(r.borrow().is_idle_at(SimTime::from_micros(3)));
    }
}
