//! The discrete-event loop.
//!
//! [`Sim`] owns an indexed priority queue of scheduled actions. Each
//! action is a boxed `FnOnce(&mut Sim)`; model components live in
//! `Rc<RefCell<_>>` cells that the closures capture. Two events scheduled
//! for the same instant execute in scheduling order (FIFO tie-break on a
//! monotonically increasing sequence number), which makes every run
//! bit-reproducible.
//!
//! # Queue internals
//!
//! The queue is a slab-backed indexed binary min-heap:
//!
//! * Every scheduled event owns a **slab slot** holding its boxed action;
//!   slots are recycled through a free list, so steady-state scheduling
//!   allocates nothing beyond the action box itself.
//! * The **heap** orders small plain-data entries by `(time, seq)` — the
//!   classic FIFO-on-ties contract. Entries never move between slots, and
//!   the hot pop path does one slab index per event — no hash lookups.
//! * [`Sim::cancel`] is an O(1) **slot invalidation**: the action is
//!   dropped immediately (so a cancelled far-future timer releases
//!   everything its closure captured right away), the slot's generation is
//!   bumped and the slot returns to the free list. The heap entry stays
//!   behind as a small stale entry that the pop loop skips when its
//!   time comes; a compaction sweep bounds how many such entries can
//!   accumulate (see [`Sim::tombstones`]).
//! * **Generations** make handles ABA-safe: a recycled slot gets a new
//!   generation, so a stale [`EventId`] held by model code can never
//!   cancel an unrelated later event.

use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// An opaque handle identifying a scheduled event, usable with
/// [`Sim::cancel`].
///
/// Internally a `(slot, generation)` pair into the scheduler's slab;
/// generation tagging makes stale handles inert rather than dangerous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

type Action = Box<dyn FnOnce(&mut Sim)>;

/// Observer invoked for every executed event (see [`Sim::set_event_hook`]).
type EventHook = Rc<RefCell<dyn FnMut(SimTime, u64)>>;

/// Stale-entry count that triggers a heap compaction sweep. Below this the
/// linear sweep costs more than the memory it reclaims.
const COMPACT_MIN_STALE: usize = 1024;

/// One slab slot: the current generation plus the scheduled action.
/// `action` is `None` while the slot sits on the free list.
///
/// `rekey_at` marks a deferred event (see [`Sim::schedule_deferred`])
/// still waiting at its key instant: when its heap entry surfaces, the
/// scheduler re-inserts it at `rekey_at` with a freshly drawn seq instead
/// of executing it.
struct Slot {
    gen: u32,
    rekey_at: Option<SimTime>,
    action: Option<Action>,
}

/// A heap entry: plain data, 24 bytes, ordered by `(at, seq)`. The
/// `(slot, gen)` pair locates the action; a generation mismatch marks the
/// entry stale (its event was cancelled).
#[derive(Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A hand-rolled binary min-heap over [`HeapEntry`]s. `std`'s
/// `BinaryHeap` would need an inverted `Ord` wrapper and offers no
/// in-place retain-and-rebuild; this keeps the hot path free of both.
#[derive(Default)]
struct EventHeap {
    entries: Vec<HeapEntry>,
}

impl EventHeap {
    #[inline]
    fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn peek(&self) -> Option<&HeapEntry> {
        self.entries.first()
    }

    #[inline]
    fn push(&mut self, e: HeapEntry) {
        self.entries.push(e);
        self.sift_up(self.entries.len() - 1);
    }

    #[inline]
    fn pop(&mut self) -> Option<HeapEntry> {
        let n = self.entries.len();
        match n {
            0 => None,
            1 => self.entries.pop(),
            _ => {
                self.entries.swap(0, n - 1);
                let top = self.entries.pop();
                self.sift_down(0);
                top
            }
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].key() < self.entries[parent].key() {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let mut smallest = if self.entries[l].key() < self.entries[i].key() {
                l
            } else {
                i
            };
            if r < n && self.entries[r].key() < self.entries[smallest].key() {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
    }

    /// Drops every entry failing `keep`, then re-heapifies in place.
    fn retain_rebuild(&mut self, keep: impl Fn(&HeapEntry) -> bool) {
        self.entries.retain(|e| keep(e));
        // Classic bottom-up heapify: O(n).
        for i in (0..self.entries.len() / 2).rev() {
            self.sift_down(i);
        }
    }
}

/// The discrete-event simulator.
///
/// # Example
///
/// ```rust
/// use ioat_simcore::{Sim, SimDuration};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Sim::new();
/// let order = Rc::new(RefCell::new(Vec::new()));
///
/// let o = Rc::clone(&order);
/// sim.schedule(SimDuration::from_nanos(10), move |_| o.borrow_mut().push("late"));
/// let o = Rc::clone(&order);
/// sim.schedule(SimDuration::from_nanos(5), move |_| o.borrow_mut().push("early"));
///
/// sim.run();
/// assert_eq!(*order.borrow(), ["early", "late"]);
/// ```
pub struct Sim {
    now: SimTime,
    next_seq: u64,
    heap: EventHeap,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Live (scheduled, not fired, not cancelled) events.
    live: usize,
    /// Stale heap entries left behind by cancellations.
    stale: usize,
    executed: u64,
    /// Monotonic count of every event ever scheduled. Unlike `stale`,
    /// never decremented — together with `cancelled` it backs the
    /// queue-health audit `scheduled = fired + cancelled + live`.
    scheduled: u64,
    /// Monotonic count of successful cancellations.
    cancelled: u64,
    /// Hard cap on executed events; guards against accidental infinite
    /// event loops in model code.
    event_limit: u64,
    /// Optional per-event observer (telemetry). `None` costs nothing on
    /// the hot path; when set, it is called with `(time, seq)` before each
    /// action runs and cannot touch the simulator, so it cannot perturb
    /// execution order.
    hook: Option<EventHook>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("executed", &self.executed)
            .finish()
    }
}

impl Sim {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: EventHeap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            stale: 0,
            executed: 0,
            scheduled: 0,
            cancelled: 0,
            event_limit: u64::MAX,
            hook: None,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events ever scheduled (monotonic).
    pub fn events_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Number of events successfully cancelled (monotonic — unlike the
    /// stale-entry count, which drains as tombstones are swept).
    pub fn events_cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Number of *live* events still pending. Cancelled events are
    /// excluded — callers sizing remaining work must not see phantom
    /// entries (they did before the indexed queue, when this counted
    /// cancellation tombstones too).
    pub fn events_pending(&self) -> usize {
        self.live
    }

    /// Number of stale (cancelled) entries still occupying heap slots.
    /// Their actions were already dropped at cancel time; what remains is
    /// a few dozen bytes of ordering data each, bounded by the compaction sweep in
    /// [`Sim::cancel`]. Exposed for regression tests and diagnostics.
    pub fn tombstones(&self) -> usize {
        self.stale
    }

    /// Installs an observer called with `(time, seq)` for every executed
    /// event, replacing any previous hook. The observer deliberately gets
    /// no simulator access: it can record, not perturb.
    pub fn set_event_hook(&mut self, hook: impl FnMut(SimTime, u64) + 'static) {
        self.hook = Some(Rc::new(RefCell::new(hook)));
    }

    /// Removes the event observer.
    pub fn clear_event_hook(&mut self) {
        self.hook = None;
    }

    /// Caps the total number of events this simulator will execute.
    ///
    /// Exceeding the cap makes [`Sim::run`] panic, which turns a silent
    /// infinite event loop in model code into a loud test failure.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Schedules `action` to run `delay` after the current instant.
    pub fn schedule<F>(&mut self, delay: SimDuration, action: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules `action` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past; models must never schedule
    /// backwards in time.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        assert!(
            at >= self.now,
            "schedule_at: target {at} is before now {}",
            self.now
        );
        self.push_event(at, None, Box::new(action))
    }

    /// Schedules `action` to fire at `fire_at`, ordered among same-instant
    /// ties *as if* an intermediate relay event at the earlier instant
    /// `key_at` had scheduled it.
    ///
    /// This exists for models that can compute a two-stage delay up front
    /// (e.g. a link's serialize-then-propagate wire model): instead of
    /// paying a full relay event at `key_at` — a boxed closure whose only
    /// job is to call `schedule_at(fire_at, action)` — the action is
    /// enqueued once, at `key_at`, and when its entry surfaces at the top
    /// of the heap the scheduler re-inserts it at `fire_at` with a seq
    /// drawn at that moment. The heap-key sequence this produces is
    /// identical to the relay formulation step for step, so execution
    /// order is bit-identical — but no relay closure is allocated, no
    /// relay event executes (it does not count toward
    /// [`Sim::events_executed`], the event limit, or the event hook), and
    /// the slab slot is reused across both phases, so the returned
    /// [`EventId`] stays valid for [`Sim::cancel`] throughout.
    ///
    /// # Panics
    ///
    /// Panics unless `now <= key_at <= fire_at`.
    pub fn schedule_deferred<F>(&mut self, key_at: SimTime, fire_at: SimTime, action: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        assert!(
            key_at >= self.now,
            "schedule_deferred: key instant {key_at} is before now {}",
            self.now
        );
        assert!(
            fire_at >= key_at,
            "schedule_deferred: fire instant {fire_at} is before key instant {key_at}"
        );
        self.push_event(key_at, Some(fire_at), Box::new(action))
    }

    fn push_event(&mut self, at: SimTime, rekey_at: Option<SimTime>, action: Action) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.action.is_none(), "free-listed slot holds an action");
                s.action = Some(action);
                s.rekey_at = rekey_at;
                (slot, s.gen)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
                self.slots.push(Slot {
                    gen: 0,
                    rekey_at,
                    action: Some(action),
                });
                (slot, 0)
            }
        };
        self.heap.push(HeapEntry { at, seq, slot, gen });
        self.live += 1;
        self.scheduled += 1;
        EventId { slot, gen }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (and will now never
    /// fire); `false` if it already executed or was already cancelled.
    /// The action — and everything its closure captured — is dropped
    /// immediately; only a small stale ordering entry stays in the heap
    /// until its instant passes or a compaction sweep removes it. O(1)
    /// amortized.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && s.action.is_some() => {
                s.action = None;
                s.gen = s.gen.wrapping_add(1);
                self.free.push(id.slot);
                self.live -= 1;
                self.stale += 1;
                self.cancelled += 1;
                self.maybe_compact();
                true
            }
            _ => false,
        }
    }

    /// Releases a slot after its event fired, returning the action.
    #[inline]
    fn take_fired(&mut self, slot: u32) -> Action {
        let s = &mut self.slots[slot as usize];
        let action = s.action.take().expect("live heap entry has an action");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        action
    }

    /// Sweeps stale entries out of the heap once they pile up.
    ///
    /// `pop_next` drains a stale entry when its time comes, and its boxed
    /// action was already dropped at cancel time — but a heavily
    /// cancel-churning model could still accumulate unbounded small
    /// ordering entries for far-future instants. Amortized O(1): each
    /// sweep is O(heap) but removes at least half the heap's entries.
    fn maybe_compact(&mut self) {
        if self.stale >= COMPACT_MIN_STALE && self.stale * 2 >= self.heap.len() {
            let slots = &self.slots;
            self.heap
                .retain_rebuild(|e| slots[e.slot as usize].gen == e.gen);
            self.stale = 0;
        }
    }

    /// If the heap top is a live deferred entry still at its key instant,
    /// re-inserts it at its fire time with a freshly drawn seq — the exact
    /// seq an executing relay event would have drawn at this moment — and
    /// returns `true`. The slab slot (and thus the event's [`EventId`]) is
    /// untouched. Callers must have drained stale tops first (via
    /// [`Sim::peek_next_at`]).
    fn rekey_top(&mut self) -> bool {
        match self.heap.peek() {
            Some(top) if self.slots[top.slot as usize].rekey_at.is_some() => {
                debug_assert_eq!(self.slots[top.slot as usize].gen, top.gen);
                let e = self.heap.pop().expect("peeked entry exists");
                let fire_at = self.slots[e.slot as usize]
                    .rekey_at
                    .take()
                    .expect("checked above");
                debug_assert!(fire_at >= e.at, "deferred fire instant before key");
                let seq = self.next_seq;
                self.next_seq += 1;
                self.heap.push(HeapEntry {
                    at: fire_at,
                    seq,
                    slot: e.slot,
                    gen: e.gen,
                });
                true
            }
            _ => false,
        }
    }

    fn pop_next(&mut self) -> Option<(SimTime, u64, Action)> {
        while let Some(e) = self.heap.pop() {
            if self.slots[e.slot as usize].gen != e.gen {
                self.stale -= 1;
                continue;
            }
            let action = self.take_fired(e.slot);
            return Some((e.at, e.seq, action));
        }
        None
    }

    /// The instant of the next *live* event, draining any stale entries
    /// sitting on top of the heap. A plain peek would report a cancelled
    /// event's time, and `run_until` would then execute a live event
    /// scheduled beyond its window edge.
    fn peek_next_at(&mut self) -> Option<SimTime> {
        while let Some(top) = self.heap.peek() {
            if self.slots[top.slot as usize].gen == top.gen {
                return Some(top.at);
            }
            self.heap.pop();
            self.stale -= 1;
        }
        None
    }

    /// Bumps the executed-event counter and enforces the event limit.
    fn count_executed(&mut self) {
        self.executed += 1;
        assert!(
            self.executed <= self.event_limit,
            "event limit {} exceeded at t={} — possible event loop",
            self.event_limit,
            self.now
        );
    }

    /// Runs until the event queue drains. Returns the final instant.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded (see
    /// [`Sim::set_event_limit`]).
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the next event would fire after
    /// `limit`. Events at exactly `limit` do execute; the clock never
    /// advances past `limit` while events remain beyond it.
    ///
    /// When the run stops inside the window — because the queue drained or
    /// only later events remain — the clock still advances to `limit`
    /// (unless `limit` is [`SimTime::MAX`], i.e. "run to completion"), so
    /// elapsed-window accounting is identical whether or not the model had
    /// events near the edge. Callers measuring rates over
    /// `run_until(a)..run_until(b)` windows rely on this.
    pub fn run_until(&mut self, limit: SimTime) -> SimTime {
        while let Some(next_at) = self.peek_next_at() {
            if next_at > limit {
                break;
            }
            // A deferred entry reaching the top at its key instant is
            // re-inserted at its fire time, not executed (see
            // `schedule_deferred`). Its fire time may lie beyond `limit`,
            // so loop back to re-peek rather than popping blindly.
            if self.rekey_top() {
                continue;
            }
            let (at, seq, action) = self.pop_next().expect("peek_next_at saw a live event");
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            self.count_executed();
            if let Some(hook) = self.hook.clone() {
                (hook.borrow_mut())(at, seq);
            }
            action(self);
        }
        // Advance to the window edge on every stop path (drained queue
        // included); only the run-to-completion sentinel is excluded.
        if limit != SimTime::MAX {
            self.now = self.now.max(limit);
        }
        self.now
    }

    /// Runs every event strictly before `limit` — events at exactly
    /// `limit` stay queued — then advances the clock to `limit`.
    ///
    /// This is the window-execution primitive for conservative parallel
    /// simulation: a partition granted the window `[now, limit)` may
    /// execute everything before the window edge, while events *at* the
    /// edge must wait for cross-partition deliveries that can legally
    /// fire at that same instant (the lookahead bound guarantees nothing
    /// earlier can arrive). Contrast [`Sim::run_until`], whose window is
    /// inclusive.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded (see
    /// [`Sim::set_event_limit`]).
    pub fn run_before(&mut self, limit: SimTime) -> SimTime {
        while let Some(next_at) = self.peek_next_at() {
            if next_at >= limit {
                break;
            }
            // Deferred entries re-key at their fire time rather than
            // executing — identical to `run_until`.
            if self.rekey_top() {
                continue;
            }
            let (at, seq, action) = self.pop_next().expect("peek_next_at saw a live event");
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            self.count_executed();
            if let Some(hook) = self.hook.clone() {
                (hook.borrow_mut())(at, seq);
            }
            action(self);
        }
        self.now = self.now.max(limit);
        self.now
    }

    /// The instant of the next pending event, or `None` if the queue is
    /// drained.
    ///
    /// For a deferred entry still at its key instant (see
    /// [`Sim::schedule_deferred`]) this reports the *key* instant — a
    /// conservative lower bound on when the event can fire. Conservative
    /// window computations built on this value produce windows that are
    /// never too large (only, occasionally, smaller than necessary).
    ///
    /// Takes `&mut self` because stale (cancelled) heap tops are drained
    /// on the way; the model state is untouched.
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        self.peek_next_at()
    }

    /// Runs a single event if one is pending, returning `true` if an event
    /// executed. Useful for fine-grained test assertions.
    ///
    /// Deferred entries still at their key instant (see
    /// [`Sim::schedule_deferred`]) are re-keyed transparently on the way:
    /// they do not count as the step's event.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded, exactly like
    /// [`Sim::run`] — a runaway event loop driven one `step` at a time
    /// must fail just as loudly.
    pub fn step(&mut self) -> bool {
        loop {
            if self.peek_next_at().is_none() {
                return false;
            }
            if self.rekey_top() {
                continue;
            }
            let (at, seq, action) = self.pop_next().expect("peek_next_at saw a live event");
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            self.count_executed();
            if let Some(hook) = self.hook.clone() {
                (hook.borrow_mut())(at, seq);
            }
            action(self);
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[allow(clippy::type_complexity)]
    fn recorder() -> (
        Rc<RefCell<Vec<u64>>>,
        impl Fn(u64) -> Box<dyn FnOnce(&mut Sim)>,
    ) {
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = Rc::clone(&log);
        let mk = move |tag: u64| -> Box<dyn FnOnce(&mut Sim)> {
            let log = Rc::clone(&log2);
            Box::new(move |_s: &mut Sim| log.borrow_mut().push(tag))
        };
        (log, mk)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(30), mk(3));
        sim.schedule(SimDuration::from_nanos(10), mk(1));
        sim.schedule(SimDuration::from_nanos(20), mk(2));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_nanos(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        for tag in 0..100 {
            sim.schedule(SimDuration::from_nanos(5), mk(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_from_inside_events() {
        let mut sim = Sim::new();
        let count = Rc::new(RefCell::new(0u32));
        let c = Rc::clone(&count);
        fn tick(sim: &mut Sim, c: Rc<RefCell<u32>>, left: u32) {
            *c.borrow_mut() += 1;
            if left > 0 {
                let c2 = Rc::clone(&c);
                sim.schedule(SimDuration::from_nanos(7), move |s| tick(s, c2, left - 1));
            }
        }
        sim.schedule(SimDuration::ZERO, move |s| tick(s, c, 9));
        sim.run();
        assert_eq!(*count.borrow(), 10);
        assert_eq!(sim.now(), SimTime::from_nanos(63));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let keep = sim.schedule(SimDuration::from_nanos(1), mk(1));
        let drop_id = sim.schedule(SimDuration::from_nanos(2), mk(2));
        assert!(sim.cancel(drop_id));
        assert!(!sim.cancel(drop_id), "double-cancel reports false");
        sim.run();
        assert_eq!(*log.borrow(), vec![1]);
        assert!(!sim.cancel(keep), "cancelling an executed event is false");
    }

    #[test]
    fn scheduled_and_cancelled_counters_are_monotonic_and_balance() {
        // The queue-health identity the ioat-guard audit checks:
        // scheduled = fired + cancelled + live, at any quiescent point.
        // `stale` cannot back this audit — it drains as tombstones sweep.
        let mut sim = Sim::new();
        let (_log, mk) = recorder();
        let balance = |sim: &Sim| {
            assert_eq!(
                sim.events_scheduled(),
                sim.events_executed() + sim.events_cancelled() + sim.events_pending() as u64
            );
        };
        balance(&sim);
        let ids: Vec<_> = (0..10)
            .map(|i| sim.schedule(SimDuration::from_nanos(10 + i), mk(i)))
            .collect();
        assert_eq!(sim.events_scheduled(), 10);
        balance(&sim);
        for id in &ids[..4] {
            assert!(sim.cancel(*id));
        }
        assert!(!sim.cancel(ids[0]), "double cancel does not re-count");
        assert_eq!(sim.events_cancelled(), 4);
        balance(&sim);
        sim.run();
        assert_eq!(sim.events_executed(), 6);
        assert_eq!(sim.events_scheduled(), 10, "monotonic across the run");
        balance(&sim);
    }

    #[test]
    fn events_pending_counts_live_events_only() {
        // Regression: events_pending() used to include cancelled
        // tombstones, so callers saw phantom work.
        let mut sim = Sim::new();
        let (_log, mk) = recorder();
        let _keep = sim.schedule(SimDuration::from_nanos(1), mk(1));
        let a = sim.schedule(SimDuration::from_nanos(2), mk(2));
        let b = sim.schedule(SimDuration::from_nanos(3), mk(3));
        assert_eq!(sim.events_pending(), 3);
        assert!(sim.cancel(a));
        assert!(sim.cancel(b));
        assert_eq!(sim.events_pending(), 1, "cancelled events are not pending");
        assert_eq!(sim.tombstones(), 2, "stale entries tracked separately");
        sim.run();
        assert_eq!(sim.events_pending(), 0);
        assert_eq!(sim.tombstones(), 0, "stale entries drain with the run");
    }

    #[test]
    fn stale_handles_are_inert_after_slot_reuse() {
        // Generation tagging: a handle kept past its event's lifetime must
        // not cancel the unrelated event that recycled the slot.
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let old = sim.schedule(SimDuration::from_nanos(1), mk(1));
        assert!(sim.cancel(old), "first cancel succeeds");
        // The slot is recycled by the next schedule.
        let fresh = sim.schedule(SimDuration::from_nanos(2), mk(2));
        assert!(!sim.cancel(old), "stale handle must not hit the new event");
        sim.run();
        assert_eq!(*log.borrow(), vec![2], "recycled event still fires");
        assert!(!sim.cancel(fresh), "fired event cannot be cancelled");
    }

    #[test]
    fn run_until_stops_at_window_edge() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(10), mk(1));
        sim.schedule(SimDuration::from_nanos(20), mk(2));
        sim.schedule(SimDuration::from_nanos(30), mk(3));
        sim.run_until(SimTime::from_nanos(20));
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule(SimDuration::from_nanos(10), |s| {
            s.schedule_at(SimTime::from_nanos(5), |_| {});
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaway_loops() {
        let mut sim = Sim::new();
        sim.set_event_limit(1_000);
        fn forever(sim: &mut Sim) {
            sim.schedule(SimDuration::from_nanos(1), forever);
        }
        sim.schedule(SimDuration::ZERO, forever);
        sim.run();
    }

    #[test]
    fn cancel_heavy_runs_stay_bounded() {
        // Regression: cancelled far-future events used to keep their boxed
        // closure until their scheduled instant, so a schedule/cancel/run
        // loop grew without bound. With the indexed queue the action drops
        // at cancel time and the compaction sweep bounds the small stale
        // ordering entries.
        let mut sim = Sim::new();
        let cycles = 20 * COMPACT_MIN_STALE;
        for i in 0..cycles {
            // A far-future event that is always cancelled...
            let id = sim.schedule(SimDuration::from_secs(3600), |_| {
                panic!("cancelled event must never fire")
            });
            assert!(sim.cancel(id));
            // ...and a near event that actually runs.
            sim.schedule(SimDuration::from_nanos(1), |_| {});
            sim.run_until(sim.now() + SimDuration::from_nanos(1));
            assert!(
                sim.events_pending() <= 1,
                "live count grew to {} after {} cycles",
                sim.events_pending(),
                i + 1
            );
            let bound = 2 * COMPACT_MIN_STALE + 2;
            assert!(
                sim.tombstones() <= bound,
                "stale entries grew to {} after {} cycles",
                sim.tombstones(),
                i + 1
            );
        }
        assert_eq!(sim.events_executed(), cycles as u64);
        // Draining the queue afterwards must not fire any cancelled event.
        sim.run();
    }

    #[test]
    fn compaction_preserves_live_events() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        // One live event wedged between many cancelled ones, forcing a
        // sweep while it is in the heap.
        sim.schedule(SimDuration::from_nanos(50), mk(42));
        for _ in 0..4 * COMPACT_MIN_STALE {
            let id = sim.schedule(SimDuration::from_secs(10), mk(0));
            sim.cancel(id);
        }
        assert!(sim.tombstones() < 4 * COMPACT_MIN_STALE);
        sim.run();
        assert_eq!(*log.borrow(), vec![42]);
    }

    #[test]
    fn event_hook_observes_every_event() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let seen: Rc<RefCell<Vec<(SimTime, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        sim.set_event_hook(move |at, seq| s.borrow_mut().push((at, seq)));
        sim.schedule(SimDuration::from_nanos(10), mk(1));
        sim.schedule(SimDuration::from_nanos(20), mk(2));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(
            *seen.borrow(),
            vec![(SimTime::from_nanos(10), 0), (SimTime::from_nanos(20), 1)]
        );
        sim.clear_event_hook();
        sim.schedule(SimDuration::from_nanos(5), mk(3));
        sim.run();
        assert_eq!(seen.borrow().len(), 2, "cleared hook sees nothing");
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_applies_to_step_driven_loops() {
        // Regression: `step()` incremented `executed` without checking the
        // limit, so a runaway loop driven one step at a time spun forever.
        let mut sim = Sim::new();
        sim.set_event_limit(1_000);
        fn forever(sim: &mut Sim) {
            sim.schedule(SimDuration::from_nanos(1), forever);
        }
        sim.schedule(SimDuration::ZERO, forever);
        while sim.step() {}
    }

    #[test]
    fn run_until_advances_clock_when_queue_drains() {
        // Regression: with an empty (or drained) queue `run_until(limit)`
        // left `now` behind `limit`, so elapsed-window accounting differed
        // between "no events" and "events beyond the edge" stop paths.
        let mut sim = Sim::new();
        assert_eq!(
            sim.run_until(SimTime::from_nanos(100)),
            SimTime::from_nanos(100),
            "empty queue still advances to the window edge"
        );
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(50), mk(1));
        assert_eq!(
            sim.run_until(SimTime::from_nanos(400)),
            SimTime::from_nanos(400),
            "drained queue advances past the last event to the edge"
        );
        assert_eq!(*log.borrow(), vec![1]);
        // The run-to-completion sentinel is excluded: `run()` must report
        // the last event's instant, not SimTime::MAX.
        sim.schedule(SimDuration::from_nanos(7), mk(2));
        assert_eq!(sim.run(), SimTime::from_nanos(407));
    }

    #[test]
    fn run_until_advances_clock_when_future_events_remain() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(500), mk(9));
        assert_eq!(
            sim.run_until(SimTime::from_nanos(200)),
            SimTime::from_nanos(200)
        );
        assert!(log.borrow().is_empty());
        sim.run();
        assert_eq!(*log.borrow(), vec![9]);
    }

    #[test]
    fn run_until_ignores_cancelled_events_at_heap_top() {
        // A cancelled event inside the window must not let a live event
        // beyond the window execute: peeking has to skip stale entries.
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let id = sim.schedule(SimDuration::from_nanos(5), mk(1));
        sim.schedule(SimDuration::from_nanos(50), mk(2));
        sim.cancel(id);
        sim.run_until(SimTime::from_nanos(10));
        assert!(
            log.borrow().is_empty(),
            "the live event at t=50 must not run inside a t<=10 window"
        );
        assert_eq!(sim.now(), SimTime::from_nanos(10));
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    fn deferred_events_tie_break_at_their_key_instant() {
        // schedule_deferred(key_at, fire_at, ..) must order among
        // same-instant ties exactly as if a relay event at key_at had
        // scheduled it: after events drawn before key_at, before events
        // drawn after key_at.
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        // Drawn at t=0 for t=20: before the deferred (draw time 0 < 10).
        sim.schedule(SimDuration::from_nanos(20), mk(1));
        // Deferred: fires at 20, keyed at 10.
        sim.schedule_deferred(SimTime::from_nanos(10), SimTime::from_nanos(20), mk(3));
        // Drawn at t=5 for t=20: still before the deferred (5 < 10).
        let b = mk(2);
        sim.schedule(SimDuration::from_nanos(5), move |s| {
            s.schedule(SimDuration::from_nanos(15), b);
        });
        // Drawn at t=15 for t=20: after the deferred (15 > 10).
        let d = mk(4);
        sim.schedule(SimDuration::from_nanos(15), move |s| {
            s.schedule(SimDuration::from_nanos(5), d);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn deferred_events_order_by_relay_seq_among_same_key_instant() {
        // Ties at the same key instant resolve by the executing order the
        // phantom relay events would have had: the deferred's own seq
        // against the seqs of events executing at key_at.
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        // e1 (seq 0) executes at t=10 and draws for t=30.
        let a = mk(1);
        sim.schedule(SimDuration::from_nanos(10), move |s| {
            s.schedule(SimDuration::from_nanos(20), a);
        });
        // Deferred (seq 1): relay would execute at t=10 between e1 and e2.
        sim.schedule_deferred(SimTime::from_nanos(10), SimTime::from_nanos(30), mk(2));
        // e2 (seq 2) executes at t=10 and draws for t=30.
        let c = mk(3);
        sim.schedule(SimDuration::from_nanos(10), move |s| {
            s.schedule(SimDuration::from_nanos(20), c);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn deferred_matches_relay_event_formulation() {
        // Differential check: schedule_deferred(k, f, a) behaves exactly
        // like schedule_at(k, |s| s.schedule_at(f, a)) — same execution
        // order against a same-instant competitor — minus the relay event
        // (events_executed differs by exactly one).
        let run = |deferred: bool| -> (Vec<u64>, u64) {
            let mut sim = Sim::new();
            let (log, mk) = recorder();
            let competitor = mk(7);
            sim.schedule(SimDuration::from_nanos(12), move |s| {
                s.schedule(SimDuration::from_nanos(8), competitor);
            });
            let payload = mk(9);
            if deferred {
                sim.schedule_deferred(SimTime::from_nanos(10), SimTime::from_nanos(20), payload);
            } else {
                sim.schedule_at(SimTime::from_nanos(10), move |s| {
                    s.schedule_at(SimTime::from_nanos(20), payload);
                });
            }
            sim.run();
            let order = log.borrow().clone();
            (order, sim.events_executed())
        };
        let (with_relay, relay_events) = run(false);
        let (with_deferred, deferred_events) = run(true);
        assert_eq!(with_relay, with_deferred);
        assert_eq!(with_relay, vec![9, 7], "keyed at 10 beats drawn-at-12");
        assert_eq!(relay_events, deferred_events + 1, "one event saved");
    }

    #[test]
    #[should_panic(expected = "fire instant")]
    fn deferred_fire_before_key_panics() {
        let mut sim = Sim::new();
        sim.schedule_deferred(SimTime::from_nanos(10), SimTime::from_nanos(5), |_| {});
    }

    #[test]
    fn step_executes_one_event() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(1), mk(1));
        sim.schedule(SimDuration::from_nanos(2), mk(2));
        assert!(sim.step());
        assert_eq!(*log.borrow(), vec![1]);
        assert!(sim.step());
        assert!(!sim.step());
    }
}
