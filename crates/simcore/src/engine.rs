//! The discrete-event loop.
//!
//! [`Sim`] owns a priority queue of scheduled actions. Each action is a
//! boxed `FnOnce(&mut Sim)`; model components live in `Rc<RefCell<_>>`
//! cells that the closures capture. Two events scheduled for the same
//! instant execute in scheduling order (FIFO tie-break on a monotonically
//! increasing sequence number), which makes every run bit-reproducible.

use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

/// An opaque handle identifying a scheduled event, usable with
/// [`Sim::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Action = Box<dyn FnOnce(&mut Sim)>;

/// Observer invoked for every executed event (see [`Sim::set_event_hook`]).
type EventHook = Rc<RefCell<dyn FnMut(SimTime, u64)>>;

/// Tombstone count that triggers a queue compaction sweep. Below this the
/// linear sweep costs more than the memory it reclaims.
const COMPACT_MIN_TOMBSTONES: usize = 1024;

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event simulator.
///
/// # Example
///
/// ```rust
/// use ioat_simcore::{Sim, SimDuration};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Sim::new();
/// let order = Rc::new(RefCell::new(Vec::new()));
///
/// let o = Rc::clone(&order);
/// sim.schedule(SimDuration::from_nanos(10), move |_| o.borrow_mut().push("late"));
/// let o = Rc::clone(&order);
/// sim.schedule(SimDuration::from_nanos(5), move |_| o.borrow_mut().push("early"));
///
/// sim.run();
/// assert_eq!(*order.borrow(), ["early", "late"]);
/// ```
pub struct Sim {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Scheduled>,
    /// Seqs of events currently in the queue (not yet fired or cancelled).
    pending: HashSet<u64>,
    cancelled: HashSet<u64>,
    executed: u64,
    /// Hard cap on executed events; guards against accidental infinite
    /// event loops in model code.
    event_limit: u64,
    /// Optional per-event observer (telemetry). `None` costs nothing on
    /// the hot path; when set, it is called with `(time, seq)` before each
    /// action runs and cannot touch the simulator, so it cannot perturb
    /// execution order.
    hook: Option<EventHook>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Sim {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            next_seq: 0,
            queue: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            executed: 0,
            event_limit: u64::MAX,
            hook: None,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of cancelled events still occupying queue slots. Bounded by
    /// the compaction sweep in [`Sim::cancel`]; exposed for regression
    /// tests and diagnostics.
    pub fn tombstones(&self) -> usize {
        self.cancelled.len()
    }

    /// Installs an observer called with `(time, seq)` for every executed
    /// event, replacing any previous hook. The observer deliberately gets
    /// no simulator access: it can record, not perturb.
    pub fn set_event_hook(&mut self, hook: impl FnMut(SimTime, u64) + 'static) {
        self.hook = Some(Rc::new(RefCell::new(hook)));
    }

    /// Removes the event observer.
    pub fn clear_event_hook(&mut self) {
        self.hook = None;
    }

    /// Caps the total number of events this simulator will execute.
    ///
    /// Exceeding the cap makes [`Sim::run`] panic, which turns a silent
    /// infinite event loop in model code into a loud test failure.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Schedules `action` to run `delay` after the current instant.
    pub fn schedule<F>(&mut self, delay: SimDuration, action: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Schedules `action` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past; models must never schedule
    /// backwards in time.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventId
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        assert!(
            at >= self.now,
            "schedule_at: target {at} is before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.queue.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (and will now never
    /// fire); `false` if it already executed or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // The heap cannot be searched cheaply; leave a tombstone that the
        // pop loop skips. Only events still pending can be cancelled.
        if !self.pending.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        self.maybe_compact();
        true
    }

    /// Sweeps cancelled entries out of the heap once tombstones pile up.
    ///
    /// `pop_next` already drains a tombstone when its time comes, but a
    /// cancelled far-future event (a retransmit timer that never fires,
    /// say) would otherwise hold its boxed closure — and everything the
    /// closure captures — until that instant. Long cancel-heavy runs grew
    /// without bound before this sweep. Amortized O(1): each sweep is
    /// O(queue) but removes at least half the queue's tombstones.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() >= COMPACT_MIN_TOMBSTONES
            && self.cancelled.len() * 2 >= self.queue.len()
        {
            let cancelled = std::mem::take(&mut self.cancelled);
            self.queue.retain(|ev| !cancelled.contains(&ev.seq));
        }
    }

    fn pop_next(&mut self) -> Option<Scheduled> {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.pending.remove(&ev.seq);
            return Some(ev);
        }
        None
    }

    /// The instant of the next *live* event, draining any cancelled
    /// tombstones sitting on top of the heap. A plain `queue.peek()` would
    /// report a tombstone's time, and `run_until` would then execute a
    /// live event scheduled beyond its window edge.
    fn peek_next_at(&mut self) -> Option<SimTime> {
        while let Some(top) = self.queue.peek() {
            if !self.cancelled.contains(&top.seq) {
                return Some(top.at);
            }
            let ev = self.queue.pop().expect("peeked entry exists");
            self.cancelled.remove(&ev.seq);
        }
        None
    }

    /// Bumps the executed-event counter and enforces the event limit.
    fn count_executed(&mut self) {
        self.executed += 1;
        assert!(
            self.executed <= self.event_limit,
            "event limit {} exceeded at t={} — possible event loop",
            self.event_limit,
            self.now
        );
    }

    /// Runs until the event queue drains. Returns the final instant.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded (see
    /// [`Sim::set_event_limit`]).
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or the next event would fire after
    /// `limit`. Events at exactly `limit` do execute; the clock never
    /// advances past `limit` while events remain beyond it.
    ///
    /// When the run stops inside the window — because the queue drained or
    /// only later events remain — the clock still advances to `limit`
    /// (unless `limit` is [`SimTime::MAX`], i.e. "run to completion"), so
    /// elapsed-window accounting is identical whether or not the model had
    /// events near the edge. Callers measuring rates over
    /// `run_until(a)..run_until(b)` windows rely on this.
    pub fn run_until(&mut self, limit: SimTime) -> SimTime {
        while let Some(next_at) = self.peek_next_at() {
            if next_at > limit {
                break;
            }
            let ev = self.pop_next().expect("peek_next_at saw a live event");
            debug_assert!(ev.at >= self.now, "event time went backwards");
            self.now = ev.at;
            self.count_executed();
            if let Some(hook) = self.hook.clone() {
                (hook.borrow_mut())(ev.at, ev.seq);
            }
            (ev.action)(self);
        }
        // Advance to the window edge on every stop path (drained queue
        // included); only the run-to-completion sentinel is excluded.
        if limit != SimTime::MAX {
            self.now = self.now.max(limit);
        }
        self.now
    }

    /// Runs a single event if one is pending, returning `true` if an event
    /// executed. Useful for fine-grained test assertions.
    ///
    /// # Panics
    ///
    /// Panics if the configured event limit is exceeded, exactly like
    /// [`Sim::run`] — a runaway event loop driven one `step` at a time
    /// must fail just as loudly.
    pub fn step(&mut self) -> bool {
        if let Some(ev) = self.pop_next() {
            self.now = ev.at;
            self.count_executed();
            if let Some(hook) = self.hook.clone() {
                (hook.borrow_mut())(ev.at, ev.seq);
            }
            (ev.action)(self);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[allow(clippy::type_complexity)]
    fn recorder() -> (
        Rc<RefCell<Vec<u64>>>,
        impl Fn(u64) -> Box<dyn FnOnce(&mut Sim)>,
    ) {
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let log2 = Rc::clone(&log);
        let mk = move |tag: u64| -> Box<dyn FnOnce(&mut Sim)> {
            let log = Rc::clone(&log2);
            Box::new(move |_s: &mut Sim| log.borrow_mut().push(tag))
        };
        (log, mk)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(30), mk(3));
        sim.schedule(SimDuration::from_nanos(10), mk(1));
        sim.schedule(SimDuration::from_nanos(20), mk(2));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_nanos(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        for tag in 0..100 {
            sim.schedule(SimDuration::from_nanos(5), mk(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_from_inside_events() {
        let mut sim = Sim::new();
        let count = Rc::new(RefCell::new(0u32));
        let c = Rc::clone(&count);
        fn tick(sim: &mut Sim, c: Rc<RefCell<u32>>, left: u32) {
            *c.borrow_mut() += 1;
            if left > 0 {
                let c2 = Rc::clone(&c);
                sim.schedule(SimDuration::from_nanos(7), move |s| tick(s, c2, left - 1));
            }
        }
        sim.schedule(SimDuration::ZERO, move |s| tick(s, c, 9));
        sim.run();
        assert_eq!(*count.borrow(), 10);
        assert_eq!(sim.now(), SimTime::from_nanos(63));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let keep = sim.schedule(SimDuration::from_nanos(1), mk(1));
        let drop_id = sim.schedule(SimDuration::from_nanos(2), mk(2));
        assert!(sim.cancel(drop_id));
        assert!(!sim.cancel(drop_id), "double-cancel reports false");
        sim.run();
        assert_eq!(*log.borrow(), vec![1]);
        assert!(!sim.cancel(keep), "cancelling an executed event is false");
    }

    #[test]
    fn run_until_stops_at_window_edge() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(10), mk(1));
        sim.schedule(SimDuration::from_nanos(20), mk(2));
        sim.schedule(SimDuration::from_nanos(30), mk(3));
        sim.run_until(SimTime::from_nanos(20));
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule(SimDuration::from_nanos(10), |s| {
            s.schedule_at(SimTime::from_nanos(5), |_| {});
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaway_loops() {
        let mut sim = Sim::new();
        sim.set_event_limit(1_000);
        fn forever(sim: &mut Sim) {
            sim.schedule(SimDuration::from_nanos(1), forever);
        }
        sim.schedule(SimDuration::ZERO, forever);
        sim.run();
    }

    #[test]
    fn cancel_heavy_runs_stay_bounded() {
        // Regression: cancelled far-future events used to keep their heap
        // slot (and boxed closure) until their scheduled instant, so a
        // schedule/cancel/run loop grew the queue without bound.
        let mut sim = Sim::new();
        let cycles = 20 * COMPACT_MIN_TOMBSTONES;
        for i in 0..cycles {
            // A far-future event that is always cancelled...
            let id = sim.schedule(SimDuration::from_secs(3600), |_| {
                panic!("cancelled event must never fire")
            });
            assert!(sim.cancel(id));
            // ...and a near event that actually runs.
            sim.schedule(SimDuration::from_nanos(1), |_| {});
            sim.run_until(sim.now() + SimDuration::from_nanos(1));
            let bound = 2 * COMPACT_MIN_TOMBSTONES + 2;
            assert!(
                sim.events_pending() <= bound,
                "queue grew to {} after {} cycles",
                sim.events_pending(),
                i + 1
            );
            assert!(sim.tombstones() <= bound);
        }
        assert_eq!(sim.events_executed(), cycles as u64);
        // Draining the queue afterwards must not fire any cancelled event.
        sim.run();
    }

    #[test]
    fn compaction_preserves_live_events() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        // One live event wedged between many cancelled ones, forcing a
        // sweep while it is in the heap.
        sim.schedule(SimDuration::from_nanos(50), mk(42));
        for _ in 0..4 * COMPACT_MIN_TOMBSTONES {
            let id = sim.schedule(SimDuration::from_secs(10), mk(0));
            sim.cancel(id);
        }
        assert!(sim.events_pending() < 4 * COMPACT_MIN_TOMBSTONES);
        sim.run();
        assert_eq!(*log.borrow(), vec![42]);
    }

    #[test]
    fn event_hook_observes_every_event() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let seen: Rc<RefCell<Vec<(SimTime, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        sim.set_event_hook(move |at, seq| s.borrow_mut().push((at, seq)));
        sim.schedule(SimDuration::from_nanos(10), mk(1));
        sim.schedule(SimDuration::from_nanos(20), mk(2));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(
            *seen.borrow(),
            vec![(SimTime::from_nanos(10), 0), (SimTime::from_nanos(20), 1)]
        );
        sim.clear_event_hook();
        sim.schedule(SimDuration::from_nanos(5), mk(3));
        sim.run();
        assert_eq!(seen.borrow().len(), 2, "cleared hook sees nothing");
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_applies_to_step_driven_loops() {
        // Regression: `step()` incremented `executed` without checking the
        // limit, so a runaway loop driven one step at a time spun forever.
        let mut sim = Sim::new();
        sim.set_event_limit(1_000);
        fn forever(sim: &mut Sim) {
            sim.schedule(SimDuration::from_nanos(1), forever);
        }
        sim.schedule(SimDuration::ZERO, forever);
        while sim.step() {}
    }

    #[test]
    fn run_until_advances_clock_when_queue_drains() {
        // Regression: with an empty (or drained) queue `run_until(limit)`
        // left `now` behind `limit`, so elapsed-window accounting differed
        // between "no events" and "events beyond the edge" stop paths.
        let mut sim = Sim::new();
        assert_eq!(
            sim.run_until(SimTime::from_nanos(100)),
            SimTime::from_nanos(100),
            "empty queue still advances to the window edge"
        );
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(50), mk(1));
        assert_eq!(
            sim.run_until(SimTime::from_nanos(400)),
            SimTime::from_nanos(400),
            "drained queue advances past the last event to the edge"
        );
        assert_eq!(*log.borrow(), vec![1]);
        // The run-to-completion sentinel is excluded: `run()` must report
        // the last event's instant, not SimTime::MAX.
        sim.schedule(SimDuration::from_nanos(7), mk(2));
        assert_eq!(sim.run(), SimTime::from_nanos(407));
    }

    #[test]
    fn run_until_advances_clock_when_future_events_remain() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(500), mk(9));
        assert_eq!(
            sim.run_until(SimTime::from_nanos(200)),
            SimTime::from_nanos(200)
        );
        assert!(log.borrow().is_empty());
        sim.run();
        assert_eq!(*log.borrow(), vec![9]);
    }

    #[test]
    fn run_until_ignores_cancelled_events_at_heap_top() {
        // A cancelled event inside the window must not let a live event
        // beyond the window execute: peeking has to skip tombstones.
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let id = sim.schedule(SimDuration::from_nanos(5), mk(1));
        sim.schedule(SimDuration::from_nanos(50), mk(2));
        sim.cancel(id);
        sim.run_until(SimTime::from_nanos(10));
        assert!(
            log.borrow().is_empty(),
            "the live event at t=50 must not run inside a t<=10 window"
        );
        assert_eq!(sim.now(), SimTime::from_nanos(10));
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    fn step_executes_one_event() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimDuration::from_nanos(1), mk(1));
        sim.schedule(SimDuration::from_nanos(2), mk(2));
        assert!(sim.step());
        assert_eq!(*log.borrow(), vec![1]);
        assert!(sim.step());
        assert!(!sim.step());
    }
}
