//! Measurement primitives: counters, rate meters, summaries and
//! log-scale histograms.
//!
//! Experiments in this workspace report two headline numbers — throughput
//! and CPU utilization — plus latency distributions for the data-center
//! workloads. These types gather those numbers without allocating per
//! sample.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A monotonically increasing event/byte counter bound to a measurement
/// window.
///
/// ```rust
/// use ioat_simcore::{Counter, SimTime};
/// let mut bytes = Counter::new();
/// bytes.add_at(SimTime::from_micros(1), 1_000);
/// bytes.add_at(SimTime::from_micros(2), 500);
/// assert_eq!(bytes.total(), 1_500);
/// ```
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Counter {
    total: u64,
    window_start: SimTime,
    window_total: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` at instant `at`.
    pub fn add_at(&mut self, at: SimTime, amount: u64) {
        self.total += amount;
        if at >= self.window_start {
            self.window_total += amount;
        }
    }

    /// Total since construction.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Starts a fresh measurement window at `at`; everything added at or
    /// after `at` counts toward [`Counter::window_total`].
    pub fn begin_window(&mut self, at: SimTime) {
        self.window_start = at;
        self.window_total = 0;
    }

    /// Amount added since the window began.
    pub fn window_total(&self) -> u64 {
        self.window_total
    }

    /// Rate in units/second over `[window_start, now)`.
    pub fn window_rate_per_sec(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_duration_since(self.window_start);
        if elapsed.is_zero() {
            return 0.0;
        }
        self.window_total as f64 / elapsed.as_secs_f64()
    }
}

/// Converts a byte counter window into the paper's Mbps (10^6 bits/s).
pub fn bytes_to_mbps(bytes: u64, elapsed: SimDuration) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    bytes as f64 * 8.0 / 1e6 / elapsed.as_secs_f64()
}

/// Converts a byte counter window into MB/s (10^6 bytes/s), the unit the
/// paper uses for PVFS results.
pub fn bytes_to_mbytes_per_sec(bytes: u64, elapsed: SimDuration) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    bytes as f64 / 1e6 / elapsed.as_secs_f64()
}

/// A windowed throughput meter: counts bytes and reports Mbps/MBps over a
/// measurement window, excluding warm-up.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RateMeter {
    bytes: Counter,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.bytes.add_at(at, bytes);
    }

    /// Begins the measurement window (typically after warm-up).
    pub fn begin_window(&mut self, at: SimTime) {
        self.bytes.begin_window(at);
    }

    /// Bytes recorded inside the window.
    pub fn window_bytes(&self) -> u64 {
        self.bytes.window_total()
    }

    /// Total bytes recorded since construction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.total()
    }

    /// Throughput in Mbps over the window ending at `now`.
    pub fn mbps(&self, now: SimTime) -> f64 {
        self.bytes.window_rate_per_sec(now) * 8.0 / 1e6
    }

    /// Throughput in MB/s over the window ending at `now`.
    pub fn mbytes_per_sec(&self, now: SimTime) -> f64 {
        self.bytes.window_rate_per_sec(now) / 1e6
    }
}

/// Online mean/min/max/variance (Welford) summary.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 when fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (Chan et al.'s parallel
    /// Welford combine), as if every sample of `other` had been added
    /// here.
    ///
    /// Note the merged `mean`/`m2` are *not* bit-identical to a single
    /// sequential pass over the interleaved samples (float addition is
    /// not associative) — but they are a deterministic function of the
    /// two inputs, so merging partition summaries in a fixed order is
    /// reproducible run-to-run and thread-count independent.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * (n2 / total);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / total);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A log₂-bucketed histogram with linear sub-buckets, HDR-style.
///
/// Values are u64 (we use nanoseconds for latency). Memory is fixed:
/// 64 major buckets × `SUB` sub-buckets. Relative error is bounded by
/// `1/SUB` (≈ 3% with 32 sub-buckets), plenty for reporting latency
/// percentiles.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32 linear sub-buckets per octave

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; 64 * SUB],
            total: 0,
            sum: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let major = (msb - SUB_BITS + 1) as usize;
        let sub = (value >> (msb - SUB_BITS)) as usize & (SUB - 1);
        major * SUB + sub
    }

    /// Representative (lower-bound) value of bucket `idx`.
    fn bucket_floor(idx: usize) -> u64 {
        let major = idx / SUB;
        let sub = (idx % SUB) as u64;
        if major == 0 {
            return sub;
        }
        let shift = major as u32 - 1;
        ((SUB as u64) << shift) | (sub << shift)
    }

    /// Records `value`.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]`.
    ///
    /// Returns 0 for an empty histogram. The result is the lower bound of
    /// the bucket containing the quantile, so it underestimates by at most
    /// one sub-bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(idx);
            }
        }
        Self::bucket_floor(self.counts.len() - 1)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Relative benefit as defined in §4 of the paper: `(b - a) / b` where `a`
/// is the I/OAT metric and `b` the non-I/OAT metric (both "smaller is
/// better", e.g. CPU utilization).
///
/// Returns 0 when the baseline is zero.
///
/// ```rust
/// use ioat_simcore::stats::relative_benefit;
/// // Paper's example: I/OAT at 30% CPU vs non-I/OAT at 60% → 50% benefit.
/// assert!((relative_benefit(0.30, 0.60) - 0.5).abs() < 1e-12);
/// ```
pub fn relative_benefit(ioat: f64, non_ioat: f64) -> f64 {
    if non_ioat == 0.0 {
        0.0
    } else {
        (non_ioat - ioat) / non_ioat
    }
}

/// Relative improvement for "bigger is better" metrics (throughput, TPS):
/// `(a - b) / b` where `a` is I/OAT and `b` non-I/OAT.
pub fn relative_improvement(ioat: f64, non_ioat: f64) -> f64 {
    if non_ioat == 0.0 {
        0.0
    } else {
        (ioat - non_ioat) / non_ioat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_window_excludes_warmup() {
        let mut c = Counter::new();
        c.add_at(SimTime::from_micros(1), 100);
        c.begin_window(SimTime::from_micros(10));
        c.add_at(SimTime::from_micros(5), 50); // before window: total only
        c.add_at(SimTime::from_micros(15), 25);
        assert_eq!(c.total(), 175);
        assert_eq!(c.window_total(), 25);
    }

    #[test]
    fn rate_meter_reports_mbps() {
        let mut m = RateMeter::new();
        m.begin_window(SimTime::ZERO);
        // 125 MB over 1 second = 1000 Mbps.
        m.record(SimTime::from_millis(500), 125_000_000);
        let mbps = m.mbps(SimTime::from_secs(1));
        assert!((mbps - 1000.0).abs() < 1e-9, "mbps = {mbps}");
        let mbs = m.mbytes_per_sec(SimTime::from_secs(1));
        assert!((mbs - 125.0).abs() < 1e-9);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_matches_sequential_statistics() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut whole = Summary::new();
        let mut left = Summary::new();
        let mut right = Summary::new();
        for (i, &x) in samples.iter().enumerate() {
            whole.add(x);
            if i < 3 {
                left.add(x);
            } else {
                right.add(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-12);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        // Merging an empty side is the identity in both directions.
        let empty = Summary::new();
        let before = format!("{left}");
        left.merge(&empty);
        assert_eq!(format!("{left}"), before);
        let mut e = Summary::new();
        e.merge(&left);
        assert_eq!(format!("{e}"), before);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn histogram_quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05, "p50 = {p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05, "p99 = {p99}");
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0) >= 900_000);
    }

    #[test]
    fn relative_metrics_match_paper_definitions() {
        // §4: I/OAT 30% CPU vs non-I/OAT 60% → 50% relative benefit even
        // though the absolute difference is 30 points.
        assert!((relative_benefit(0.3, 0.6) - 0.5).abs() < 1e-12);
        assert_eq!(relative_benefit(0.5, 0.0), 0.0);
        // Throughput: 9754 vs 8569 TPS → ~13.8% improvement (paper: 14%).
        let imp = relative_improvement(9754.0, 8569.0);
        assert!((imp - 0.1383).abs() < 1e-3, "imp = {imp}");
    }

    #[test]
    fn unit_conversions() {
        assert!((bytes_to_mbps(1_250_000, SimDuration::from_secs(1)) - 10.0).abs() < 1e-9);
        assert!((bytes_to_mbytes_per_sec(2_000_000, SimDuration::from_secs(2)) - 1.0).abs() < 1e-9);
        assert_eq!(bytes_to_mbps(1, SimDuration::ZERO), 0.0);
    }
}
