//! Simulated time: instants, durations and unit conversions.
//!
//! All simulated time in `ioat-sim` is kept in integer nanoseconds. Integer
//! time makes event ordering exact and runs bit-reproducible; nanosecond
//! resolution is fine enough to express single-cycle costs at the paper's
//! 3.46 GHz clock (≈ 0.29 ns) without accumulating drift over the
//! millisecond-scale measurement windows the experiments use.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
///
/// `SimTime` is ordered, copyable and cheap; it is produced by
/// [`Sim::now`](crate::Sim::now) and consumed by the scheduling API.
///
/// ```rust
/// use ioat_simcore::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// ```rust
/// use ioat_simcore::SimDuration;
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel for run limits.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy; for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so such a call is a logic error in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] when
    /// `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// A span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// A span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// A span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// A span of `secs` seconds given as a float, rounded to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics on NaN, infinite, negative, or unrepresentably large (more
    /// than `u64::MAX` nanoseconds) inputs. These used to clamp silently
    /// to zero (NaN/negative) or wrap through `as u64` saturation
    /// (overflow), turning caller arithmetic bugs into quiet timing
    /// errors; a model that computes a non-finite or negative span is
    /// broken and must hear about it.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite(),
            "SimDuration::from_secs_f64: non-finite seconds ({secs})"
        );
        assert!(
            secs >= 0.0,
            "SimDuration::from_secs_f64: negative seconds ({secs})"
        );
        let nanos = (secs * 1e9).round();
        // 2^64 ns ≈ 584 years of simulated time; anything beyond is a bug.
        assert!(
            nanos <= u64::MAX as f64,
            "SimDuration::from_secs_f64: {secs} s overflows u64 nanoseconds"
        );
        SimDuration(nanos as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Multiplies the span by a float factor, rounding to the nearest
    /// nanosecond. Negative factors clamp to zero (a backoff curve that
    /// dips below zero means "no delay", not a logic error).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is NaN or the product overflows `u64`
    /// nanoseconds (see [`SimDuration::from_secs_f64`]).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Bandwidth expressed in bits per second, with helpers to derive wire
/// serialization delays.
///
/// ```rust
/// use ioat_simcore::time::Bandwidth;
/// let gige = Bandwidth::from_mbps(1_000);
/// // A 1500-byte frame takes 12 microseconds at line rate.
/// assert_eq!(gige.transfer_time(1_500).as_nanos(), 12_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    /// Creates a bandwidth of `bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero; a zero-rate link would imply infinite
    /// serialization delays.
    pub fn from_bps(bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        Bandwidth { bits_per_sec: bps }
    }

    /// Creates a bandwidth of `mbps` megabits (10^6 bits) per second.
    pub fn from_mbps(mbps: u64) -> Self {
        Bandwidth::from_bps(mbps * 1_000_000)
    }

    /// Creates a bandwidth of `gbps` gigabits (10^9 bits) per second.
    pub fn from_gbps(gbps: u64) -> Self {
        Bandwidth::from_bps(gbps * 1_000_000_000)
    }

    /// Bits per second.
    pub fn as_bps(self) -> u64 {
        self.bits_per_sec
    }

    /// Megabits per second as a float (for reporting).
    pub fn as_mbps_f64(self) -> f64 {
        self.bits_per_sec as f64 / 1e6
    }

    /// Time to serialize `bytes` bytes onto the wire at this rate, rounded
    /// up to the next nanosecond so back-to-back frames never overlap.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        let bits = bytes * 8;
        // ceil(bits * 1e9 / rate) without overflow for realistic sizes.
        let nanos = (bits as u128 * 1_000_000_000u128).div_ceil(self.bits_per_sec as u128);
        SimDuration::from_nanos(nanos as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}Mbps", self.as_mbps_f64())
    }
}

/// Convenience byte-size constants used throughout the experiments.
pub mod units {
    /// One kibibyte (1024 bytes) — the paper's "K" sizes are binary.
    pub const KIB: u64 = 1024;
    /// One mebibyte (1024 KiB).
    pub const MIB: u64 = 1024 * KIB;

    /// Formats a byte count the way the paper labels its x-axes
    /// (`1K`, `64K`, `1M`, ...).
    pub fn fmt_bytes(bytes: u64) -> String {
        if bytes >= MIB && bytes.is_multiple_of(MIB) {
            format!("{}M", bytes / MIB)
        } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
            format!("{}K", bytes / KIB)
        } else {
            format!("{bytes}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_nanos(250);
        assert_eq!((t + d).as_nanos(), 10_250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards_time() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let earlier = SimTime::from_nanos(5);
        let later = SimTime::from_nanos(3);
        assert_eq!(later.saturating_duration_since(earlier), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_float_seconds() {
        assert_eq!(SimDuration::from_secs_f64(1e-6).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        // Rounds to nearest nanosecond.
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
    }

    #[test]
    #[should_panic(expected = "non-finite seconds")]
    fn duration_from_nan_seconds_panics() {
        // Regression: NaN used to clamp silently to zero, hiding the
        // caller's broken arithmetic.
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite seconds")]
    fn duration_from_infinite_seconds_panics() {
        let _ = SimDuration::from_secs_f64(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "negative seconds")]
    fn duration_from_negative_seconds_panics() {
        // Regression: -1.0 used to clamp silently to zero.
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "overflows u64 nanoseconds")]
    fn duration_from_overflowing_seconds_panics() {
        // Regression: `as u64` saturated huge values instead of failing.
        // 2^64 ns is ~584 years; 1e12 s is ~31,700 years.
        let _ = SimDuration::from_secs_f64(1e12);
    }

    #[test]
    fn mul_f64_clamps_negative_factors_only() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_millis(250));
    }

    #[test]
    fn bandwidth_transfer_times() {
        let gige = Bandwidth::from_gbps(1);
        assert_eq!(gige.transfer_time(1_500).as_nanos(), 12_000);
        assert_eq!(gige.transfer_time(0), SimDuration::ZERO);
        // Rounds up: 1 byte at 1 Gbps is 8 ns exactly.
        assert_eq!(gige.transfer_time(1).as_nanos(), 8);
        let odd = Bandwidth::from_bps(3);
        // 1 byte = 8 bits at 3 bps → ceil(8/3 s) in ns.
        assert_eq!(odd.transfer_time(1).as_nanos(), 2_666_666_667);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(Bandwidth::from_gbps(1).to_string(), "1000.0Mbps");
    }

    #[test]
    fn unit_formatting_matches_paper_axis_labels() {
        use units::fmt_bytes;
        assert_eq!(fmt_bytes(2048), "2K");
        assert_eq!(fmt_bytes(1024 * 1024), "1M");
        assert_eq!(fmt_bytes(1500), "1500");
    }

    #[test]
    fn duration_sum_and_scalar_ops() {
        let parts = [
            SimDuration::from_nanos(1),
            SimDuration::from_nanos(2),
            SimDuration::from_nanos(3),
        ];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total.as_nanos(), 6);
        assert_eq!((total * 2).as_nanos(), 12);
        assert_eq!((total / 3).as_nanos(), 2);
        assert_eq!(total.mul_f64(0.5).as_nanos(), 3);
    }
}
