//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std`'s default `SipHash` is keyed per-process and DoS-resistant —
//! properties a deterministic simulator neither needs nor wants on its hot
//! paths. Model state keyed by small dense integers (connection ids,
//! document ids) hashes every frame and every transaction; a fixed
//! multiply-xor finalizer (the `splitmix64` mix) is an order of magnitude
//! cheaper and, being unkeyed, keeps iteration-independent behaviour
//! identical across processes and machines.
//!
//! Only use this for trusted internal keys: it is not collision-resistant
//! against adversarial input, which simulator state never is.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias wired to the fast hasher.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` alias wired to the fast hasher.
pub type FastHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

/// A word-at-a-time hasher finalized with the splitmix64 mix.
///
/// Integers hash in a handful of cycles; byte slices fold 8 bytes at a
/// time. Deterministic: no per-process key.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The splitmix64 finalizer as a standalone function: a seed-stable,
/// machine-independent 64-bit mix for model-level steering decisions
/// (e.g. RSS flow→queue placement) that must not depend on arrival
/// interleaving, iteration order, or the process hash key.
#[inline]
pub fn stable_mix(x: u64) -> u64 {
    mix(x)
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = mix(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.state = self.state.rotate_left(16) ^ u64::from(v);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = self.state.rotate_left(32) ^ v;
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_are_deterministic() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for i in 0..1_000u64 {
            m.insert(i, (i * 3) as u32);
        }
        for i in 0..1_000u64 {
            assert_eq!(m.get(&i), Some(&((i * 3) as u32)));
        }
        assert_eq!(m.len(), 1_000);
    }

    #[test]
    fn small_integers_do_not_collide_trivially() {
        let mut seen = FastHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "mix must separate dense keys");
    }
}
