//! Topology compilation: from a declarative spec to switch nodes, port
//! maps and structural routing.
//!
//! Both supported shapes are *structurally routed*: the destination host
//! index alone determines the candidate output ports at every switch, so
//! no forwarding tables are built or stored. A [`Topology`] is therefore a
//! few integers — `route` is pure arithmetic and allocation-free, which
//! matters when a million-client run makes ~10⁸ routing decisions.
//!
//! # Fat-tree(k)
//!
//! The classic 3-tier Clos built from k-port switches (k even, m = k/2):
//!
//! * k pods, each with m edge and m aggregation switches;
//! * m² core switches; core `c = a·m + i` connects to aggregation index
//!   `a` in every pod (its `i`-th uplink);
//! * closed forms: `k³/4` hosts, `5k²/4` switches, `3k³/4` links
//!   (host links included).
//!
//! Host `h` lives in pod `h/m²` under edge switch `(h/m) mod m` at
//! position `h mod m`. Equal-cost paths: 1 under the same edge switch, m
//! within a pod, m² across pods.
//!
//! # Leaf-spine
//!
//! The 2-tier special case: every leaf connects to every spine. `L·H`
//! hosts, `L+S` switches, `L·H + L·S` links, and `S` equal-cost paths
//! between hosts on different leaves.

/// Declarative description of a fabric shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TopologySpec {
    /// 3-tier fat-tree built from `k`-port switches (`k` even, ≥ 4).
    FatTree {
        /// Switch radix.
        k: usize,
    },
    /// 2-tier leaf-spine: every leaf connects to every spine.
    LeafSpine {
        /// Number of leaf (top-of-rack) switches.
        leaves: usize,
        /// Number of spine switches.
        spines: usize,
        /// Hosts attached to each leaf.
        hosts_per_leaf: usize,
    },
}

/// What a switch output port connects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// A host attachment point (topology host index).
    Host(usize),
    /// Another switch (topology switch index).
    Switch(usize),
}

/// A compiled topology: host/switch/port numbering plus structural
/// routing. See the module docs for the numbering conventions.
#[derive(Debug, Clone, Copy)]
pub struct Topology {
    spec: TopologySpec,
}

impl Topology {
    /// Compiles `spec`, validating its parameters.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec: fat-tree radix odd or < 4, or a
    /// leaf-spine dimension of zero.
    pub fn new(spec: TopologySpec) -> Self {
        match spec {
            TopologySpec::FatTree { k } => {
                assert!(k >= 4 && k % 2 == 0, "fat-tree radix must be even and ≥ 4");
            }
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => {
                assert!(
                    leaves > 0 && spines > 0 && hosts_per_leaf > 0,
                    "leaf-spine dimensions must be positive"
                );
            }
        }
        Topology { spec }
    }

    /// The spec this topology was compiled from.
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// Number of host attachment points.
    pub fn hosts(&self) -> usize {
        match self.spec {
            TopologySpec::FatTree { k } => k * k * k / 4,
            TopologySpec::LeafSpine {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
        }
    }

    /// Number of switches across all tiers.
    pub fn switches(&self) -> usize {
        match self.spec {
            TopologySpec::FatTree { k } => 5 * k * k / 4,
            TopologySpec::LeafSpine { leaves, spines, .. } => leaves + spines,
        }
    }

    /// Number of undirected links, host access links included.
    pub fn links(&self) -> usize {
        match self.spec {
            TopologySpec::FatTree { k } => 3 * k * k * k / 4,
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => leaves * hosts_per_leaf + leaves * spines,
        }
    }

    /// Number of switch tiers (fat-tree 3, leaf-spine 2).
    pub fn tiers(&self) -> usize {
        match self.spec {
            TopologySpec::FatTree { .. } => 3,
            TopologySpec::LeafSpine { .. } => 2,
        }
    }

    /// Tier of switch `sw`: 0 = edge/leaf, 1 = aggregation/spine,
    /// 2 = core.
    pub fn switch_tier(&self, sw: usize) -> u8 {
        match self.spec {
            TopologySpec::FatTree { k } => {
                let m = k / 2;
                if sw < k * m {
                    0
                } else if sw < 2 * k * m {
                    1
                } else {
                    assert!(sw < 2 * k * m + m * m, "switch index out of range");
                    2
                }
            }
            TopologySpec::LeafSpine { leaves, spines, .. } => {
                assert!(sw < leaves + spines, "switch index out of range");
                u8::from(sw >= leaves)
            }
        }
    }

    /// The edge/leaf switch host `h` attaches to.
    pub fn host_edge(&self, h: usize) -> usize {
        assert!(h < self.hosts(), "host index out of range");
        match self.spec {
            TopologySpec::FatTree { k } => h / (k / 2),
            TopologySpec::LeafSpine { hosts_per_leaf, .. } => h / hosts_per_leaf,
        }
    }

    /// The destination of every output port on switch `sw`, in port
    /// order. Only used at fabric-construction time; the hot routing path
    /// goes through [`Topology::route`].
    pub fn switch_ports(&self, sw: usize) -> Vec<Hop> {
        match self.spec {
            TopologySpec::FatTree { k } => {
                let m = k / 2;
                let (edges, aggs) = (k * m, k * m);
                if sw < edges {
                    // Edge (pod p, index e): m down ports to hosts, then m
                    // up ports to the pod's aggregation switches.
                    let (p, e) = (sw / m, sw % m);
                    (0..m)
                        .map(|i| Hop::Host(p * m * m + e * m + i))
                        .chain((0..m).map(|a| Hop::Switch(edges + p * m + a)))
                        .collect()
                } else if sw < edges + aggs {
                    // Aggregation (pod p, index a): m down ports to the
                    // pod's edge switches, then m up ports to cores
                    // a·m .. a·m+m.
                    let (p, a) = ((sw - edges) / m, (sw - edges) % m);
                    (0..m)
                        .map(|e| Hop::Switch(p * m + e))
                        .chain((0..m).map(|i| Hop::Switch(edges + aggs + a * m + i)))
                        .collect()
                } else {
                    // Core c = a·m + i: one down port per pod, to that
                    // pod's aggregation switch of index a.
                    let c = sw - edges - aggs;
                    assert!(c < m * m, "switch index out of range");
                    (0..k).map(|p| Hop::Switch(edges + p * m + c / m)).collect()
                }
            }
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => {
                if sw < leaves {
                    (0..hosts_per_leaf)
                        .map(|i| Hop::Host(sw * hosts_per_leaf + i))
                        .chain((0..spines).map(|s| Hop::Switch(leaves + s)))
                        .collect()
                } else {
                    let s = sw - leaves;
                    assert!(s < spines, "switch index out of range");
                    (0..leaves).map(Hop::Switch).collect()
                }
            }
        }
    }

    /// Structural routing: the candidate output ports on switch `sw` for a
    /// frame destined to host `dst`, as a contiguous `(first_port, count)`
    /// range. `count > 1` means the candidates are equal-cost and the
    /// caller picks one by flow hash.
    pub fn route(&self, sw: usize, dst: usize) -> (usize, usize) {
        assert!(dst < self.hosts(), "destination host out of range");
        match self.spec {
            TopologySpec::FatTree { k } => {
                let m = k / 2;
                let (edges, aggs) = (k * m, k * m);
                let (dst_pod, dst_edge) = (dst / (m * m), (dst / m) % m);
                if sw < edges {
                    let (p, e) = (sw / m, sw % m);
                    if dst_pod == p && dst_edge == e {
                        (dst % m, 1)
                    } else {
                        (m, m)
                    }
                } else if sw < edges + aggs {
                    let p = (sw - edges) / m;
                    if dst_pod == p {
                        (dst_edge, 1)
                    } else {
                        (m, m)
                    }
                } else {
                    (dst_pod, 1)
                }
            }
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => {
                let dst_leaf = dst / hosts_per_leaf;
                if sw < leaves {
                    if dst_leaf == sw {
                        (dst % hosts_per_leaf, 1)
                    } else {
                        (hosts_per_leaf, spines)
                    }
                } else {
                    (dst_leaf, 1)
                }
            }
        }
    }

    /// Number of links a data frame traverses host-to-host (access links
    /// included). Also the per-link-latency multiplier for the reverse ACK
    /// path.
    pub fn path_links(&self, a: usize, b: usize) -> usize {
        assert!(a < self.hosts() && b < self.hosts(), "host out of range");
        match self.spec {
            TopologySpec::FatTree { k } => {
                let m = k / 2;
                if a / m == b / m {
                    2
                } else if a / (m * m) == b / (m * m) {
                    4
                } else {
                    6
                }
            }
            TopologySpec::LeafSpine { hosts_per_leaf, .. } => {
                if a / hosts_per_leaf == b / hosts_per_leaf {
                    2
                } else {
                    4
                }
            }
        }
    }

    /// Closed-form count of equal-cost paths between two distinct hosts.
    pub fn equal_cost_paths(&self, a: usize, b: usize) -> usize {
        assert!(a < self.hosts() && b < self.hosts(), "host out of range");
        assert_ne!(a, b, "no path from a host to itself");
        match self.spec {
            TopologySpec::FatTree { k } => {
                let m = k / 2;
                if a / m == b / m {
                    1
                } else if a / (m * m) == b / (m * m) {
                    m
                } else {
                    m * m
                }
            }
            TopologySpec::LeafSpine {
                spines,
                hosts_per_leaf,
                ..
            } => {
                if a / hosts_per_leaf == b / hosts_per_leaf {
                    1
                } else {
                    spines
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_counts_match_closed_forms() {
        for k in [4usize, 6, 8] {
            let t = Topology::new(TopologySpec::FatTree { k });
            assert_eq!(t.hosts(), k * k * k / 4);
            assert_eq!(t.switches(), 5 * k * k / 4);
            assert_eq!(t.links(), 3 * k * k * k / 4);
        }
    }

    #[test]
    fn every_port_list_has_the_switch_radix() {
        let k = 6;
        let t = Topology::new(TopologySpec::FatTree { k });
        for sw in 0..t.switches() {
            assert_eq!(t.switch_ports(sw).len(), k, "switch {sw} must have k ports");
        }
    }

    #[test]
    fn leaf_spine_layout() {
        let t = Topology::new(TopologySpec::LeafSpine {
            leaves: 4,
            spines: 2,
            hosts_per_leaf: 8,
        });
        assert_eq!(t.hosts(), 32);
        assert_eq!(t.switches(), 6);
        assert_eq!(t.links(), 32 + 8);
        assert_eq!(t.host_edge(17), 2);
        assert_eq!(t.equal_cost_paths(0, 31), 2);
        assert_eq!(t.path_links(0, 7), 2);
        assert_eq!(t.path_links(0, 8), 4);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_radix_rejected() {
        let _ = Topology::new(TopologySpec::FatTree { k: 5 });
    }
}
