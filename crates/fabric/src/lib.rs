//! Clos/fat-tree switch fabric for `ioat-sim`.
//!
//! The paper's testbed pairs six GigE ports through per-VLAN switch paths,
//! which `netsim` models as dedicated point-to-point links — fine for two
//! nodes, useless for a datacenter. This crate adds the missing switching
//! layer so the I/OAT CPU-utilization question can be re-asked at
//! thousands of hosts:
//!
//! * [`topology`] — declarative fat-tree / leaf-spine specs compiled to
//!   host/switch/port numbering with allocation-free structural routing
//!   and closed-form count/path formulas.
//! * [`fabric`] — the runtime: per-port serializing links, shared
//!   output-buffered switches with tail-drop, deterministic seed-stable
//!   ECMP, and hop-by-hop forwarding behind netsim's
//!   [`FrameRouter`](ioat_netsim::FrameRouter) hook. Tail-drops feed the
//!   cluster-wide frame-conservation audit as a distinct counter.
//!
//! # Example
//!
//! ```rust
//! use ioat_fabric::{Fabric, FabricParams, TopologySpec};
//! use ioat_netsim::config::{IoatConfig, StackParams};
//! use ioat_netsim::stack::{self};
//! use ioat_netsim::{HostStack, ConnId, SocketOpts};
//! use ioat_simcore::Sim;
//!
//! let mut sim = Sim::new();
//! let fabric = Fabric::new(TopologySpec::FatTree { k: 4 }, FabricParams::gige());
//! let a = HostStack::new("a", 2, StackParams::default(), IoatConfig::disabled());
//! let b = HostStack::new("b", 2, StackParams::default(), IoatConfig::disabled());
//! fabric.attach(&a, 0);
//! fabric.attach(&b, 15);
//! fabric.open(0, 15, SocketOpts::tuned(), ConnId(1));
//! stack::app_send(&a, &mut sim, ConnId(1), 100_000);
//! sim.run();
//! assert_eq!(b.borrow().rx_meter().total_bytes(), 100_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fabric;
pub mod topology;

pub use fabric::{Fabric, FabricParams, FabricRef, SwitchStats};
pub use topology::{Hop, Topology, TopologySpec};
