//! The fabric runtime: switches with shared output buffers, deterministic
//! ECMP, and hop-by-hop frame forwarding.
//!
//! A [`Fabric`] compiles a [`Topology`] into per-switch runtime state
//! (one [`Link`] per output port, a shared output-buffer occupancy
//! counter) and implements netsim's [`FrameRouter`] so host stacks attach
//! to it instead of to a directly wired peer:
//!
//! * **Data path**: a frame serializes on the host's access link, enters
//!   the source host's edge switch, and is forwarded hop by hop. Each hop
//!   picks an output port (ECMP over the equal-cost candidates), claims
//!   the frame's wire bytes in the switch's *shared* output buffer —
//!   tail-dropping the frame if the buffer is exhausted — and serializes
//!   it on the port's link. The buffer claim is released when the frame
//!   finishes arriving at the next hop, so a slow downstream link
//!   back-pressures the whole switch, as a shared-memory switch does.
//! * **ECMP**: the output port is a pure hash of
//!   `(seed, src_host, dst_host, conn, switch_id)` via
//!   [`ioat_simcore::hash::FastHasher`] — the simulator's 5-tuple (the
//!   `ConnId` subsumes the port pair, the protocol is constant). Including
//!   the switch id decorrelates successive tiers (no hash polarization);
//!   excluding any per-run state makes the choice seed-stable and
//!   bit-identical across `--jobs` layouts.
//! * **ACK path**: netsim ACKs are latency-only (documented
//!   simplification), so the fabric delivers them after the topology's
//!   path-link count × per-hop latency without touching buffers or
//!   serializers. ACK loss stays unmodeled — windows cannot deadlock, and
//!   tail-dropped data frames are recovered by fast retransmit or the
//!   RTO, which netsim arms automatically on router-attached ports.
//! * **Fault domain**: [`Fabric::set_faults`] installs the fabric-facing
//!   entries of a seed-driven [`FaultPlan`] — per-link flap windows and
//!   switch crash windows — materialized once at install time, so the
//!   running fabric consults pure window tables and draws no RNG. Each
//!   hop's ECMP choice re-hashes over the *surviving* equal-cost ports
//!   (a port survives when its link is not flapped down and its
//!   downstream switch is not crashed); when every candidate is dead, or
//!   the forwarding switch itself is crashed, the frame is counted in
//!   the `route_blackhole` sink and dropped — the sender's go-back-N
//!   recovery re-traverses the re-hashed paths once a window closes.
//! * **Conservation**: tail-drops and route blackholes are counted per
//!   switch and globally; [`Fabric::audit`] cross-checks the pairs and
//!   `audit_cluster_conservation_ext` folds the global counters into the
//!   cluster-wide Σsent = Σarrived + drops + blackholes identity.

use crate::topology::{Hop, Topology, TopologySpec};
use ioat_faults::{FaultPlan, TimeWindow};
use ioat_netsim::link::Link;
use ioat_netsim::stack::{self, FrameRouter, StackRef};
use ioat_netsim::{ConnId, Frame, SocketOpts};
use ioat_simcore::hash::FastHasher;
use ioat_simcore::time::Bandwidth;
use ioat_simcore::{FastHashMap, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::hash::Hasher;
use std::rc::Rc;

/// Shared handle to a [`Fabric`].
pub type FabricRef = Rc<Fabric>;

/// Physical parameters of the fabric.
#[derive(Debug, Clone, Copy)]
pub struct FabricParams {
    /// Line rate of host access links (host NIC → edge switch).
    pub host_bandwidth: Bandwidth,
    /// Base line rate of switch-to-switch links.
    pub link_bandwidth: Bandwidth,
    /// Oversubscription ratio ≥ 1: uplink ports (toward a higher tier)
    /// run at `link_bandwidth / oversubscription`, modeling the classic
    /// trimmed-uplink fat-tree without changing the closed-form
    /// host/switch/link counts or the path diversity.
    pub oversubscription: f64,
    /// Per-hop store-and-forward + propagation latency (every link in the
    /// fabric, access links included).
    pub switch_latency: SimDuration,
    /// Shared output-buffer capacity per switch, in bytes. A frame whose
    /// wire bytes do not fit is tail-dropped.
    pub buffer_bytes: u64,
    /// ECMP hash seed. Same seed ⇒ identical path choices, regardless of
    /// how work is laid out across threads.
    pub seed: u64,
    /// Enable receive interrupt coalescing on host access ports.
    pub coalescing: bool,
}

impl FabricParams {
    /// GigE-era defaults matching the paper's testbed network: 1 Gbps
    /// everywhere, 5 µs per hop, 1 MiB of shared buffer per switch.
    pub fn gige() -> Self {
        FabricParams {
            host_bandwidth: Bandwidth::from_gbps(1),
            link_bandwidth: Bandwidth::from_gbps(1),
            oversubscription: 1.0,
            switch_latency: SimDuration::from_micros(5),
            buffer_bytes: 1 << 20,
            seed: 1,
            coalescing: false,
        }
    }
}

/// Per-switch runtime statistics snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    /// Frames this switch forwarded (claimed buffer and serialized).
    pub forwarded: u64,
    /// Frames tail-dropped at a full shared buffer.
    pub tail_drops: u64,
    /// Frames dropped here with no surviving path (flapped links /
    /// crashed switches severed every equal-cost candidate, or this
    /// switch itself was crashed).
    pub blackholes: u64,
    /// Peak shared-buffer occupancy observed, bytes.
    pub peak_occupancy: u64,
}

struct OutPort {
    link: Link,
    dest: Hop,
}

struct SwitchRt {
    out: Vec<OutPort>,
    /// Bytes currently claimed in the shared output buffer (held from the
    /// forwarding decision until the frame finishes arriving downstream).
    occupancy: u64,
    peak: u64,
    tail_drops: u64,
    blackholes: u64,
    forwarded: u64,
}

#[derive(Default)]
struct GlobalStats {
    tail_drops: u64,
    route_blackholes: u64,
    forwarded: u64,
}

/// The fabric-facing half of a [`FaultPlan`], materialized once at
/// [`Fabric::set_faults`] time: per-directed-link flap windows and
/// per-switch crash windows. A pure function of `(plan, topology)` — no
/// RNG is drawn after installation and no events are scheduled, so the
/// schedule is identical under any partitioning or thread count.
struct FaultState {
    /// `link_down[sw][port]` — down-windows of the directed link out of
    /// switch `sw`'s port `port` (host access links included).
    link_down: Vec<Vec<Vec<TimeWindow>>>,
    /// `switch_down[sw]` — crash windows of switch `sw`.
    switch_down: Vec<Vec<TimeWindow>>,
}

impl FaultState {
    fn link_up(&self, sw: usize, port: usize, now: SimTime) -> bool {
        !self.link_down[sw][port].iter().any(|w| w.contains(now))
    }

    fn switch_up(&self, sw: usize, now: SimTime) -> bool {
        !self.switch_down[sw].iter().any(|w| w.contains(now))
    }
}

struct Attachment {
    stack: StackRef,
    port: usize,
}

/// Hook receiving `(sim, host, frame, arrive)` for frames whose final hop
/// targets a host that is not attached locally — the host's stack lives
/// in another partition of a parallel run, and the hook stages the frame
/// for cross-partition delivery at `arrive`.
type RemoteDelivery = Box<dyn Fn(&mut Sim, usize, Frame, SimTime)>;

/// A compiled, running switch fabric. Create with [`Fabric::new`], attach
/// host stacks with [`Fabric::attach`], open connections between
/// attachments with [`Fabric::open`].
pub struct Fabric {
    topo: Topology,
    params: FabricParams,
    switches: RefCell<Vec<SwitchRt>>,
    hosts: RefCell<Vec<Option<Attachment>>>,
    conns: RefCell<FastHashMap<ConnId, (usize, usize)>>,
    stats: RefCell<GlobalStats>,
    remote: RefCell<Option<RemoteDelivery>>,
    faults: RefCell<Option<FaultState>>,
}

impl Fabric {
    /// Compiles `spec` into runtime switches.
    ///
    /// # Panics
    ///
    /// Panics on an invalid spec (see [`Topology::new`]) or an
    /// oversubscription ratio below 1.
    pub fn new(spec: TopologySpec, params: FabricParams) -> FabricRef {
        assert!(
            params.oversubscription >= 1.0,
            "oversubscription ratio must be ≥ 1"
        );
        let topo = Topology::new(spec);
        let uplink_bw = Bandwidth::from_bps(
            ((params.link_bandwidth.as_bps() as f64 / params.oversubscription) as u64).max(1),
        );
        let switches = (0..topo.switches())
            .map(|sw| {
                let tier = topo.switch_tier(sw);
                let out = topo
                    .switch_ports(sw)
                    .into_iter()
                    .enumerate()
                    .map(|(pi, dest)| {
                        let bw = match dest {
                            Hop::Host(_) => params.host_bandwidth,
                            Hop::Switch(next) if topo.switch_tier(next) > tier => uplink_bw,
                            Hop::Switch(_) => params.link_bandwidth,
                        };
                        OutPort {
                            link: Link::new(&format!("sw{sw}.p{pi}"), bw, params.switch_latency),
                            dest,
                        }
                    })
                    .collect();
                SwitchRt {
                    out,
                    occupancy: 0,
                    peak: 0,
                    tail_drops: 0,
                    blackholes: 0,
                    forwarded: 0,
                }
            })
            .collect();
        Rc::new(Fabric {
            hosts: RefCell::new((0..topo.hosts()).map(|_| None).collect()),
            topo,
            params,
            switches: RefCell::new(switches),
            conns: RefCell::new(FastHashMap::default()),
            stats: RefCell::new(GlobalStats::default()),
            remote: RefCell::new(None),
            faults: RefCell::new(None),
        })
    }

    /// Installs the fabric-facing entries of `plan`: link-flap windows
    /// (one schedule per directed link, drawn here from the plan's
    /// dedicated streams) and switch crash windows. A plan with no fabric
    /// faults installs nothing — the running fabric stays bit-identical
    /// to one that never saw a plan. Partition-invariant by construction:
    /// the state is a pure function of `(plan, topology)`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid plan (see [`FaultPlan::validate`]), a switch
    /// crash for a switch index outside this topology, or a second
    /// install.
    pub fn set_faults(&self, plan: &FaultPlan) {
        plan.validate();
        if !plan.has_fabric_faults() {
            return;
        }
        let switches = self.switches.borrow();
        let link_down = switches
            .iter()
            .enumerate()
            .map(|(sw, s)| {
                (0..s.out.len())
                    .map(|p| match &plan.link_flap {
                        Some(m) => m.windows(plan.seed, ((sw as u64) << 32) | p as u64),
                        None => Vec::new(),
                    })
                    .collect()
            })
            .collect();
        let mut switch_down = vec![Vec::new(); switches.len()];
        for c in &plan.switch_crashes {
            let sw = c.service as usize;
            assert!(
                sw < switches.len(),
                "switch crash for switch {sw}, but the topology has only {} switches",
                switches.len()
            );
            switch_down[sw].push(c.window);
        }
        drop(switches);
        let prev = self.faults.borrow_mut().replace(FaultState {
            link_down,
            switch_down,
        });
        assert!(prev.is_none(), "fabric fault plan installed twice");
    }

    /// The compiled topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The fabric's physical parameters.
    pub fn params(&self) -> FabricParams {
        self.params
    }

    /// Attaches `stack` at topology host index `host` by adding a
    /// router-backed NIC port on it (access link at `host_bandwidth`).
    /// Returns the stack's new port index.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range or already attached.
    pub fn attach(self: &Rc<Self>, stack: &StackRef, host: usize) -> usize {
        let access = Link::new(
            &format!("host{host}->fabric"),
            self.params.host_bandwidth,
            self.params.switch_latency,
        );
        let port = stack::attach_router(
            stack,
            access,
            self.params.coalescing,
            Rc::clone(self) as Rc<dyn FrameRouter>,
            host,
        );
        let prev = self.hosts.borrow_mut()[host].replace(Attachment {
            stack: Rc::clone(stack),
            port,
        });
        assert!(prev.is_none(), "host {host} attached twice");
        port
    }

    /// Opens a connection between the stacks attached at `att_a` and
    /// `att_b`, registering it for routing. Both attachments must exist
    /// and differ.
    pub fn open(
        self: &Rc<Self>,
        att_a: usize,
        att_b: usize,
        opts: SocketOpts,
        id: ConnId,
    ) -> ConnId {
        assert_ne!(att_a, att_b, "connection endpoints must differ");
        let (a, pa, b, pb) = {
            let hosts = self.hosts.borrow();
            let a = hosts[att_a].as_ref().expect("attachment A missing");
            let b = hosts[att_b].as_ref().expect("attachment B missing");
            (Rc::clone(&a.stack), a.port, Rc::clone(&b.stack), b.port)
        };
        let prev = self.conns.borrow_mut().insert(id, (att_a, att_b));
        assert!(prev.is_none(), "connection {id} already routed");
        stack::open_connection(&a, &b, pa, pb, opts, id)
    }

    /// Registers a connection between hosts whose stacks live in *other*
    /// partitions of a parallel run: only the routing entry is created
    /// here — the endpoint stacks are opened against each other inside
    /// their own partition, and their frames enter this fabric through
    /// [`FrameRouter::frame_ingress`] via cross-partition injection.
    pub fn open_remote(&self, att_a: usize, att_b: usize, id: ConnId) {
        assert_ne!(att_a, att_b, "connection endpoints must differ");
        let prev = self.conns.borrow_mut().insert(id, (att_a, att_b));
        assert!(prev.is_none(), "connection {id} already routed");
    }

    /// Installs the cross-partition delivery hook: a frame whose final
    /// hop targets an *unattached* host is handed to `hook` as
    /// `(sim, host, frame, arrive)` at the forwarding decision instead of
    /// panicking. The switch's shared-buffer claim is still released at
    /// `arrive`, so back-pressure accounting is identical to local
    /// delivery.
    pub fn set_remote_delivery(&self, hook: impl Fn(&mut Sim, usize, Frame, SimTime) + 'static) {
        let prev = self.remote.borrow_mut().replace(Box::new(hook));
        assert!(prev.is_none(), "remote delivery hook installed twice");
    }

    /// The minimum cross-partition latency this fabric guarantees: every
    /// frame entering or leaving it crosses at least one link of
    /// `switch_latency`, and ACKs travel at least one full path link.
    /// This is the conservative-window lookahead a parallel run may use.
    pub fn lookahead(&self) -> SimDuration {
        self.params.switch_latency
    }

    /// Global count of frames tail-dropped at switch buffers — the
    /// `switch_dropped` term of the cluster-wide frame-conservation
    /// identity.
    pub fn tail_drops(&self) -> u64 {
        self.stats.borrow().tail_drops
    }

    /// Global count of switch forwarding decisions (one per hop).
    pub fn forwarded(&self) -> u64 {
        self.stats.borrow().forwarded
    }

    /// Global count of frames dropped with no surviving path — the
    /// `route_blackholed` term of the cluster-wide frame-conservation
    /// identity.
    pub fn blackholes(&self) -> u64 {
        self.stats.borrow().route_blackholes
    }

    /// Highest shared-buffer occupancy any switch has reached, bytes.
    pub fn peak_occupancy(&self) -> u64 {
        self.switches
            .borrow()
            .iter()
            .map(|s| s.peak)
            .max()
            .unwrap_or(0)
    }

    /// Runtime statistics of switch `sw`.
    pub fn switch_stats(&self, sw: usize) -> SwitchStats {
        let s = &self.switches.borrow()[sw];
        SwitchStats {
            forwarded: s.forwarded,
            tail_drops: s.tail_drops,
            blackholes: s.blackholes,
            peak_occupancy: s.peak,
        }
    }

    /// The output port ECMP selects on switch `sw` for a frame of
    /// connection `conn` from host `src` to host `dst`. Pure and
    /// deterministic — exposed so tests can measure hash spread without
    /// running traffic.
    pub fn route_port(&self, sw: usize, src: usize, dst: usize, conn: ConnId) -> usize {
        let (first, n) = self.topo.route(sw, dst);
        if n == 1 {
            first
        } else {
            first + (self.ecmp_hash(sw, src, dst, conn) % n as u64) as usize
        }
    }

    /// The flow's ECMP hash at switch `sw` — pure, seed-stable.
    fn ecmp_hash(&self, sw: usize, src: usize, dst: usize, conn: ConnId) -> u64 {
        let mut h = FastHasher::default();
        h.write_u64(self.params.seed);
        h.write_u64(src as u64);
        h.write_u64(dst as u64);
        h.write_u64(conn.0);
        h.write_u64(sw as u64);
        h.finish()
    }

    /// Fault-aware port selection at time `now`: [`Self::route_port`]'s
    /// hash re-applied over the *surviving* equal-cost candidates — a
    /// port survives when its link is not flapped down and its downstream
    /// switch is not crashed. `None` when the forwarding switch itself is
    /// crashed or no candidate survives: the frame has no live path (a
    /// route blackhole). With no fault state installed, or every
    /// candidate alive, the choice is bit-identical to `route_port`.
    fn route_port_at(
        &self,
        sw: usize,
        src: usize,
        dst: usize,
        conn: ConnId,
        now: SimTime,
    ) -> Option<usize> {
        let faults = self.faults.borrow();
        let Some(fs) = faults.as_ref() else {
            return Some(self.route_port(sw, src, dst, conn));
        };
        if !fs.switch_up(sw, now) {
            return None;
        }
        let (first, n) = self.topo.route(sw, dst);
        let switches = self.switches.borrow();
        let alive = |p: usize| {
            fs.link_up(sw, p, now)
                && match switches[sw].out[p].dest {
                    Hop::Host(_) => true,
                    Hop::Switch(next) => fs.switch_up(next, now),
                }
        };
        let survivors: Vec<usize> = (first..first + n).filter(|&p| alive(p)).collect();
        match survivors.len() {
            0 => None,
            s if s == n => Some(self.route_port(sw, src, dst, conn)),
            s => Some(survivors[(self.ecmp_hash(sw, src, dst, conn) % s as u64) as usize]),
        }
    }

    /// Counts one frame dropped at `sw` with no live path. The global
    /// counter carries the test-only `audit-bug` skew, mirroring the
    /// tail-drop counter, so the conservation audit's blackhole term is
    /// provably enforced.
    fn note_blackhole(&self, sw: usize) {
        self.switches.borrow_mut()[sw].blackholes += 1;
        let g = &mut self.stats.borrow_mut().route_blackholes;
        #[cfg(not(feature = "audit-bug"))]
        {
            *g += 1;
        }
        #[cfg(feature = "audit-bug")]
        {
            // Test-only accounting bug: stop incrementing the *global*
            // blackhole counter at 96 so both the fabric's own
            // blackhole-accounting audit and the cluster frame-
            // conservation audit have a known defect to catch. Only this
            // counter is skewed; routing behavior is untouched.
            if *g % 97 != 96 {
                *g += 1;
            }
        }
    }

    /// Audits the fabric's internal accounting:
    ///
    /// * Σ per-switch tail-drops equals the global drop counter (ditto
    ///   route blackholes and forwards) — the cross-check that catches a
    ///   miscounted drop;
    /// * no switch's peak occupancy ever exceeded the buffer capacity;
    /// * with `quiescent` (event queue drained), every shared buffer is
    ///   empty.
    pub fn audit(&self, now: SimTime, quiescent: bool) {
        let (sum_drops, sum_bh, sum_fwd, max_peak, max_occ) = {
            let switches = self.switches.borrow();
            let mut d = 0u64;
            let mut bh = 0u64;
            let mut f = 0u64;
            let mut peak = 0u64;
            let mut occ = 0u64;
            for s in switches.iter() {
                d += s.tail_drops;
                bh += s.blackholes;
                f += s.forwarded;
                peak = peak.max(s.peak);
                occ = occ.max(s.occupancy);
            }
            (d, bh, f, peak, occ)
        };
        let g_drops = self.stats.borrow().tail_drops;
        let g_bh = self.stats.borrow().route_blackholes;
        let g_fwd = self.stats.borrow().forwarded;
        ioat_guard::check(
            "fabric",
            "drop accounting: Σ per-switch tail-drops = global counter",
            now,
            sum_drops == g_drops,
            || format!("per-switch sum {sum_drops} vs global {g_drops}"),
        );
        ioat_guard::check(
            "fabric",
            "blackhole accounting: Σ per-switch blackholes = global counter",
            now,
            sum_bh == g_bh,
            || format!("per-switch sum {sum_bh} vs global {g_bh}"),
        );
        ioat_guard::check(
            "fabric",
            "forward accounting: Σ per-switch forwards = global counter",
            now,
            sum_fwd == g_fwd,
            || format!("per-switch sum {sum_fwd} vs global {g_fwd}"),
        );
        ioat_guard::check(
            "fabric",
            "shared-buffer occupancy never exceeds capacity",
            now,
            max_peak <= self.params.buffer_bytes,
            || {
                format!(
                    "peak occupancy {max_peak} B exceeds capacity {} B",
                    self.params.buffer_bytes
                )
            },
        );
        if quiescent {
            ioat_guard::check(
                "fabric",
                "quiescent switch buffers are empty",
                now,
                max_occ == 0,
                || format!("max residual occupancy {max_occ} B with a drained event queue"),
            );
        }
    }

    /// The attachment opposite `src` on `conn`.
    fn conn_peer(&self, src: usize, conn: ConnId) -> usize {
        let (a, b) = *self
            .conns
            .borrow()
            .get(&conn)
            .expect("frame for a connection the fabric never opened");
        if a == src {
            b
        } else {
            debug_assert_eq!(
                b, src,
                "frame entered at neither endpoint of its connection"
            );
            a
        }
    }

    /// One forwarding step at switch `sw`: ECMP port choice, shared-buffer
    /// claim (or tail-drop), serialization, and delivery to the next hop.
    fn hop(self: &Rc<Self>, sim: &mut Sim, sw: usize, frame: Frame, src: usize, dst: usize) {
        let wire = frame.wire_bytes();
        // A crashed forwarding switch, or an ECMP candidate set with no
        // survivor, leaves the frame without a live path: count it in the
        // blackhole sink and drop it. The sender's retransmission
        // machinery recovers once a flap/crash window closes (or ECMP
        // re-hashes onto a surviving path at an earlier tier).
        let Some(pick) = self.route_port_at(sw, src, dst, frame.conn, sim.now()) else {
            self.note_blackhole(sw);
            return;
        };
        let (link, dest) = {
            let mut switches = self.switches.borrow_mut();
            let s = &mut switches[sw];
            if s.occupancy + wire > self.params.buffer_bytes {
                s.tail_drops += 1;
                let g = &mut self.stats.borrow_mut().tail_drops;
                #[cfg(not(feature = "audit-bug"))]
                {
                    *g += 1;
                }
                #[cfg(feature = "audit-bug")]
                {
                    // Test-only accounting bug: silently drop every 97th
                    // increment of the *global* drop counter so both the
                    // fabric's own drop-accounting audit and the cluster
                    // frame-conservation audit have a known defect to
                    // catch. Only this counter is skewed; forwarding
                    // behavior is untouched.
                    if *g % 97 != 96 {
                        *g += 1;
                    }
                }
                return;
            }
            s.occupancy += wire;
            s.peak = s.peak.max(s.occupancy);
            s.forwarded += 1;
            let out = &s.out[pick];
            (out.link.clone(), out.dest)
        };
        self.stats.borrow_mut().forwarded += 1;
        // A final hop to a host living in another partition: identical
        // serializer and shared-buffer accounting, but the delivery event
        // belongs to the host's partition — stage it through the remote
        // hook and release the buffer claim here at the arrival instant.
        if let Hop::Host(h) = dest {
            if self.hosts.borrow()[h].is_none() {
                let remote = self.remote.borrow();
                let hook = remote
                    .as_ref()
                    .expect("frame for an unattached host with no remote delivery hook");
                let arrive = link.transmit_dropped(sim, wire);
                let f2 = Rc::clone(self);
                sim.schedule_at(arrive, move |_sim| {
                    f2.switches.borrow_mut()[sw].occupancy -= wire;
                });
                hook(sim, h, frame, arrive);
                return;
            }
        }
        let f2 = Rc::clone(self);
        link.transmit(sim, wire, move |sim| {
            f2.switches.borrow_mut()[sw].occupancy -= wire;
            match dest {
                Hop::Switch(next) => f2.hop(sim, next, frame, src, dst),
                Hop::Host(h) => {
                    let (stack, port) = {
                        let hosts = f2.hosts.borrow();
                        let att = hosts[h].as_ref().expect("frame for an unattached host");
                        (Rc::clone(&att.stack), att.port)
                    };
                    stack::frame_arrived(&stack, sim, port, frame);
                }
            }
        });
    }
}

impl FrameRouter for Fabric {
    fn frame_ingress(self: Rc<Self>, sim: &mut Sim, src: usize, frame: Frame) {
        let dst = self.conn_peer(src, frame.conn);
        let edge = self.topo.host_edge(src);
        self.hop(sim, edge, frame, src, dst);
    }

    fn ack_ingress(
        self: Rc<Self>,
        sim: &mut Sim,
        src: usize,
        conn: ConnId,
        seq: u64,
        window: u64,
        dup: u32,
    ) {
        let dst = self.conn_peer(src, conn);
        let stack = {
            let hosts = self.hosts.borrow();
            Rc::clone(
                &hosts[dst]
                    .as_ref()
                    .expect("ACK for an unattached host")
                    .stack,
            )
        };
        let delay = self.params.switch_latency * self.topo.path_links(src, dst) as u64;
        sim.schedule(delay, move |sim| {
            stack::ack_received(&stack, sim, conn, seq, window, dup);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_faults::{CrashWindow, LinkFlapModel};
    use ioat_netsim::config::{IoatConfig, StackParams};
    use ioat_netsim::socket::SocketEvent;
    use ioat_netsim::HostStack;

    fn small_fabric(buffer_bytes: u64) -> (Sim, FabricRef) {
        let mut sim = Sim::new();
        sim.set_event_limit(50_000_000);
        let params = FabricParams {
            buffer_bytes,
            ..FabricParams::gige()
        };
        (sim, Fabric::new(TopologySpec::FatTree { k: 4 }, params))
    }

    fn host(name: &str) -> StackRef {
        HostStack::new(name, 2, StackParams::default(), IoatConfig::disabled())
    }

    #[test]
    fn bytes_cross_the_fabric_exactly_once() {
        let (mut sim, fabric) = small_fabric(1 << 20);
        let a = host("a");
        let b = host("b");
        fabric.attach(&a, 0);
        fabric.attach(&b, 15); // inter-pod: full 6-link path
        fabric.open(0, 15, SocketOpts::tuned(), ConnId(1));
        let total = 1_000_000u64;
        let got = Rc::new(RefCell::new(0u64));
        let g = Rc::clone(&got);
        stack::set_handler(&b, ConnId(1), move |_sim, ev| {
            if let SocketEvent::Delivered(n) = ev {
                *g.borrow_mut() += n;
            }
        });
        stack::app_send(&a, &mut sim, ConnId(1), total);
        sim.run();
        assert_eq!(*got.borrow(), total);
        assert_eq!(fabric.tail_drops(), 0, "ample buffers must not drop");
        // Every data frame crosses 5 switches on an inter-pod path
        // (edge → agg → core → agg → edge).
        let sent = a.borrow().stats().frames_sent;
        assert_eq!(fabric.forwarded(), 5 * sent);
        fabric.audit(sim.now(), true);
        stack::audit_cluster_conservation_ext(
            &[Rc::clone(&a), Rc::clone(&b)],
            fabric.tail_drops(),
            fabric.blackholes(),
            sim.now(),
            true,
        );
    }

    #[test]
    fn tiny_buffers_tail_drop_and_the_sender_recovers() {
        // A shared buffer that fits barely more than one frame forces
        // drops under a windowed burst; retransmission must still land
        // every byte, and the conservation identity must hold with the
        // switch-drop term.
        let (mut sim, fabric) = small_fabric(4_000);
        let a = host("a");
        let b = host("b");
        fabric.attach(&a, 0);
        fabric.attach(&b, 15);
        fabric.open(0, 15, SocketOpts::tuned(), ConnId(1));
        let total = 300_000u64;
        let got = Rc::new(RefCell::new(0u64));
        let g = Rc::clone(&got);
        stack::set_handler(&b, ConnId(1), move |_sim, ev| {
            if let SocketEvent::Delivered(n) = ev {
                *g.borrow_mut() += n;
            }
        });
        stack::app_send(&a, &mut sim, ConnId(1), total);
        sim.run();
        assert_eq!(*got.borrow(), total, "retransmits must recover drops");
        assert!(fabric.tail_drops() > 0, "tiny buffer must tail-drop");
        assert!(
            a.borrow().stats().retransmits > 0,
            "recovery must go through the retransmit path"
        );
        // With the deliberate audit-bug skew compiled in, these audits
        // (correctly) fail once drops occur — the gated integration test
        // asserts exactly that.
        #[cfg(not(feature = "audit-bug"))]
        {
            fabric.audit(sim.now(), true);
            stack::audit_cluster_conservation_ext(
                &[Rc::clone(&a), Rc::clone(&b)],
                fabric.tail_drops(),
                fabric.blackholes(),
                sim.now(),
                true,
            );
        }
    }

    #[test]
    fn same_seed_same_paths() {
        let params = FabricParams::gige();
        let f1 = Fabric::new(TopologySpec::FatTree { k: 8 }, params);
        let f2 = Fabric::new(TopologySpec::FatTree { k: 8 }, params);
        for conn in 0..200u64 {
            for (sw, src, dst) in [(0usize, 0usize, 100usize), (3, 15, 77), (35, 40, 9)] {
                assert_eq!(
                    f1.route_port(sw, src, dst, ConnId(conn)),
                    f2.route_port(sw, src, dst, ConnId(conn)),
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_rejected() {
        let (_sim, fabric) = small_fabric(1 << 20);
        let a = host("a");
        fabric.attach(&a, 0);
        let b = host("b");
        fabric.attach(&b, 0);
    }

    /// Runs one inter-pod bulk transfer (host 0 → host 15) under `plan`
    /// and returns (delivered, blackholes, end-of-run instant, frames
    /// sent by the source).
    fn faulted_transfer(plan: &FaultPlan, total: u64) -> (u64, u64, SimTime, u64) {
        let (mut sim, fabric) = small_fabric(1 << 20);
        fabric.set_faults(plan);
        let a = host("a");
        let b = host("b");
        fabric.attach(&a, 0);
        fabric.attach(&b, 15);
        fabric.open(0, 15, SocketOpts::tuned(), ConnId(1));
        let got = Rc::new(RefCell::new(0u64));
        let g = Rc::clone(&got);
        stack::set_handler(&b, ConnId(1), move |_sim, ev| {
            if let SocketEvent::Delivered(n) = ev {
                *g.borrow_mut() += n;
            }
        });
        stack::app_send(&a, &mut sim, ConnId(1), total);
        sim.run();
        #[cfg(not(feature = "audit-bug"))]
        {
            fabric.audit(sim.now(), true);
            stack::audit_cluster_conservation_ext(
                &[Rc::clone(&a), Rc::clone(&b)],
                fabric.tail_drops(),
                fabric.blackholes(),
                sim.now(),
                true,
            );
        }
        let delivered = *got.borrow();
        let sent = a.borrow().stats().frames_sent;
        (delivered, fabric.blackholes(), sim.now(), sent)
    }

    #[test]
    fn single_agg_crash_reroutes_with_zero_blackholes() {
        // Crash one of pod 0's two aggregation switches for the whole
        // run: the source edge switch always has the other uplink alive,
        // so ECMP's surviving-set re-hash routes around the outage and no
        // frame ever lacks a live path.
        let plan = FaultPlan {
            switch_crashes: vec![CrashWindow {
                service: 8,
                window: TimeWindow::new(SimTime::ZERO, SimTime::from_millis(1_000)),
            }],
            ..FaultPlan::none()
        };
        let total = 500_000;
        let (delivered, blackholes, _, _) = faulted_transfer(&plan, total);
        assert_eq!(delivered, total, "failover path must carry every byte");
        assert_eq!(blackholes, 0, "a surviving uplink means no blackhole");
    }

    #[test]
    fn pod_uplink_outage_blackholes_then_recovers() {
        // Crash *both* pod-0 aggregation switches for the first 2 ms:
        // inter-pod frames blackhole at the edge until the window closes,
        // then go-back-N retransmission re-traverses the restored paths
        // and the quiescent conservation identity (checked inside the
        // helper) balances with the blackhole term.
        let down = TimeWindow::new(SimTime::ZERO, SimTime::from_millis(2));
        let plan = FaultPlan {
            switch_crashes: vec![
                CrashWindow {
                    service: 8,
                    window: down,
                },
                CrashWindow {
                    service: 9,
                    window: down,
                },
            ],
            ..FaultPlan::none()
        };
        let total = 500_000;
        let (delivered, blackholes, _, _) = faulted_transfer(&plan, total);
        assert_eq!(delivered, total, "recovery must deliver every byte");
        assert!(blackholes > 0, "a severed pod must blackhole frames");
    }

    #[test]
    fn link_flaps_reroute_and_recover() {
        // Seed-driven flap windows on every directed link: paths die and
        // return throughout the run. Delivery must still complete and the
        // conservation identity must balance (blackholes occur whenever a
        // flap severs the last candidate, e.g. an access link).
        let plan = FaultPlan {
            link_flap: Some(LinkFlapModel {
                flaps_per_link: 3,
                down_for: SimDuration::from_micros(400),
                horizon: SimTime::from_millis(8),
            }),
            seed: 7,
            ..FaultPlan::none()
        };
        let total = 500_000;
        let (delivered, _, _, _) = faulted_transfer(&plan, total);
        assert_eq!(delivered, total, "flapped paths must still deliver");
    }

    #[test]
    fn armed_but_never_triggering_plan_is_bit_identical() {
        // A fault plan whose only window sits far beyond the run installs
        // real fault state (the survivor filter runs on every hop) but
        // must not perturb a single routing choice or timestamp.
        let plan = FaultPlan {
            switch_crashes: vec![CrashWindow {
                service: 8,
                window: TimeWindow::new(SimTime::from_millis(60_000), SimTime::from_millis(61_000)),
            }],
            ..FaultPlan::none()
        };
        let total = 500_000;
        let base = faulted_transfer(&FaultPlan::none(), total);
        let armed = faulted_transfer(&plan, total);
        assert_eq!(base, armed, "dormant fault state must be invisible");
    }

    #[test]
    fn node_only_plan_leaves_the_fabric_inert() {
        // A plan with node faults but no fabric entries must install
        // nothing — a second call would otherwise hit the double-install
        // panic, so its success is the observable proof of inertness.
        let (_sim, fabric) = small_fabric(1 << 20);
        let plan = FaultPlan::bernoulli_loss(1, 0.01);
        fabric.set_faults(&plan);
        fabric.set_faults(&plan);
    }

    #[test]
    #[should_panic(expected = "fabric fault plan installed twice")]
    fn second_fabric_fault_install_panics() {
        let (_sim, fabric) = small_fabric(1 << 20);
        let plan = FaultPlan {
            switch_crashes: vec![CrashWindow {
                service: 0,
                window: TimeWindow::new(SimTime::ZERO, SimTime::from_millis(1)),
            }],
            ..FaultPlan::none()
        };
        fabric.set_faults(&plan);
        fabric.set_faults(&plan);
    }

    #[test]
    #[should_panic(expected = "the topology has only")]
    fn out_of_range_switch_crash_rejected() {
        let (_sim, fabric) = small_fabric(1 << 20);
        let plan = FaultPlan {
            switch_crashes: vec![CrashWindow {
                service: 999,
                window: TimeWindow::new(SimTime::ZERO, SimTime::from_millis(1)),
            }],
            ..FaultPlan::none()
        };
        fabric.set_faults(&plan);
    }
}
