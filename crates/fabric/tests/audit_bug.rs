//! Proves the drop-accounting audits *catch* a miscounted switch drop.
//!
//! With `--features audit-bug` the fabric silently skips every 97th
//! increment of its global tail-drop counter. Driving enough drops through
//! a tiny shared buffer must then trip both the fabric's own
//! per-switch-vs-global cross-check and the cluster-wide frame
//! conservation identity — evidence the audits detect real accounting
//! defects rather than vacuously passing.

use ioat_fabric::{Fabric, FabricParams, TopologySpec};
use ioat_netsim::config::{IoatConfig, StackParams};
use ioat_netsim::stack;
use ioat_netsim::{ConnId, HostStack, SocketOpts};
use ioat_simcore::Sim;
use std::rc::Rc;

#[test]
fn audit_catches_a_miscounted_switch_drop() {
    let (result, violations) = ioat_guard::with_audit(|| {
        let mut sim = Sim::new();
        sim.set_event_limit(50_000_000);
        let params = FabricParams {
            buffer_bytes: 8_000,
            ..FabricParams::gige()
        };
        let fabric = Fabric::new(TopologySpec::FatTree { k: 4 }, params);
        // Fan-in congestion: two senders converge on one receiver, so the
        // receiver's edge switch sees 2 Gbps in against a 1 Gbps host
        // link out and tail-drops continuously.
        let a = HostStack::new("a", 2, StackParams::default(), IoatConfig::disabled());
        let b = HostStack::new("b", 2, StackParams::default(), IoatConfig::disabled());
        let d = HostStack::new("d", 2, StackParams::default(), IoatConfig::disabled());
        fabric.attach(&a, 0);
        fabric.attach(&b, 4);
        fabric.attach(&d, 15);
        fabric.open(0, 15, SocketOpts::default(), ConnId(1));
        fabric.open(4, 15, SocketOpts::default(), ConnId(2));
        stack::app_send(&a, &mut sim, ConnId(1), 400_000);
        stack::app_send(&b, &mut sim, ConnId(2), 400_000);
        sim.run();
        let drops = fabric.tail_drops();
        let true_drops: u64 = (0..fabric.topology().switches())
            .map(|sw| fabric.switch_stats(sw).tail_drops)
            .sum();
        fabric.audit(sim.now(), true);
        stack::audit_cluster_conservation_ext(&[a, b, d], drops, sim.now(), true);
        (drops, true_drops)
    });
    let (skewed_drops, true_drops) = result.expect("run must complete");
    assert!(
        true_drops > 96,
        "need > 96 drops ({true_drops}) for the skew to manifest"
    );
    assert!(
        skewed_drops < true_drops,
        "global counter ({skewed_drops}) must lag the per-switch truth ({true_drops})"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.component == "fabric" && v.invariant.contains("drop accounting")),
        "fabric per-switch-vs-global cross-check must fire: {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.component == "netsim/cluster" && v.invariant.contains("frame conservation")),
        "cluster conservation must fire: {violations:?}"
    );
}
