//! Proves the drop-accounting audits *catch* a miscounted switch drop.
//!
//! With `--features audit-bug` the fabric silently skips every 97th
//! increment of its global tail-drop counter. Driving enough drops through
//! a tiny shared buffer must then trip both the fabric's own
//! per-switch-vs-global cross-check and the cluster-wide frame
//! conservation identity — evidence the audits detect real accounting
//! defects rather than vacuously passing.

use ioat_fabric::{Fabric, FabricParams, TopologySpec};
use ioat_faults::{CrashWindow, FaultPlan, TimeWindow};
use ioat_netsim::config::{IoatConfig, StackParams};
use ioat_netsim::stack;
use ioat_netsim::{ConnId, HostStack, SocketOpts};
use ioat_simcore::{Sim, SimTime};

#[test]
fn audit_catches_a_miscounted_switch_drop() {
    let (result, violations) = ioat_guard::with_audit(|| {
        let mut sim = Sim::new();
        sim.set_event_limit(50_000_000);
        let params = FabricParams {
            buffer_bytes: 8_000,
            ..FabricParams::gige()
        };
        let fabric = Fabric::new(TopologySpec::FatTree { k: 4 }, params);
        // Fan-in congestion: two senders converge on one receiver, so the
        // receiver's edge switch sees 2 Gbps in against a 1 Gbps host
        // link out and tail-drops continuously.
        let a = HostStack::new("a", 2, StackParams::default(), IoatConfig::disabled());
        let b = HostStack::new("b", 2, StackParams::default(), IoatConfig::disabled());
        let d = HostStack::new("d", 2, StackParams::default(), IoatConfig::disabled());
        fabric.attach(&a, 0);
        fabric.attach(&b, 4);
        fabric.attach(&d, 15);
        fabric.open(0, 15, SocketOpts::default(), ConnId(1));
        fabric.open(4, 15, SocketOpts::default(), ConnId(2));
        stack::app_send(&a, &mut sim, ConnId(1), 400_000);
        stack::app_send(&b, &mut sim, ConnId(2), 400_000);
        sim.run();
        let drops = fabric.tail_drops();
        let true_drops: u64 = (0..fabric.topology().switches())
            .map(|sw| fabric.switch_stats(sw).tail_drops)
            .sum();
        fabric.audit(sim.now(), true);
        stack::audit_cluster_conservation_ext(
            &[a, b, d],
            drops,
            fabric.blackholes(),
            sim.now(),
            true,
        );
        (drops, true_drops)
    });
    let (skewed_drops, true_drops) = result.expect("run must complete");
    assert!(
        true_drops > 96,
        "need > 96 drops ({true_drops}) for the skew to manifest"
    );
    assert!(
        skewed_drops < true_drops,
        "global counter ({skewed_drops}) must lag the per-switch truth ({true_drops})"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.component == "fabric" && v.invariant.contains("drop accounting")),
        "fabric per-switch-vs-global cross-check must fire: {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.component == "netsim/cluster" && v.invariant.contains("frame conservation")),
        "cluster conservation must fire: {violations:?}"
    );
}

#[test]
fn audit_catches_a_miscounted_route_blackhole() {
    let (result, violations) = ioat_guard::with_audit(|| {
        let mut sim = Sim::new();
        sim.set_event_limit(50_000_000);
        let fabric = Fabric::new(TopologySpec::FatTree { k: 4 }, FabricParams::gige());
        // Crash both aggregation switches of pod 0 (switches 8 and 9 in
        // the fat-tree(4) numbering) for the first 3 ms: every inter-pod
        // frame leaving pod 0 finds zero surviving uplinks at its edge
        // switch and blackholes. Four bulk connections push well over 96
        // blackholes before the window closes, which is where the global
        // counter's deliberate skew manifests; afterwards retransmission
        // drains everything so the quiescent identity applies.
        let down = TimeWindow::new(SimTime::ZERO, SimTime::from_millis(3));
        let plan = FaultPlan {
            switch_crashes: vec![
                CrashWindow {
                    service: 8,
                    window: down,
                },
                CrashWindow {
                    service: 9,
                    window: down,
                },
            ],
            ..FaultPlan::none()
        };
        fabric.set_faults(&plan);
        let mut stacks = Vec::new();
        for (i, (src, dst)) in [(0usize, 12usize), (1, 13), (2, 14), (3, 15)]
            .into_iter()
            .enumerate()
        {
            let s = HostStack::new("s", 2, StackParams::default(), IoatConfig::disabled());
            let r = HostStack::new("r", 2, StackParams::default(), IoatConfig::disabled());
            fabric.attach(&s, src);
            fabric.attach(&r, dst);
            fabric.open(src, dst, SocketOpts::tuned(), ConnId(1 + i as u64));
            stack::app_send(&s, &mut sim, ConnId(1 + i as u64), 200_000);
            stacks.push(s);
            stacks.push(r);
        }
        sim.run();
        let skewed = fabric.blackholes();
        let true_bh: u64 = (0..fabric.topology().switches())
            .map(|sw| fabric.switch_stats(sw).blackholes)
            .sum();
        fabric.audit(sim.now(), true);
        stack::audit_cluster_conservation_ext(
            &stacks,
            fabric.tail_drops(),
            skewed,
            sim.now(),
            true,
        );
        (skewed, true_bh)
    });
    let (skewed, true_bh) = result.expect("run must complete");
    assert!(
        true_bh > 96,
        "need > 96 blackholes ({true_bh}) for the skew to manifest"
    );
    assert!(
        skewed < true_bh,
        "global counter ({skewed}) must lag the per-switch truth ({true_bh})"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.component == "fabric" && v.invariant.contains("blackhole accounting")),
        "fabric per-switch-vs-global blackhole cross-check must fire: {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.component == "netsim/cluster" && v.invariant.contains("frame conservation")),
        "cluster conservation must fire against the skewed blackhole term: {violations:?}"
    );
}
