//! Structural properties of the topology builder, checked by exhaustive
//! enumeration rather than closed forms alone: the enumerated structure
//! (port lists, structural routing) must agree with every formula the
//! runtime and the documentation rely on.

use ioat_fabric::{Fabric, FabricParams, Hop, Topology, TopologySpec};
use ioat_netsim::ConnId;
use std::collections::HashSet;

/// Counts distinct host-to-host forwarding paths by walking the
/// structural routing exactly as the runtime does.
fn count_paths(t: &Topology, sw: usize, dst: usize) -> usize {
    let ports = t.switch_ports(sw);
    let (first, n) = t.route(sw, dst);
    (first..first + n)
        .map(|p| match ports[p] {
            Hop::Host(h) => {
                assert_eq!(h, dst, "down port must reach the routed destination");
                1
            }
            Hop::Switch(next) => count_paths(t, next, dst),
        })
        .sum()
}

#[test]
fn fat_tree_closed_forms_match_enumeration() {
    for k in [4usize, 6, 8, 10] {
        let t = Topology::new(TopologySpec::FatTree { k });
        let mut hosts = HashSet::new();
        let mut directed_switch_links = 0usize;
        let mut host_links = 0usize;
        for sw in 0..t.switches() {
            for dest in t.switch_ports(sw) {
                match dest {
                    Hop::Host(h) => {
                        assert!(hosts.insert(h), "host {h} attached to two switches");
                        assert_eq!(t.host_edge(h), sw, "host_edge must invert the port map");
                        host_links += 1;
                    }
                    Hop::Switch(next) => {
                        // Inter-switch connectivity must be symmetric.
                        assert!(
                            t.switch_ports(next).contains(&Hop::Switch(sw)),
                            "link {sw}→{next} has no reverse port"
                        );
                        directed_switch_links += 1;
                    }
                }
            }
        }
        assert_eq!(hosts.len(), k * k * k / 4, "fat-tree({k}) host count");
        assert_eq!(t.hosts(), hosts.len());
        assert_eq!(t.switches(), 5 * k * k / 4, "fat-tree({k}) switch count");
        assert_eq!(
            host_links + directed_switch_links / 2,
            3 * k * k * k / 4,
            "fat-tree({k}) link count"
        );
        assert_eq!(t.links(), host_links + directed_switch_links / 2);
    }
}

#[test]
fn equal_cost_path_formula_matches_enumeration() {
    let t = Topology::new(TopologySpec::FatTree { k: 4 });
    for a in 0..t.hosts() {
        for b in 0..t.hosts() {
            if a == b {
                continue;
            }
            let enumerated = count_paths(&t, t.host_edge(a), b);
            assert_eq!(
                t.equal_cost_paths(a, b),
                enumerated,
                "path formula for {a}→{b}"
            );
            // Any pair not under the same edge switch routes through tier
            // ≥ 1 and must see real path diversity.
            if t.host_edge(a) != t.host_edge(b) {
                assert!(enumerated >= 2, "{a}→{b} must have ≥ 2 equal-cost paths");
            }
        }
    }
}

#[test]
fn leaf_spine_paths_match_enumeration() {
    let t = Topology::new(TopologySpec::LeafSpine {
        leaves: 4,
        spines: 3,
        hosts_per_leaf: 5,
    });
    for a in 0..t.hosts() {
        for b in 0..t.hosts() {
            if a == b {
                continue;
            }
            assert_eq!(t.equal_cost_paths(a, b), count_paths(&t, t.host_edge(a), b));
            if t.host_edge(a) != t.host_edge(b) {
                assert!(t.equal_cost_paths(a, b) >= 2);
            }
        }
    }
}

#[test]
fn ecmp_spreads_flows_across_uplinks_within_tolerance() {
    // Many connections from one edge switch to far-away hosts must land
    // on each of the m uplinks within a tolerance band of the fair share.
    let k = 8usize;
    let m = k / 2;
    let fabric = Fabric::new(TopologySpec::FatTree { k }, FabricParams::gige());
    let t = fabric.topology();
    let edge = 0usize; // pod 0, edge 0; hosts 0..m attach here
    let flows = 40_000usize;
    let mut counts = vec![0usize; k];
    for f in 0..flows {
        let src = f % m;
        let dst = t.hosts() - 1 - (f % (m * m)); // always inter-pod
        let port = fabric.route_port(edge, src, dst, ConnId(f as u64));
        assert!((m..2 * m).contains(&port), "must pick an uplink");
        counts[port] += 1;
    }
    let fair = flows as f64 / m as f64;
    for (port, &count) in counts.iter().enumerate().take(2 * m).skip(m) {
        let dev = (count as f64 - fair).abs() / fair;
        assert!(
            dev < 0.05,
            "uplink {port} got {count} flows, fair share {fair:.0} (dev {dev:.3})"
        );
    }
}

#[test]
fn routing_is_loop_free_and_hop_counts_match() {
    // Walk one concrete path per host pair (ECMP pick 0) and check it
    // reaches the destination in exactly `path_links` hops.
    for spec in [
        TopologySpec::FatTree { k: 4 },
        TopologySpec::LeafSpine {
            leaves: 3,
            spines: 2,
            hosts_per_leaf: 4,
        },
    ] {
        let t = Topology::new(spec);
        for a in 0..t.hosts() {
            for b in 0..t.hosts() {
                if a == b {
                    continue;
                }
                let mut links = 1; // host a → edge
                let mut sw = t.host_edge(a);
                loop {
                    let (first, _) = t.route(sw, b);
                    links += 1;
                    match t.switch_ports(sw)[first] {
                        Hop::Host(h) => {
                            assert_eq!(h, b);
                            break;
                        }
                        Hop::Switch(next) => sw = next,
                    }
                    assert!(links <= 6, "path {a}→{b} too long — routing loop?");
                }
                assert_eq!(links, t.path_links(a, b), "hop count {a}→{b}");
            }
        }
    }
}
