//! The event tracer: spans, instants and counters in simulated time.
//!
//! Model components hold a [`Tracer`] (a cheap `Rc` handle) and call
//! [`Tracer::span`] *after* they have computed a cost — the span records
//! `[start, end)` retroactively, so emitting it cannot perturb the
//! simulation. Event names are `&'static str` and events are `Copy`
//! structs pushed into a pre-allocated buffer: the hot path allocates
//! nothing once the buffer has warmed up.

use ioat_simcore::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Event category, mirroring the paper's receive-path decomposition plus
/// the simulator's own layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Interrupt handling (per-coalescing-event fixed + per-frame cost).
    Interrupt,
    /// TCP/IP protocol processing (header/state touching).
    Protocol,
    /// Kernel-to-user (and user-to-kernel) CPU copies.
    Copy,
    /// DMA copy-engine activity: issue overhead, transfer, completion reap.
    Dma,
    /// Application compute (server-side message processing).
    App,
    /// Request lifecycle in multi-tier scenarios (datacenter tiers).
    Request,
    /// File-system I/O operations (PVFS reads/writes/opens).
    Io,
    /// Injected faults and the recovery they trigger (drops, retransmits,
    /// timeouts, failovers).
    Fault,
    /// Simulator engine events (very high volume; off in `enabled()`).
    Sim,
    /// Anything else.
    Other,
    /// Runtime invariant-audit events (violations surfaced by
    /// `ioat-guard`). Appended last so existing discriminants — and any
    /// traces serialized with them — stay stable.
    Audit,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 11] = [
        Category::Interrupt,
        Category::Protocol,
        Category::Copy,
        Category::Dma,
        Category::App,
        Category::Request,
        Category::Io,
        Category::Fault,
        Category::Sim,
        Category::Other,
        Category::Audit,
    ];

    /// Stable lowercase name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            Category::Interrupt => "interrupt",
            Category::Protocol => "protocol",
            Category::Copy => "copy",
            Category::Dma => "dma",
            Category::App => "app",
            Category::Request => "request",
            Category::Io => "io",
            Category::Fault => "fault",
            Category::Sim => "sim",
            Category::Other => "other",
            Category::Audit => "audit",
        }
    }

    fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Index into [`Category::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Where an event happened: a node (Chrome-trace process) and a core or
/// pseudo-core (Chrome-trace thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId {
    /// Node index (pid in the exported trace).
    pub node: u32,
    /// Core index within the node (tid in the exported trace). Non-CPU
    /// actors (DMA channels, request lanes) use indices past the core
    /// count.
    pub core: u32,
}

impl TrackId {
    /// Convenience constructor.
    pub fn new(node: u32, core: u32) -> Self {
        TrackId { node, core }
    }
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A closed interval of busy time `[start, end)`.
    Span {
        /// Interval start.
        start: SimTime,
        /// Interval end (`>= start`).
        end: SimTime,
    },
    /// A point-in-time marker.
    Instant {
        /// When it happened.
        at: SimTime,
    },
    /// A sampled numeric series value.
    Counter {
        /// Sample instant.
        at: SimTime,
        /// Sample value.
        value: f64,
    },
}

/// One recorded trace event. `Copy` and allocation-free by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Static event name.
    pub name: &'static str,
    /// Category (also the Chrome-trace `cat` field).
    pub cat: Category,
    /// Node/core attribution.
    pub track: TrackId,
    /// Span, instant or counter payload.
    pub kind: EventKind,
}

struct TraceBuf {
    events: Vec<Event>,
    mask: u32,
    /// (node, core) -> thread name for export metadata.
    tracks: BTreeMap<(u32, u32), String>,
    /// node -> process name for export metadata.
    processes: BTreeMap<u32, String>,
}

/// Pre-allocated event capacity: enough for the quick-window experiments
/// without growth; larger runs grow amortized.
const INITIAL_CAPACITY: usize = 64 * 1024;

/// A handle to a trace buffer, or a no-op when disabled.
///
/// Cloning shares the buffer. The default tracer is disabled:
///
/// ```rust
/// use ioat_telemetry::{Category, TrackId, Tracer};
/// use ioat_simcore::SimTime;
///
/// let off = Tracer::default();
/// off.instant("x", Category::Other, TrackId::new(0, 0), SimTime::ZERO);
/// assert_eq!(off.len(), 0);
///
/// let on = Tracer::enabled();
/// on.instant("x", Category::Other, TrackId::new(0, 0), SimTime::ZERO);
/// assert_eq!(on.len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceBuf>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(b) => f
                .debug_struct("Tracer")
                .field("events", &b.borrow().events.len())
                .finish(),
        }
    }
}

impl Tracer {
    /// A disabled tracer: every record call is a no-op.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer recording every category except the very
    /// high-volume [`Category::Sim`] engine events.
    pub fn enabled() -> Self {
        let mask = Category::ALL
            .iter()
            .filter(|c| **c != Category::Sim)
            .fold(0, |m, c| m | c.bit());
        Tracer::with_mask(mask)
    }

    /// An enabled tracer recording all categories, engine events included.
    pub fn all() -> Self {
        Tracer::with_mask(u32::MAX)
    }

    /// An enabled tracer recording only the given categories.
    pub fn with_categories(cats: &[Category]) -> Self {
        Tracer::with_mask(cats.iter().fold(0, |m, c| m | c.bit()))
    }

    fn with_mask(mask: u32) -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuf {
                events: Vec::with_capacity(INITIAL_CAPACITY),
                mask,
                tracks: BTreeMap::new(),
                processes: BTreeMap::new(),
            }))),
        }
    }

    /// Whether any recording can happen at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether a specific category is being recorded.
    pub fn records(&self, cat: Category) -> bool {
        match &self.inner {
            None => false,
            Some(b) => b.borrow().mask & cat.bit() != 0,
        }
    }

    #[inline]
    fn push(&self, ev: Event) {
        if let Some(b) = &self.inner {
            let mut b = b.borrow_mut();
            if b.mask & ev.cat.bit() != 0 {
                b.events.push(ev);
            }
        }
    }

    /// Records a busy interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `end < start`.
    #[inline]
    pub fn span(
        &self,
        name: &'static str,
        cat: Category,
        track: TrackId,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(end >= start, "span {name}: end {end} before start {start}");
        self.push(Event {
            name,
            cat,
            track,
            kind: EventKind::Span { start, end },
        });
    }

    /// Records a point-in-time marker.
    #[inline]
    pub fn instant(&self, name: &'static str, cat: Category, track: TrackId, at: SimTime) {
        self.push(Event {
            name,
            cat,
            track,
            kind: EventKind::Instant { at },
        });
    }

    /// Records one sample of a numeric series.
    #[inline]
    pub fn counter(
        &self,
        name: &'static str,
        cat: Category,
        track: TrackId,
        at: SimTime,
        value: f64,
    ) {
        self.push(Event {
            name,
            cat,
            track,
            kind: EventKind::Counter { at, value },
        });
    }

    /// Names a node for export metadata (Chrome-trace `process_name`).
    pub fn set_process_name(&self, node: u32, name: &str) {
        if let Some(b) = &self.inner {
            b.borrow_mut().processes.insert(node, name.to_string());
        }
    }

    /// Names a track for export metadata (Chrome-trace `thread_name`).
    pub fn set_track_name(&self, track: TrackId, name: &str) {
        if let Some(b) = &self.inner {
            b.borrow_mut()
                .tracks
                .insert((track.node, track.core), name.to_string());
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |b| b.borrow().events.len())
    }

    /// True when nothing has been recorded (or the tracer is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all recorded events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |b| b.borrow().events.clone())
    }

    /// Snapshot of process-name metadata.
    pub fn process_names(&self) -> BTreeMap<u32, String> {
        self.inner
            .as_ref()
            .map_or_else(BTreeMap::new, |b| b.borrow().processes.clone())
    }

    /// Snapshot of track-name metadata.
    pub fn track_names(&self) -> BTreeMap<(u32, u32), String> {
        self.inner
            .as_ref()
            .map_or_else(BTreeMap::new, |b| b.borrow().tracks.clone())
    }

    /// Drops all recorded events, keeping the mask and metadata.
    pub fn clear(&self) {
        if let Some(b) = &self.inner {
            b.borrow_mut().events.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::disabled();
        tr.span("s", Category::Copy, TrackId::new(0, 0), t(0), t(5));
        tr.counter("c", Category::Other, TrackId::new(0, 0), t(1), 2.0);
        assert!(!tr.is_enabled());
        assert!(tr.is_empty());
        assert!(tr.events().is_empty());
    }

    #[test]
    fn category_mask_filters() {
        let tr = Tracer::with_categories(&[Category::Interrupt]);
        tr.span("irq", Category::Interrupt, TrackId::new(0, 1), t(0), t(5));
        tr.span("cp", Category::Copy, TrackId::new(0, 1), t(5), t(9));
        assert!(tr.records(Category::Interrupt));
        assert!(!tr.records(Category::Copy));
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.events()[0].name, "irq");
    }

    #[test]
    fn enabled_skips_sim_category() {
        let tr = Tracer::enabled();
        assert!(tr.records(Category::Interrupt));
        assert!(!tr.records(Category::Sim));
        // Audit violations are rare and load-bearing: the default tracer
        // must keep them even though it drops engine noise.
        assert!(tr.records(Category::Audit));
        assert_eq!(Category::Audit.name(), "audit");
        let all = Tracer::all();
        assert!(all.records(Category::Sim));
    }

    #[test]
    fn clones_share_the_buffer() {
        let tr = Tracer::enabled();
        let tr2 = tr.clone();
        tr.instant("a", Category::Other, TrackId::new(1, 0), t(3));
        tr2.instant("b", Category::Other, TrackId::new(1, 0), t(4));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr2.len(), 2);
    }

    #[test]
    fn metadata_round_trips() {
        let tr = Tracer::enabled();
        tr.set_process_name(0, "server");
        tr.set_track_name(TrackId::new(0, 2), "core2");
        assert_eq!(tr.process_names()[&0], "server");
        assert_eq!(tr.track_names()[&(0, 2)], "core2");
    }

    #[test]
    fn events_keep_emission_order() {
        let tr = Tracer::enabled();
        tr.span("a", Category::Copy, TrackId::new(0, 0), t(10), t(20));
        tr.instant("b", Category::App, TrackId::new(0, 1), t(15));
        let evs = tr.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert!(matches!(evs[1].kind, EventKind::Instant { at } if at == t(15)));
    }

    #[test]
    fn clear_keeps_metadata() {
        let tr = Tracer::enabled();
        tr.set_process_name(0, "n");
        tr.instant("x", Category::Other, TrackId::new(0, 0), t(1));
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.process_names().len(), 1);
    }
}
