//! Exporters: Chrome `trace_event` JSON and CSV.
//!
//! The JSON emitter is hand-rolled (the offline build has no registry
//! access) and targets the subset of the Trace Event Format that Perfetto
//! and `chrome://tracing` load: `"X"` complete events for spans, `"i"`
//! instants, `"C"` counters and `"M"` metadata records naming processes
//! (nodes) and threads (cores). Timestamps are microseconds with
//! nanosecond fractions.

use crate::registry::MetricsRegistry;
use crate::tracer::{Event, EventKind, Tracer};
use ioat_simcore::SimTime;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → trace-event microseconds ("123.456").
fn ts_us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders the full Chrome `trace_event` JSON document for a tracer's
/// events and metadata.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let events = tracer.events();
    // ~120 bytes per serialized event is a comfortable upper bound.
    let mut out = String::with_capacity(events.len() * 120 + 1024);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_obj = |out: &mut String, body: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str("\n{");
        out.push_str(&body);
        out.push('}');
    };

    for (node, name) in tracer.process_names() {
        push_obj(
            &mut out,
            format!(
                "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}",
                json_escape(&name)
            ),
        );
    }
    for ((node, core), name) in tracer.track_names() {
        push_obj(
            &mut out,
            format!(
                "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{core},\
                 \"args\":{{\"name\":\"{}\"}}",
                json_escape(&name)
            ),
        );
    }
    for ev in &events {
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{}",
            json_escape(ev.name),
            ev.cat.name(),
            ev.track.node,
            ev.track.core
        );
        let body = match ev.kind {
            EventKind::Span { start, end } => {
                let dur_ns = end.as_nanos() - start.as_nanos();
                format!(
                    "{common},\"ph\":\"X\",\"ts\":{},\"dur\":{}.{:03}",
                    ts_us(start),
                    dur_ns / 1_000,
                    dur_ns % 1_000
                )
            }
            EventKind::Instant { at } => {
                format!("{common},\"ph\":\"i\",\"s\":\"t\",\"ts\":{}", ts_us(at))
            }
            EventKind::Counter { at, value } => {
                // JSON has no NaN/Infinity; a pathological counter value
                // must not corrupt the whole trace document.
                let v = if value.is_finite() {
                    format!("{value}")
                } else {
                    "null".to_string()
                };
                format!(
                    "{common},\"ph\":\"C\",\"ts\":{},\"args\":{{\"value\":{v}}}",
                    ts_us(at)
                )
            }
        };
        push_obj(&mut out, body);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Writes the Chrome trace JSON to `path`.
pub fn write_chrome_trace(path: &Path, tracer: &Tracer) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(tracer))
}

/// Renders events as CSV
/// (`name,category,node,core,kind,start_ns,end_ns,value`).
pub fn events_csv(events: &[Event]) -> String {
    let mut out = String::from("name,category,node,core,kind,start_ns,end_ns,value\n");
    for ev in events {
        let (kind, start, end, value) = match ev.kind {
            EventKind::Span { start, end } => {
                ("span", start.as_nanos(), end.as_nanos(), String::new())
            }
            EventKind::Instant { at } => ("instant", at.as_nanos(), at.as_nanos(), String::new()),
            EventKind::Counter { at, value } => {
                ("counter", at.as_nanos(), at.as_nanos(), format!("{value}"))
            }
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{kind},{start},{end},{value}",
            ev.name,
            ev.cat.name(),
            ev.track.node,
            ev.track.core
        );
    }
    out
}

/// Renders a metrics registry as CSV (`kind,name,field,value` rows:
/// counters and gauges one row each, histograms one row per bucket plus
/// count/sum).
pub fn registry_csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("kind,name,field,value\n");
    for (name, v) in reg.counters() {
        let _ = writeln!(out, "counter,{name},value,{v}");
    }
    for (name, v) in reg.gauges() {
        let _ = writeln!(out, "gauge,{name},value,{v}");
    }
    for (name, h) in reg.histograms() {
        let _ = writeln!(out, "histogram,{name},count,{}", h.count());
        let _ = writeln!(out, "histogram,{name},sum,{}", h.sum());
        for (bound, count) in h.buckets() {
            let _ = writeln!(out, "histogram,{name},le_{bound},{count}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Category, TrackId};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// A minimal structural JSON parser: validates the exported document
    /// without external deps. Returns the number of objects in
    /// `traceEvents`.
    fn parse_trace_json(s: &str) -> usize {
        let s = s.trim();
        assert!(
            s.starts_with('{') && s.ends_with('}'),
            "document is an object"
        );
        assert!(s.contains("\"traceEvents\":["), "has traceEvents array");
        // Balance braces/brackets while respecting strings.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        let mut objects = 0;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => {
                    depth += 1;
                    // doc object = 1, traceEvents array = 2, event = 3.
                    if depth == 3 {
                        objects += 1;
                    }
                }
                '}' => depth -= 1,
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced structure");
        }
        assert_eq!(depth, 0, "balanced document");
        assert!(!in_str, "no unterminated string");
        objects
    }

    #[test]
    fn chrome_trace_structure_is_valid() {
        let tr = Tracer::enabled();
        tr.set_process_name(0, "server");
        tr.set_track_name(TrackId::new(0, 1), "core1");
        tr.span(
            "irq \"x\"\n",
            Category::Interrupt,
            TrackId::new(0, 1),
            t(1_500),
            t(3_750),
        );
        tr.instant("mark", Category::App, TrackId::new(0, 1), t(2_000));
        tr.counter(
            "backlog",
            Category::Other,
            TrackId::new(0, 0),
            t(9_001),
            7.5,
        );
        let json = chrome_trace_json(&tr);
        // 2 metadata + 3 events, each an object; args objects nest deeper.
        assert_eq!(parse_trace_json(&json), 5);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.250"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"irq \\\"x\\\"\\n\""), "name is escaped");
    }

    #[test]
    fn non_finite_counter_values_export_as_null() {
        let tr = Tracer::enabled();
        let track = TrackId::new(0, 0);
        tr.counter("a", Category::Other, track, t(1), f64::NAN);
        tr.counter("b", Category::Other, track, t(2), f64::INFINITY);
        tr.counter("c", Category::Other, track, t(3), f64::NEG_INFINITY);
        let json = chrome_trace_json(&tr);
        parse_trace_json(&json);
        assert_eq!(json.matches("\"value\":null").count(), 3);
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn empty_tracer_exports_valid_document() {
        let json = chrome_trace_json(&Tracer::enabled());
        assert_eq!(parse_trace_json(&json), 0);
        let disabled = chrome_trace_json(&Tracer::disabled());
        assert_eq!(parse_trace_json(&disabled), 0);
    }

    #[test]
    fn write_then_read_back() {
        let tr = Tracer::enabled();
        tr.span("s", Category::Copy, TrackId::new(2, 3), t(0), t(10));
        let path = std::env::temp_dir().join("ioat_telemetry_test_trace.json");
        write_chrome_trace(&path, &tr).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, chrome_trace_json(&tr));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_csv_rows() {
        let tr = Tracer::enabled();
        tr.span("s", Category::Copy, TrackId::new(0, 1), t(5), t(9));
        tr.counter("c", Category::Io, TrackId::new(1, 0), t(7), 2.5);
        let csv = events_csv(&tr.events());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "s,copy,0,1,span,5,9,");
        assert_eq!(lines[2], "c,io,1,0,counter,7,7,2.5");
    }

    #[test]
    fn registry_csv_rows() {
        let mut reg = MetricsRegistry::new();
        reg.add("frames", 12);
        reg.set_gauge("cpu", 0.25);
        reg.declare_histogram("lat", &[10.0]);
        reg.observe("lat", 3.0);
        let csv = registry_csv(&reg);
        assert!(csv.contains("counter,frames,value,12"));
        assert!(csv.contains("gauge,cpu,value,0.25"));
        assert!(csv.contains("histogram,lat,count,1"));
        assert!(csv.contains("histogram,lat,le_10,1"));
        assert!(csv.contains("histogram,lat,le_inf,0"));
    }
}
