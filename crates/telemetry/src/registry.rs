//! A metrics registry: named counters, gauges and fixed-bucket histograms.
//!
//! The structured replacement for ad-hoc stat fields: experiments snapshot
//! model counters into a registry at the end of a run, then export one CSV
//! next to the trace. Keys are plain strings so callers can prefix them
//! with node names (`"server.frames_processed"`).

use std::collections::BTreeMap;

/// Default histogram bucket upper bounds (log-ish sweep covering ns-scale
/// latencies through multi-second totals).
pub const DEFAULT_BOUNDS: [f64; 10] = [1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11];

/// A histogram over a fixed set of bucket upper bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    /// Inclusive upper bound per bucket, strictly increasing; one overflow
    /// bucket is appended implicitly.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl FixedHistogram {
    /// Creates a histogram with the given bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// `(upper_bound, count)` pairs; the final pair uses `f64::INFINITY`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket counts: the
    /// upper bound of the bucket containing the q-th observation. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bound, count) in self.buckets() {
            seen += count;
            if seen >= rank {
                return bound;
            }
        }
        f64::INFINITY
    }

    /// Merges another histogram with identical bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Named counters, gauges and histograms.
///
/// ```rust
/// use ioat_telemetry::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.add("frames", 3);
/// reg.add("frames", 2);
/// reg.set_gauge("cpu", 0.42);
/// reg.observe("latency_ns", 1500.0);
/// assert_eq!(reg.counter("frames"), 5);
/// assert_eq!(reg.histogram("latency_ns").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, FixedHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Declares a histogram with explicit bucket bounds; a no-op if it
    /// already exists.
    pub fn declare_histogram(&mut self, name: &str, bounds: &[f64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| FixedHistogram::new(bounds));
    }

    /// Records an observation, auto-declaring the histogram with
    /// [`DEFAULT_BOUNDS`] when needed.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| FixedHistogram::new(&DEFAULT_BOUNDS))
            .record(v);
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&FixedHistogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &FixedHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one (counters add, gauges take the
    /// other's value, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.inc("a");
        r.add("a", 4);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("u", 0.5);
        r.set_gauge("u", 0.7);
        assert_eq!(r.gauge("u"), Some(0.7));
        assert_eq!(r.gauge("v"), None);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = FixedHistogram::new(&[10.0, 100.0, 1000.0]);
        for v in [1.0, 5.0, 50.0, 500.0, 5000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5556.0);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![2, 1, 1, 1]);
        // 2 of 5 observations ≤ 10 → p40 lands in the first bucket.
        assert_eq!(h.quantile(0.4), 10.0);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
        assert_eq!(FixedHistogram::new(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        FixedHistogram::new(&[10.0, 5.0]);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = FixedHistogram::new(&[10.0]);
        let mut b = FixedHistogram::new(&[10.0]);
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let counts: Vec<u64> = a.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn registry_merge() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("c", 1);
        b.add("c", 2);
        b.set_gauge("g", 3.0);
        b.observe("h", 42.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(3.0));
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn observe_auto_declares() {
        let mut r = MetricsRegistry::new();
        r.observe("x", 3.0);
        r.observe("x", 2e12); // overflow bucket
        let h = r.histogram("x").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }
}
