//! Derived reports: the per-category CPU split-up (paper Fig. 7).
//!
//! Groups span time per [`Category`] per track over a measurement window,
//! clipping spans at the window edges. Shares over the receive-path
//! categories (interrupt / protocol / copy) regenerate the paper's
//! decomposition of where receive-side CPU time goes, and the Dma column
//! shows what the copy engine absorbed.

use crate::tracer::{Category, Event, EventKind, TrackId};
use ioat_simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Span time per category per track over a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitupReport {
    from: SimTime,
    to: SimTime,
    per_track: BTreeMap<TrackId, [u64; Category::ALL.len()]>,
}

/// Builds a [`SplitupReport`] from recorded events over `[from, to]`.
/// Spans partially inside the window contribute their clipped portion;
/// instants and counters are ignored.
pub fn cpu_splitup(events: &[Event], from: SimTime, to: SimTime) -> SplitupReport {
    let mut per_track: BTreeMap<TrackId, [u64; Category::ALL.len()]> = BTreeMap::new();
    for ev in events {
        if let EventKind::Span { start, end } = ev.kind {
            let s = start.max(from);
            let e = end.min(to);
            if e <= s {
                continue;
            }
            let ns = e.as_nanos() - s.as_nanos();
            per_track
                .entry(ev.track)
                .or_insert([0; Category::ALL.len()])[ev.cat.index()] += ns;
        }
    }
    SplitupReport {
        from,
        to,
        per_track,
    }
}

impl SplitupReport {
    /// The measurement window.
    pub fn window(&self) -> (SimTime, SimTime) {
        (self.from, self.to)
    }

    /// Total span time in a category, summed across tracks.
    pub fn busy(&self, cat: Category) -> SimDuration {
        SimDuration::from_nanos(self.per_track.values().map(|cats| cats[cat.index()]).sum())
    }

    /// Span time in a category on one track.
    pub fn busy_on(&self, track: TrackId, cat: Category) -> SimDuration {
        SimDuration::from_nanos(
            self.per_track
                .get(&track)
                .map_or(0, |cats| cats[cat.index()]),
        )
    }

    /// Total span time across all categories and tracks.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.per_track
                .values()
                .map(|cats| cats.iter().sum::<u64>())
                .sum(),
        )
    }

    /// A category's share of the time in `cats` (0 when that total is 0).
    pub fn share_among(&self, cat: Category, cats: &[Category]) -> f64 {
        let total: u64 = cats.iter().map(|c| self.busy(*c).as_nanos()).sum();
        if total == 0 {
            0.0
        } else {
            self.busy(cat).as_nanos() as f64 / total as f64
        }
    }

    /// A category's share of all traced span time.
    pub fn share(&self, cat: Category) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            0.0
        } else {
            self.busy(cat).as_nanos() as f64 / total as f64
        }
    }

    /// The paper's receive-path decomposition: interrupt handling, TCP/IP
    /// protocol processing and kernel-to-user copy shares (of their sum).
    pub fn receive_path_shares(&self) -> [(Category, f64); 3] {
        const RX: [Category; 3] = [Category::Interrupt, Category::Protocol, Category::Copy];
        [
            (RX[0], self.share_among(RX[0], &RX)),
            (RX[1], self.share_among(RX[1], &RX)),
            (RX[2], self.share_among(RX[2], &RX)),
        ]
    }

    /// Tracks present in the report, in order.
    pub fn tracks(&self) -> impl Iterator<Item = TrackId> + '_ {
        self.per_track.keys().copied()
    }

    /// Renders an aligned text table: one row per track plus a totals row,
    /// one column per category with recorded time.
    pub fn render_table(&self) -> String {
        let used: Vec<Category> = Category::ALL
            .into_iter()
            .filter(|c| self.busy(*c).as_nanos() > 0)
            .collect();
        let mut out = String::new();
        let _ = write!(out, "{:<12}", "track");
        for c in &used {
            let _ = write!(out, " {:>12}", c.name());
        }
        out.push('\n');
        for (track, cats) in &self.per_track {
            let _ = write!(out, "n{}/c{:<9}", track.node, track.core);
            for c in &used {
                let us = cats[c.index()] as f64 / 1_000.0;
                let _ = write!(out, " {:>10.1}us", us);
            }
            out.push('\n');
        }
        let _ = write!(out, "{:<12}", "total");
        for c in &used {
            let us = self.busy(*c).as_nanos() as f64 / 1_000.0;
            let _ = write!(out, " {:>10.1}us", us);
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_events() -> Vec<Event> {
        let tr = Tracer::enabled();
        let c0 = TrackId::new(0, 0);
        let c1 = TrackId::new(0, 1);
        tr.span("irq", Category::Interrupt, c0, t(0), t(100));
        tr.span("tcpip", Category::Protocol, c0, t(100), t(400));
        tr.span("copy", Category::Copy, c1, t(400), t(1_000));
        tr.instant("mark", Category::Copy, c1, t(500));
        tr.counter("q", Category::Other, c1, t(600), 3.0);
        tr.events()
    }

    #[test]
    fn groups_by_category_and_track() {
        let r = cpu_splitup(&sample_events(), t(0), t(1_000));
        assert_eq!(r.busy(Category::Interrupt).as_nanos(), 100);
        assert_eq!(r.busy(Category::Protocol).as_nanos(), 300);
        assert_eq!(r.busy(Category::Copy).as_nanos(), 600);
        assert_eq!(r.total().as_nanos(), 1_000);
        assert_eq!(
            r.busy_on(TrackId::new(0, 1), Category::Copy).as_nanos(),
            600
        );
        assert_eq!(
            r.busy_on(TrackId::new(0, 1), Category::Interrupt)
                .as_nanos(),
            0
        );
        assert_eq!(r.tracks().count(), 2);
    }

    #[test]
    fn window_clips_spans() {
        let r = cpu_splitup(&sample_events(), t(50), t(500));
        assert_eq!(r.busy(Category::Interrupt).as_nanos(), 50); // [50,100)
        assert_eq!(r.busy(Category::Protocol).as_nanos(), 300); // untouched
        assert_eq!(r.busy(Category::Copy).as_nanos(), 100); // [400,500)
        let empty = cpu_splitup(&sample_events(), t(2_000), t(3_000));
        assert_eq!(empty.total().as_nanos(), 0);
        assert_eq!(empty.share(Category::Copy), 0.0);
    }

    #[test]
    fn shares_sum_to_one() {
        let r = cpu_splitup(&sample_events(), t(0), t(1_000));
        let rx = r.receive_path_shares();
        let sum: f64 = rx.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(rx[0].1, 0.1);
        assert_eq!(rx[1].1, 0.3);
        assert_eq!(rx[2].1, 0.6);
        assert_eq!(r.share(Category::Copy), 0.6);
        assert_eq!(r.share_among(Category::Copy, &[Category::Copy]), 1.0);
    }

    #[test]
    fn table_renders_all_used_categories() {
        let r = cpu_splitup(&sample_events(), t(0), t(1_000));
        let table = r.render_table();
        assert!(table.contains("interrupt"));
        assert!(table.contains("protocol"));
        assert!(table.contains("copy"));
        assert!(!table.contains("dma"), "unused categories are omitted");
        assert!(table.lines().count() >= 4, "header + 2 tracks + total");
    }
}
