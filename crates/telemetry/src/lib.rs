//! Sim-time tracing and metrics for ioat-sim.
//!
//! The paper's headline results are *attributions*, not aggregates: Fig. 7
//! splits receive-path CPU time into interrupt handling, TCP/IP processing
//! and kernel-to-user copy. This crate provides the event-trace layer every
//! model component emits into and from which figures, timelines and
//! regressions are derived:
//!
//! * [`Tracer`] — a cheaply cloneable handle recording span / instant /
//!   counter events stamped in [`SimTime`](ioat_simcore::SimTime), with a
//!   [`Category`] per event and a per-node/per-core [`TrackId`]. A disabled
//!   tracer is a no-op; an enabled tracer only *records* values the models
//!   already computed, so tracing is bit-for-bit non-perturbing.
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms, the structured replacement for ad-hoc stat fields.
//! * [`export`] — Chrome `trace_event` JSON (loadable in Perfetto /
//!   `chrome://tracing`) and CSV, hand-rolled with no external
//!   dependencies.
//! * [`report`] — the derived CPU split-up that groups span time per
//!   category per core, regenerating the paper's Fig. 7 decomposition.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod registry;
pub mod report;
pub mod tracer;

pub use registry::{FixedHistogram, MetricsRegistry};
pub use report::{cpu_splitup, SplitupReport};
pub use tracer::{Category, Event, EventKind, Tracer, TrackId};
