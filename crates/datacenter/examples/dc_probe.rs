//! Paper-scale probe for Figs 8a, 8b and 9.

use ioat_core::IoatConfig;
use ioat_datacenter::emulated::{self, EmulatedConfig};
use ioat_datacenter::tiers::{self, DataCenterConfig};

fn main() {
    println!("--- Fig 8a: single-file TPS (paper: 4K +14%, others +5-8%) ---");
    for kb in [2u64, 4, 6, 8, 10] {
        let non =
            tiers::run_single_file(&DataCenterConfig::paper(IoatConfig::disabled()), kb * 1024);
        let ioat = tiers::run_single_file(&DataCenterConfig::paper(IoatConfig::full()), kb * 1024);
        println!(
            "{kb}K: non {:6.0} TPS (proxy {:4.1}% web {:4.1}%) | ioat {:6.0} TPS | +{:4.1}%",
            non.tps,
            non.proxy_cpu * 100.0,
            non.web_cpu * 100.0,
            ioat.tps,
            (ioat.tps - non.tps) / non.tps * 100.0
        );
    }
    println!("--- Fig 8b: zipf TPS (paper: up to +11%) ---");
    for alpha in [0.95, 0.90, 0.75, 0.50] {
        let mut c_non = DataCenterConfig::paper(IoatConfig::disabled());
        c_non.proxy_cache_bytes = 512 << 20;
        c_non.client_ports = 4;
        c_non.tier_ports = 2;
        let mut c_ioat = c_non.clone();
        c_ioat.ioat = IoatConfig::full();
        let non = tiers::run_zipf(&c_non, alpha, 10_000, 2 * 1024);
        let ioat = tiers::run_zipf(&c_ioat, alpha, 10_000, 2 * 1024);
        println!(
            "a={alpha}: non {:6.0} TPS (hit {:4.2}, proxy {:4.1}%) | ioat {:6.0} TPS | +{:4.1}%",
            non.tps,
            non.cache_hit_rate,
            non.proxy_cpu * 100.0,
            ioat.tps,
            (ioat.tps - non.tps) / non.tps * 100.0
        );
    }
    println!("--- Fig 9: emulated clients 16K (paper: +16% @256, CPU sat 64 vs 256) ---");
    for threads in [16usize, 64, 128, 256] {
        let non = emulated::run(&EmulatedConfig::paper(threads, IoatConfig::disabled()));
        let ioat = emulated::run(&EmulatedConfig::paper(threads, IoatConfig::full()));
        println!(
            "n={threads:3}: non {:6.0} TPS cpu {:5.1}% | ioat {:6.0} TPS cpu {:5.1}% | +{:4.1}%",
            non.tps,
            non.client_cpu * 100.0,
            ioat.tps,
            ioat.client_cpu * 100.0,
            (ioat.tps - non.tps) / non.tps * 100.0
        );
    }
}
