//! Message framing over byte-stream sockets.
//!
//! Re-exported from [`ioat_netsim::msg`], where the framing lives so the
//! PVFS domain can share it.

pub use ioat_netsim::msg::{channel, MsgSender};
