//! The two-tier data-center testbed and its closed-loop driver (§5).
//!
//! Topology (Fig. 2a of the paper):
//!
//! ```text
//!  clients ──3 GigE port pairs──> proxy tier ──3 GigE port pairs──> web tier
//! ```
//!
//! Each client thread runs a closed loop: fire one request, wait for the
//! full response, process it, fire the next (§5.1: "Each client fires one
//! request at a time and sends another request after getting a reply").
//! The proxy parses each request, serves hits from its LRU content cache
//! and forwards misses to the web tier.

use crate::cache::LruCache;
use crate::costs::{DataCenterCosts, REQUEST_WIRE_BYTES};
use crate::msg::{self, MsgSender};
use crate::workload::{Request, Trace};
use ioat_core::cluster::{Cluster, NodeConfig};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::{IoatConfig, SocketOpts};
use ioat_faults::{FaultInjector, FaultPlan, RetryPolicy, WEB_SERVICE};
use ioat_simcore::{Counter, Histogram, Sim, SimDuration, SimTime};
use ioat_telemetry::{Category, Tracer, TrackId};
use std::cell::RefCell;
use std::rc::Rc;

/// Late-bound sender for id-tagged client requests: the client response
/// handler is created before the request channel exists.
type ReqSender = Rc<RefCell<Option<MsgSender<(u64, Request)>>>>;

/// Pseudo node id for per-thread request-lifecycle lanes in exported
/// traces (real nodes are 0 = clients, 1 = proxy, 2 = web).
pub const REQUEST_LANES_NODE: u32 = 3;

/// Configuration of a data-center run.
#[derive(Debug, Clone)]
pub struct DataCenterConfig {
    /// Closed-loop client threads.
    pub client_threads: usize,
    /// GigE port pairs between the client cluster and the proxy.
    pub client_ports: usize,
    /// GigE port pairs between the proxy and the web server.
    pub tier_ports: usize,
    /// I/OAT features on the proxy and web nodes (clients are plain).
    pub ioat: IoatConfig,
    /// Application cost model.
    pub costs: DataCenterCosts,
    /// Proxy content-cache capacity in bytes (0 disables caching).
    pub proxy_cache_bytes: u64,
    /// Measurement window.
    pub window: ExperimentWindow,
    /// Workload seed.
    pub seed: u64,
    /// Fault plan (loss, crash windows). [`FaultPlan::none()`] keeps the
    /// run bit-identical to a fault-free build: no request deadlines are
    /// scheduled at all.
    pub faults: FaultPlan,
    /// Per-request deadline/retry policy, consulted only when `faults`
    /// is active.
    pub retry: RetryPolicy,
}

impl DataCenterConfig {
    /// The paper's testbed shape with the given feature set.
    pub fn paper(ioat: IoatConfig) -> Self {
        DataCenterConfig {
            client_threads: 192,
            client_ports: 3,
            tier_ports: 3,
            ioat,
            costs: DataCenterCosts::default(),
            proxy_cache_bytes: 0,
            window: ExperimentWindow::standard(),
            seed: 0xDC,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }

    /// Small fast configuration for unit tests.
    pub fn quick_test(ioat: IoatConfig) -> Self {
        DataCenterConfig {
            client_threads: 8,
            client_ports: 1,
            tier_ports: 1,
            ioat,
            costs: DataCenterCosts::default(),
            proxy_cache_bytes: 0,
            window: ExperimentWindow::quick(),
            seed: 0xDC,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Outcome of a data-center run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataCenterResult {
    /// Transactions per second over the measurement window.
    pub tps: f64,
    /// Proxy-node overall CPU utilization.
    pub proxy_cpu: f64,
    /// Web-node overall CPU utilization.
    pub web_cpu: f64,
    /// Client-node overall CPU utilization.
    pub client_cpu: f64,
    /// Proxy cache hit rate (0 with caching disabled).
    pub cache_hit_rate: f64,
    /// Median response latency in microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile response latency in microseconds.
    pub latency_p99_us: f64,
    /// Transactions completed inside the window.
    pub completed: u64,
    /// Request deadlines that expired (whole run).
    pub timeouts: u64,
    /// Retransmitted requests after a timeout (whole run).
    pub retries: u64,
    /// Transactions abandoned after exhausting retries (whole run).
    pub failed: u64,
    /// Responses that arrived after their request had been retried or
    /// abandoned, and were discarded (whole run).
    pub stale_responses: u64,
    /// Requests silently dropped by a crashed web daemon (whole run).
    pub daemon_drops: u64,
}

struct Shared {
    completed: Counter,
    latency: Histogram,
    window_from: SimTime,
    timeouts: u64,
    retries: u64,
    failed: u64,
    stale_responses: u64,
}

/// Runs the two-tier testbed with per-thread traces built by
/// `make_trace(thread_index)`.
pub fn run<F>(cfg: &DataCenterConfig, make_trace: F) -> DataCenterResult
where
    F: FnMut(usize) -> Box<dyn Trace>,
{
    run_traced(cfg, make_trace, &Tracer::disabled())
}

/// [`run`] with a tracer attached: nodes emit the stack-level spans and
/// each client thread gets a request-lifecycle lane — one
/// [`Category::Request`] span per transaction, from request fire to
/// response completion.
pub fn run_traced<F>(cfg: &DataCenterConfig, mut make_trace: F, tracer: &Tracer) -> DataCenterResult
where
    F: FnMut(usize) -> Box<dyn Trace>,
{
    assert!(cfg.client_threads > 0, "need at least one client thread");
    assert!(cfg.client_ports > 0 && cfg.tier_ports > 0);
    let mut cluster = Cluster::new(cfg.seed);
    cluster.set_tracer(tracer.clone());
    cluster.set_faults(&cfg.faults);
    if tracer.is_enabled() {
        tracer.set_process_name(REQUEST_LANES_NODE, "request-lanes");
    }
    // The client cluster stands in for the paper's 44-node Testbed 2:
    // plenty of cores so the clients themselves never bottleneck.
    let clients = cluster.add_node(NodeConfig {
        name: "clients".into(),
        cores: 16,
        ioat: IoatConfig::disabled(),
        params: ioat_core::calibration::testbed_params(),
        cache: ioat_core::calibration::testbed_cache(),
    });
    let proxy = cluster.add_node(NodeConfig::testbed("proxy", cfg.ioat));
    let web = cluster.add_node(NodeConfig::testbed("web", cfg.ioat));

    // Apache's proxy path buffers responses in user space, so the relay
    // pays real copies on both hops (no sendfile).
    let opts = SocketOpts::tuned();
    let client_pairs = cluster.connect_ports(clients, proxy, cfg.client_ports, opts.coalescing);
    let tier_pairs = cluster.connect_ports(proxy, web, cfg.tier_ports, opts.coalescing);

    let mut completed = Counter::new();
    completed.begin_window(cfg.window.from());
    let shared = Rc::new(RefCell::new(Shared {
        completed,
        latency: Histogram::new(),
        window_from: cfg.window.from(),
        timeouts: 0,
        retries: 0,
        failed: 0,
        stale_responses: 0,
    }));
    let cache = Rc::new(RefCell::new(LruCache::new(cfg.proxy_cache_bytes.max(1))));
    let caching_enabled = cfg.proxy_cache_bytes > 0;
    let costs = cfg.costs;
    // App-level crash view of the web daemon (node 2). Link-level faults
    // were installed into the stacks by `set_faults` above; this injector
    // only answers `service_down` queries and counts dropped requests.
    let web_faults = FaultInjector::new(&cfg.faults, 2);
    let faults_active = cfg.faults.is_active();
    let retry = cfg.retry;

    // Per-thread attempt-id mints, collected so the lifecycle audit can
    // reconcile attempts against completions after the run.
    let mut attempt_mints: Vec<Rc<RefCell<u64>>> = Vec::with_capacity(cfg.client_threads);

    for t in 0..cfg.client_threads {
        let cp = client_pairs[t % client_pairs.len()];
        let pw = tier_pairs[t % tier_pairs.len()];
        // One duplex connection per hop for this thread.
        let (c_sock, p_client_sock) = cluster.open(clients, proxy, cp, opts);
        let (p_web_sock, w_sock) = cluster.open(proxy, web, pw, opts);

        let trace: Rc<RefCell<Box<dyn Trace>>> = Rc::new(RefCell::new(make_trace(t)));
        // Requests carry a per-thread attempt id so late responses to a
        // request that was already retried (or abandoned) can be
        // recognized and dropped.
        let req_sender: ReqSender = Rc::new(RefCell::new(None));
        let started_at = Rc::new(RefCell::new(SimTime::ZERO));
        let next_id: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        attempt_mints.push(Rc::clone(&next_id));
        let waiting: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
        let attempt: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
        let current_req: Rc<RefCell<Option<Request>>> = Rc::new(RefCell::new(None));
        // Self-referential "fire the current request" closure: the retry
        // timer it schedules must be able to call it again.
        #[allow(clippy::type_complexity)]
        let fire_slot: Rc<RefCell<Option<Rc<dyn Fn(&mut Sim)>>>> = Rc::new(RefCell::new(None));

        let fire: Rc<dyn Fn(&mut Sim)> = {
            let rs = Rc::clone(&req_sender);
            let cur = Rc::clone(&current_req);
            let waiting = Rc::clone(&waiting);
            let next_id = Rc::clone(&next_id);
            let attempt = Rc::clone(&attempt);
            let fire_slot = Rc::clone(&fire_slot);
            let sh = Rc::clone(&shared);
            let sa = Rc::clone(&started_at);
            let tr = Rc::clone(&trace);
            let client_sock = c_sock.clone();
            Rc::new(move |sim: &mut Sim| {
                let req = match *cur.borrow() {
                    Some(r) => r,
                    None => return,
                };
                let id = {
                    let mut n = next_id.borrow_mut();
                    *n += 1;
                    *n
                };
                *waiting.borrow_mut() = Some(id);
                if let Some(sender) = rs.borrow().as_ref() {
                    sender.send(sim, REQUEST_WIRE_BYTES, (id, req));
                }
                // Deadlines exist only when faults are configured: the
                // inert plan schedules no events and stays bit-identical.
                if faults_active {
                    let deadline = retry.deadline(*attempt.borrow());
                    let waiting2 = Rc::clone(&waiting);
                    let attempt2 = Rc::clone(&attempt);
                    let fire_slot2 = Rc::clone(&fire_slot);
                    let sh2 = Rc::clone(&sh);
                    let cur2 = Rc::clone(&cur);
                    let sa2 = Rc::clone(&sa);
                    let tr2 = Rc::clone(&tr);
                    let cs2 = client_sock.clone();
                    sim.schedule(deadline, move |sim| {
                        if *waiting2.borrow() != Some(id) {
                            return; // answered (or superseded) in time
                        }
                        let retry_now = *attempt2.borrow() < retry.max_retries;
                        {
                            let mut s = sh2.borrow_mut();
                            s.timeouts += 1;
                            if retry_now {
                                s.retries += 1;
                            } else {
                                s.failed += 1;
                            }
                        }
                        if retry_now {
                            *attempt2.borrow_mut() += 1;
                            let f = fire_slot2.borrow().clone();
                            if let Some(f) = f {
                                f(sim);
                            }
                        } else {
                            // Abandon the transaction and move on.
                            *waiting2.borrow_mut() = None;
                            *attempt2.borrow_mut() = 0;
                            let next = tr2.borrow_mut().next_request();
                            let cur3 = Rc::clone(&cur2);
                            let sa3 = Rc::clone(&sa2);
                            let fs3 = Rc::clone(&fire_slot2);
                            cs2.compute(sim, costs.client_process, move |sim| {
                                *sa3.borrow_mut() = sim.now();
                                *cur3.borrow_mut() = Some(next);
                                let f = fs3.borrow().clone();
                                if let Some(f) = f {
                                    f(sim);
                                }
                            });
                        }
                    });
                }
            })
        };
        *fire_slot.borrow_mut() = Some(Rc::clone(&fire));

        // (1) Responses proxy → client: complete the transaction, process,
        // fire the next request.
        let sh = Rc::clone(&shared);
        let sa = Rc::clone(&started_at);
        let tr = Rc::clone(&trace);
        let wt = Rc::clone(&waiting);
        let at = Rc::clone(&attempt);
        let cur = Rc::clone(&current_req);
        let fs = Rc::clone(&fire_slot);
        let client_sock2 = c_sock.clone();
        let lane = TrackId::new(REQUEST_LANES_NODE, t as u32);
        tracer.set_track_name(lane, &format!("thread{t}"));
        let trc = tracer.clone();
        let respond_to_client = msg::channel(
            p_client_sock.clone(),
            c_sock.clone(),
            move |sim, id: u64| {
                if *wt.borrow() != Some(id) {
                    // A retried or abandoned request's original answer.
                    sh.borrow_mut().stale_responses += 1;
                    return;
                }
                *wt.borrow_mut() = None;
                *at.borrow_mut() = 0;
                trc.span("request", Category::Request, lane, *sa.borrow(), sim.now());
                {
                    let mut s = sh.borrow_mut();
                    if sim.now() >= s.window_from {
                        let lat = sim.now().saturating_duration_since(*sa.borrow());
                        s.latency.record_duration(lat);
                    }
                    s.completed.add_at(sim.now(), 1);
                }
                let sa2 = Rc::clone(&sa);
                let cur2 = Rc::clone(&cur);
                let fs2 = Rc::clone(&fs);
                let next = tr.borrow_mut().next_request();
                client_sock2.compute(sim, costs.client_process, move |sim| {
                    *sa2.borrow_mut() = sim.now();
                    *cur2.borrow_mut() = Some(next);
                    let f = fs2.borrow().clone();
                    if let Some(f) = f {
                        f(sim);
                    }
                });
            },
        );
        let respond_to_client = Rc::new(respond_to_client);

        // (2) Responses web → proxy: cache-fill, relay to the client.
        let rc = Rc::clone(&respond_to_client);
        let ch = Rc::clone(&cache);
        let p_web_sock2 = p_web_sock.clone();
        let web_to_proxy = msg::channel(
            w_sock.clone(),
            p_web_sock.clone(),
            move |sim, (id, req): (u64, Request)| {
                if caching_enabled {
                    ch.borrow_mut().insert(req.file_id, req.size);
                }
                let rc2 = Rc::clone(&rc);
                p_web_sock2.compute(sim, costs.proxy_relay, move |sim| {
                    rc2.send(sim, req.size, id);
                });
            },
        );
        let web_to_proxy = Rc::new(web_to_proxy);

        // (3) Requests proxy → web: serve the document. A crashed web
        // daemon drops the request on the floor — the bytes were already
        // delivered (framing stays intact), only the handler goes dark.
        let wtp = Rc::clone(&web_to_proxy);
        let w_sock2 = w_sock.clone();
        let wf = web_faults.clone();
        let proxy_to_web = msg::channel(
            p_web_sock.clone(),
            w_sock.clone(),
            move |sim, (id, req): (u64, Request)| {
                if wf.service_down(WEB_SERVICE, sim.now()) {
                    wf.note_daemon_drop();
                    return;
                }
                let wtp2 = Rc::clone(&wtp);
                w_sock2.compute(sim, costs.web_serve(req.size), move |sim| {
                    wtp2.send(sim, req.size, (id, req));
                });
            },
        );
        let proxy_to_web = Rc::new(proxy_to_web);

        // (4) Requests client → proxy: parse, cache-check, hit or forward.
        let rc = Rc::clone(&respond_to_client);
        let ptw = Rc::clone(&proxy_to_web);
        let ch = Rc::clone(&cache);
        let p_client_sock2 = p_client_sock.clone();
        let client_to_proxy = msg::channel(
            c_sock.clone(),
            p_client_sock,
            move |sim, (id, req): (u64, Request)| {
                let parse = costs.proxy_parse + costs.proxy_cache_lookup;
                let hit = caching_enabled && ch.borrow_mut().lookup(req.file_id);
                let rc2 = Rc::clone(&rc);
                let ptw2 = Rc::clone(&ptw);
                let extra = if hit {
                    costs.proxy_hit_serve
                } else {
                    costs.proxy_forward
                };
                p_client_sock2.compute(sim, parse + extra, move |sim| {
                    if hit {
                        rc2.send(sim, req.size, id);
                    } else {
                        ptw2.send(sim, REQUEST_WIRE_BYTES, (id, req));
                    }
                });
            },
        );
        *req_sender.borrow_mut() = Some(client_to_proxy);

        // Kick off the loop with a small stagger.
        let sa = Rc::clone(&started_at);
        let tr = Rc::clone(&trace);
        let cur = Rc::clone(&current_req);
        cluster
            .sim_mut()
            .schedule(SimDuration::from_micros(5 * t as u64), move |sim| {
                *sa.borrow_mut() = sim.now();
                let first = tr.borrow_mut().next_request();
                *cur.borrow_mut() = Some(first);
                fire(sim);
            });
    }

    let (from, to) = cfg.window.execute(&mut cluster, &[clients, proxy, web]);
    if ioat_guard::enabled() {
        // Request lifecycle conservation: every minted attempt id was
        // answered in time (completed), expired at its deadline (timed
        // out, then split exactly into retried vs. abandoned), or is the
        // one attempt a thread still has in flight at window close.
        let attempts: u64 = attempt_mints.iter().map(|m| *m.borrow()).sum();
        let s = shared.borrow();
        ioat_guard::check(
            "datacenter/tiers",
            "timeouts = retries + abandoned",
            to,
            s.timeouts == s.retries + s.failed,
            || {
                format!(
                    "timeouts={} but retries={} + failed={}",
                    s.timeouts, s.retries, s.failed
                )
            },
        );
        let settled = s.completed.total() + s.timeouts;
        let in_flight_cap = cfg.client_threads as u64;
        ioat_guard::check(
            "datacenter/tiers",
            "attempts = completed + timed-out + in-flight (≤ one per thread)",
            to,
            settled <= attempts && attempts <= settled + in_flight_cap,
            || {
                format!(
                    "minted {attempts} attempt ids vs completed={} + timeouts={} \
                     with {in_flight_cap} threads",
                    s.completed.total(),
                    s.timeouts
                )
            },
        );
        ioat_guard::check(
            "datacenter/tiers",
            "stale responses ≤ timeouts",
            to,
            s.stale_responses <= s.timeouts,
            || {
                format!(
                    "stale_responses={} but only {} timeouts",
                    s.stale_responses, s.timeouts
                )
            },
        );
    }
    let elapsed = (to - from).as_secs_f64();
    let result = {
        let shared = shared.borrow();
        let proxy_s = cluster.stack(proxy).borrow();
        let web_s = cluster.stack(web).borrow();
        let client_s = cluster.stack(clients).borrow();
        DataCenterResult {
            tps: shared.completed.window_total() as f64 / elapsed,
            proxy_cpu: proxy_s.cpu_utilization(from, to),
            web_cpu: web_s.cpu_utilization(from, to),
            client_cpu: client_s.cpu_utilization(from, to),
            cache_hit_rate: cache.borrow().hit_rate(),
            latency_p50_us: shared.latency.quantile(0.5) as f64 / 1e3,
            latency_p99_us: shared.latency.quantile(0.99) as f64 / 1e3,
            completed: shared.completed.window_total(),
            timeouts: shared.timeouts,
            retries: shared.retries,
            failed: shared.failed,
            stale_responses: shared.stale_responses,
            daemon_drops: web_faults.daemon_drops(),
        }
    };
    result
}

/// Convenience: the Fig. 8a single-file comparison at one document size.
pub fn run_single_file(cfg: &DataCenterConfig, size: u64) -> DataCenterResult {
    run(cfg, |_t| {
        Box::new(crate::workload::SingleFileTrace::new(size))
    })
}

/// Convenience: the Fig. 8b Zipf comparison at one α over a shared-shape
/// catalog (each thread samples independently).
pub fn run_zipf(
    cfg: &DataCenterConfig,
    alpha: f64,
    catalog_docs: usize,
    median: u64,
) -> DataCenterResult {
    let mut rng = ioat_simcore::SimRng::seed_from(cfg.seed ^ 0x21F);
    let catalog = crate::workload::FileCatalog::web_content(catalog_docs, median, &mut rng);
    let mut seed_rng = ioat_simcore::SimRng::seed_from(cfg.seed);
    // One CDF build shared by every client thread; each thread's fork
    // draws from the same seed_rng stream the per-thread rebuild did.
    // The template's own rng is never sampled, so it must not consume a
    // seed_rng draw.
    let template =
        crate::workload::ZipfTrace::new(catalog, alpha, ioat_simcore::SimRng::seed_from(0));
    run(cfg, move |_t| Box::new(template.fork(seed_rng.fork())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_completes_transactions() {
        let cfg = DataCenterConfig::quick_test(IoatConfig::disabled());
        let r = run_single_file(&cfg, 4 * 1024);
        assert!(r.tps > 100.0, "tps = {}", r.tps);
        assert!(r.completed > 0);
        assert!(r.proxy_cpu > 0.0 && r.proxy_cpu <= 1.0);
        assert!(r.web_cpu > 0.0 && r.web_cpu <= 1.0);
        assert!(r.latency_p50_us > 0.0);
        assert!(r.latency_p99_us >= r.latency_p50_us);
        assert_eq!(r.cache_hit_rate, 0.0, "caching disabled");
    }

    #[test]
    fn tracing_records_request_lanes_without_perturbing() {
        let cfg = DataCenterConfig::quick_test(IoatConfig::disabled());
        let off = run_single_file(&cfg, 4 * 1024);
        let tracer = Tracer::enabled();
        let on = run_traced(
            &cfg,
            |_t| Box::new(crate::workload::SingleFileTrace::new(4 * 1024)),
            &tracer,
        );
        assert_eq!(off.tps.to_bits(), on.tps.to_bits());
        assert_eq!(off.completed, on.completed);
        assert_eq!(off.latency_p99_us.to_bits(), on.latency_p99_us.to_bits());
        let requests = tracer
            .events()
            .iter()
            .filter(|e| e.cat == Category::Request)
            .count() as u64;
        assert!(
            requests >= on.completed,
            "every completed transaction has a request span"
        );
        assert_eq!(tracer.process_names()[&REQUEST_LANES_NODE], "request-lanes");
    }

    #[test]
    fn ioat_improves_tps() {
        let non = run_single_file(
            &DataCenterConfig::quick_test(IoatConfig::disabled()),
            4 * 1024,
        );
        let ioat = run_single_file(&DataCenterConfig::quick_test(IoatConfig::full()), 4 * 1024);
        assert!(
            ioat.tps >= non.tps,
            "I/OAT TPS {:.0} should not lose to non-I/OAT {:.0}",
            ioat.tps,
            non.tps
        );
    }

    #[test]
    fn proxy_cache_serves_hits_under_zipf() {
        let mut cfg = DataCenterConfig::quick_test(IoatConfig::disabled());
        cfg.proxy_cache_bytes = 64 * 1024 * 1024;
        let r = run_zipf(&cfg, 0.95, 2_000, 8 * 1024);
        // The quick window is dominated by compulsory misses; steady-state
        // hit rates are much higher (see the Fig. 8b harness).
        assert!(
            r.cache_hit_rate > 0.12,
            "α=0.95 should produce real hit rates, got {:.2}",
            r.cache_hit_rate
        );
        // With hits served at the proxy, the web tier sees less work than
        // the proxy.
        assert!(r.web_cpu < r.proxy_cpu + 0.5);
    }

    #[test]
    fn inert_fault_plan_schedules_no_recovery_machinery() {
        let cfg = DataCenterConfig::quick_test(IoatConfig::disabled());
        let r = run_single_file(&cfg, 4 * 1024);
        assert_eq!(r.timeouts, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.failed, 0);
        assert_eq!(r.stale_responses, 0);
        assert_eq!(r.daemon_drops, 0);
    }

    fn crash_cfg() -> DataCenterConfig {
        let mut cfg = DataCenterConfig::quick_test(IoatConfig::disabled());
        // Web daemon dark from 2 ms to 8 ms; deadlines short enough that
        // retries resolve well inside the 30 ms quick run.
        cfg.faults.crashes.push(ioat_faults::CrashWindow {
            service: WEB_SERVICE,
            window: ioat_faults::TimeWindow::new(
                SimTime::from_nanos(2_000_000),
                SimTime::from_nanos(8_000_000),
            ),
        });
        cfg.retry.timeout = SimDuration::from_millis(2);
        cfg
    }

    #[test]
    fn web_crash_window_triggers_timeouts_and_recovers() {
        let cfg = crash_cfg();
        let r = run_single_file(&cfg, 4 * 1024);
        assert!(r.daemon_drops > 0, "crash window must drop requests");
        assert!(r.timeouts > 0, "dropped requests must hit their deadline");
        assert!(r.retries > 0, "deadlines must trigger retries");
        assert!(
            r.completed > 0 && r.tps > 0.0,
            "the system must keep completing transactions after restart"
        );
        let clean = run_single_file(
            &DataCenterConfig::quick_test(IoatConfig::disabled()),
            4 * 1024,
        );
        assert!(
            r.completed < clean.completed,
            "a 6 ms outage must cost throughput: {} vs {}",
            r.completed,
            clean.completed
        );
    }

    #[test]
    fn crash_runs_are_reproducible() {
        let a = run_single_file(&crash_cfg(), 4 * 1024);
        let b = run_single_file(&crash_cfg(), 4 * 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn more_clients_more_throughput_until_saturation() {
        let mut small = DataCenterConfig::quick_test(IoatConfig::disabled());
        small.client_threads = 2;
        let mut big = small.clone();
        big.client_threads = 16;
        let r_small = run_single_file(&small, 4 * 1024);
        let r_big = run_single_file(&big, 4 * 1024);
        assert!(
            r_big.tps > 2.0 * r_small.tps,
            "16 threads {:.0} vs 2 threads {:.0}",
            r_big.tps,
            r_small.tps
        );
    }
}
