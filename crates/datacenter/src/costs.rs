//! Apache-era per-request CPU cost model.
//!
//! These are the *application* costs; every network-stack cost (packet
//! processing, copies, wakes, interrupts) is charged by `ioat-netsim`
//! itself, which is where the I/OAT benefit lives. The values are typical
//! of Apache 2.0 static serving on this era of hardware (a few thousand
//! requests per second per core).

use ioat_simcore::SimDuration;

/// Wire size of an HTTP request (request line + headers).
pub const REQUEST_WIRE_BYTES: u64 = 300;

/// Per-request CPU costs of the tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataCenterCosts {
    /// Proxy: parse request line + headers, match vhost/ACLs.
    pub proxy_parse: SimDuration,
    /// Proxy: content-cache lookup.
    pub proxy_cache_lookup: SimDuration,
    /// Proxy: serve a cache hit (build response headers, sendfile setup).
    pub proxy_hit_serve: SimDuration,
    /// Proxy: forward a miss to the web tier.
    pub proxy_forward: SimDuration,
    /// Proxy: relay a web-tier response back to the client (and insert it
    /// into the cache).
    pub proxy_relay: SimDuration,
    /// Web server: handle a request (stat, open, headers).
    pub web_serve_base: SimDuration,
    /// Web server: per-byte cost of assembling the response from the page
    /// cache (picoseconds per byte; `sendfile` keeps this small).
    pub web_read_ps_per_byte: u64,
    /// Client: consume/validate one response.
    pub client_process: SimDuration,
}

impl Default for DataCenterCosts {
    fn default() -> Self {
        DataCenterCosts {
            proxy_parse: SimDuration::from_micros(22),
            proxy_cache_lookup: SimDuration::from_micros(4),
            proxy_hit_serve: SimDuration::from_micros(9),
            proxy_forward: SimDuration::from_micros(8),
            proxy_relay: SimDuration::from_micros(12),
            web_serve_base: SimDuration::from_micros(26),
            web_read_ps_per_byte: 150,
            client_process: SimDuration::from_micros(15),
        }
    }
}

impl DataCenterCosts {
    /// Web-tier cost to serve a `size`-byte document.
    pub fn web_serve(&self, size: u64) -> SimDuration {
        self.web_serve_base + SimDuration::from_nanos((size * self.web_read_ps_per_byte) / 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_serve_scales_with_size() {
        let c = DataCenterCosts::default();
        assert!(c.web_serve(100_000) > c.web_serve(1_000));
        assert_eq!(
            c.web_serve(0),
            c.web_serve_base,
            "zero-byte documents cost the base only"
        );
    }

    #[test]
    fn defaults_are_apache_scale() {
        // A proxy hit costs tens of microseconds → a few 10k req/s/core.
        let c = DataCenterCosts::default();
        let hit = c.proxy_parse + c.proxy_cache_lookup + c.proxy_hit_serve;
        assert!(hit < SimDuration::from_micros(100));
        assert!(hit > SimDuration::from_micros(10));
    }
}
