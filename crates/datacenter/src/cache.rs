//! The proxy tier's LRU content cache.
//!
//! §3.1: "This content may be cached at the edge server so that
//! subsequent requests to the same static content may be served from the
//! cache." Capacity is bounded in bytes; eviction is strict LRU.

use ioat_simcore::FastHashMap;

/// Byte-bounded LRU cache keyed by document id.
///
/// ```rust
/// use ioat_datacenter::LruCache;
/// let mut c = LruCache::new(10_000);
/// c.insert(1, 6_000);
/// c.insert(2, 6_000); // evicts 1
/// assert!(!c.contains(1));
/// assert!(c.lookup(2));
/// ```
#[derive(Debug)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    /// id → (size, last-use tick)
    entries: FastHashMap<u32, (u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            entries: FastHashMap::default(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `id`, updating recency and hit/miss statistics.
    pub fn lookup(&mut self, id: u32) -> bool {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&id) {
            e.1 = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Residency check without touching recency or statistics.
    pub fn contains(&self, id: u32) -> bool {
        self.entries.contains_key(&id)
    }

    /// Inserts `id` of `size` bytes, evicting least-recently-used entries
    /// to make room. Documents larger than the whole cache are not cached.
    pub fn insert(&mut self, id: u32, size: u64) {
        if size > self.capacity {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(id, (size, self.tick)) {
            self.used -= old.0;
        }
        self.used += size;
        while self.used > self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, &(_, t))| t)
                .map(|(&k, _)| k)
                .expect("used > 0 implies entries exist");
            let (sz, _) = self.entries.remove(&lru).expect("key just found");
            self.used -= sz;
        }
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Hit fraction so far (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(100);
        c.insert(1, 40);
        c.insert(2, 40);
        assert!(c.lookup(1)); // refresh 1 → 2 is LRU
        c.insert(3, 40); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.used(), 80);
    }

    #[test]
    fn oversized_documents_bypass_the_cache() {
        let mut c = LruCache::new(100);
        c.insert(1, 500);
        assert!(!c.contains(1));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_updates_size_accounting() {
        let mut c = LruCache::new(100);
        c.insert(1, 60);
        c.insert(1, 30);
        assert_eq!(c.used(), 30);
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let mut c = LruCache::new(100);
        assert_eq!(c.hit_rate(), 0.0);
        c.insert(1, 10);
        assert!(c.lookup(1));
        assert!(!c.lookup(2));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }
}
