//! Workload generators: single-file traces and Zipf-distributed catalogs.
//!
//! §5.1 of the paper classifies data-center workloads into single-file
//! micro workloads (one file, 2 K–10 K — "the average file size for most
//! of the documents in the Internet") and Zipf-like workloads, where the
//! relative probability of a request for the *i*-th most popular document
//! is proportional to `1/i^α` [Breslau et al.].

use ioat_simcore::SimRng;

/// One client request: which document, and how many bytes the response
/// carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Request {
    /// Document identifier (an index into the catalog).
    pub file_id: u32,
    /// Response size in bytes.
    pub size: u64,
}

/// A catalog of documents with sizes.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FileCatalog {
    sizes: Vec<u64>,
}

impl FileCatalog {
    /// A catalog of `n` documents with sizes drawn from a heavy-tailed
    /// web-content distribution: most documents are small (around
    /// `median` bytes), a few are much larger (Pareto tail, capped at
    /// 50× the median so a single document cannot dominate a run).
    pub fn web_content(n: usize, median: u64, rng: &mut SimRng) -> Self {
        assert!(n > 0 && median > 0);
        let sizes = (0..n)
            .map(|_| {
                // Pareto with shape 1.3 via inverse CDF.
                let u = 1.0 - rng.uniform();
                let factor = u.powf(-1.0 / 1.3);
                ((median as f64 * factor) as u64).min(median * 50).max(256)
            })
            .collect();
        FileCatalog { sizes }
    }

    /// A catalog where every document has the same size.
    pub fn uniform(n: usize, size: u64) -> Self {
        assert!(n > 0 && size > 0);
        FileCatalog {
            sizes: vec![size; n],
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when the catalog is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size of document `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn size_of(&self, id: u32) -> u64 {
        self.sizes[id as usize]
    }

    /// Total bytes across the catalog.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }
}

/// A source of requests.
pub trait Trace {
    /// Draws the next request.
    fn next_request(&mut self) -> Request;
}

/// The paper's single-file micro workload: every request fetches the same
/// document.
#[derive(Debug, Clone)]
pub struct SingleFileTrace {
    size: u64,
}

impl SingleFileTrace {
    /// A trace requesting one document of `size` bytes.
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "document must have a size");
        SingleFileTrace { size }
    }

    /// The five traces of Fig. 8a: 2 K, 4 K, 6 K, 8 K, 10 K.
    pub fn paper_traces() -> Vec<(String, SingleFileTrace)> {
        [2u64, 4, 6, 8, 10]
            .into_iter()
            .enumerate()
            .map(|(i, kb)| {
                (
                    format!("Trace {} ({}K)", i + 1, kb),
                    SingleFileTrace::new(kb * 1024),
                )
            })
            .collect()
    }
}

impl Trace for SingleFileTrace {
    fn next_request(&mut self) -> Request {
        Request {
            file_id: 0,
            size: self.size,
        }
    }
}

/// Zipf(α) sampler over a catalog: `P(rank i) ∝ 1/i^α`.
///
/// Uses a precomputed CDF and binary search, so sampling is O(log n).
/// The catalog and CDF live behind `Rc`s so per-thread samplers (see
/// [`ZipfTrace::fork`]) share one table instead of each paying the
/// O(n·powf) construction — with hundreds of closed-loop client threads
/// the rebuild used to dominate whole-figure wall time.
#[derive(Debug, Clone)]
pub struct ZipfTrace {
    catalog: std::rc::Rc<FileCatalog>,
    cdf: std::rc::Rc<[f64]>,
    rng: SimRng,
    alpha: f64,
}

impl ZipfTrace {
    /// Builds a sampler over `catalog` with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or the catalog is empty — an empty
    /// catalog would make every CDF entry `0/0 = NaN` and `next_request`
    /// underflow on `len() - 1`.
    pub fn new(catalog: FileCatalog, alpha: f64, rng: SimRng) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(
            !catalog.is_empty(),
            "Zipf trace over an empty catalog — no documents to sample"
        );
        let n = catalog.len();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTrace {
            catalog: std::rc::Rc::new(catalog),
            cdf: cdf.into(),
            rng,
            alpha,
        }
    }

    /// A sampler sharing this one's catalog and CDF tables but drawing
    /// from its own `rng` stream. Draw order is identical to building a
    /// fresh `ZipfTrace` with the same inputs — the CDF is a pure
    /// function of `(catalog.len(), alpha)` — it just skips the rebuild.
    pub fn fork(&self, rng: SimRng) -> Self {
        ZipfTrace {
            catalog: std::rc::Rc::clone(&self.catalog),
            cdf: std::rc::Rc::clone(&self.cdf),
            rng,
            alpha: self.alpha,
        }
    }

    /// The Zipf exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The α values the paper sweeps (high → low temporal locality).
    pub fn paper_alphas() -> [f64; 4] {
        [0.95, 0.90, 0.75, 0.50]
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &FileCatalog {
        &self.catalog
    }
}

impl Trace for ZipfTrace {
    fn next_request(&mut self) -> Request {
        let u = self.rng.uniform();
        let idx = self.cdf.partition_point(|&c| c < u);
        let file_id = idx.min(self.catalog.len() - 1) as u32;
        Request {
            file_id,
            size: self.catalog.size_of(file_id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "empty catalog")]
    fn zipf_trace_over_empty_catalog_is_rejected() {
        // The public constructors already refuse n = 0, so build the
        // empty catalog directly: this guards the trace against any
        // future catalog source that slips one through.
        let catalog = FileCatalog { sizes: Vec::new() };
        let _ = ZipfTrace::new(catalog, 0.9, SimRng::seed_from(1));
    }

    #[test]
    fn single_file_always_returns_same_request() {
        let mut t = SingleFileTrace::new(4096);
        for _ in 0..10 {
            let r = t.next_request();
            assert_eq!(
                r,
                Request {
                    file_id: 0,
                    size: 4096
                }
            );
        }
        assert_eq!(SingleFileTrace::paper_traces().len(), 5);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let catalog = FileCatalog::uniform(1000, 8192);
        let mut t = ZipfTrace::new(catalog, 0.95, SimRng::seed_from(7));
        let mut top10 = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if t.next_request().file_id < 10 {
                top10 += 1;
            }
        }
        let frac = top10 as f64 / n as f64;
        // With α=0.95 over 1000 docs, the top-10 get ≈ 35 % of requests.
        assert!((0.28..0.55).contains(&frac), "top-10 fraction {frac}");
    }

    #[test]
    fn lower_alpha_means_less_locality() {
        let hits = |alpha: f64| {
            let catalog = FileCatalog::uniform(1000, 8192);
            let mut t = ZipfTrace::new(catalog, alpha, SimRng::seed_from(7));
            (0..20_000)
                .filter(|_| t.next_request().file_id < 10)
                .count()
        };
        assert!(hits(0.95) > hits(0.5), "α=0.95 must concentrate more");
    }

    #[test]
    fn zipf_covers_the_whole_catalog_eventually() {
        let catalog = FileCatalog::uniform(50, 1024);
        let mut t = ZipfTrace::new(catalog, 0.5, SimRng::seed_from(3));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            seen.insert(t.next_request().file_id);
        }
        assert!(seen.len() > 45, "only {} of 50 docs seen", seen.len());
    }

    #[test]
    fn web_content_catalog_is_heavy_tailed() {
        let mut rng = SimRng::seed_from(11);
        let c = FileCatalog::web_content(5000, 8 * 1024, &mut rng);
        let mean = c.total_bytes() as f64 / c.len() as f64;
        // Pareto(1.3) mean is well above the median.
        assert!(mean > 10_000.0, "mean {mean}");
        let max = (0..c.len() as u32).map(|i| c.size_of(i)).max().unwrap();
        assert!(max <= 8 * 1024 * 50, "cap respected");
        let min = (0..c.len() as u32).map(|i| c.size_of(i)).min().unwrap();
        assert!(min >= 256);
    }
}
