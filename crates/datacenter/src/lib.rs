//! Multi-tier data-center application domain (§3.1, §5 of the paper).
//!
//! Builds the paper's two-tier testbed on top of `ioat-netsim`: a cluster
//! of closed-loop clients fires HTTP-like requests at an Apache-style
//! proxy tier, which serves from its cache or forwards to the web-server
//! tier. Reproduces:
//!
//! * Fig. 8a — TPS for single-file traces of 2 K–10 K.
//! * Fig. 8b — TPS for Zipf(α) traces, α ∈ {0.95, 0.9, 0.75, 0.5}.
//! * Fig. 9 — emulated clients *inside* the data-center (the proxy node
//!   fires requests at the web server) with 1–256 threads on a 16 K file.
//!
//! Modules:
//!
//! * [`workload`] — Zipf and single-file trace generators.
//! * [`msg`] — message framing over the byte-stream sockets.
//! * [`cache`] — the proxy's LRU content cache.
//! * [`costs`] — Apache-era per-request CPU cost model.
//! * [`tiers`] — the two-tier testbed assembly and closed-loop drivers.
//! * [`emulated`] — the Fig. 9 scenario.
//! * [`scale`] — the same tiers behind a Clos fabric at datacenter
//!   scale: thousands of servers, up to ~10⁶ emulated Zipf clients,
//!   streaming statistics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod costs;
pub mod emulated;
pub mod msg;
pub mod parallel;
pub mod scale;
pub mod tiers;
pub mod workload;

pub use cache::LruCache;
pub use costs::DataCenterCosts;
pub use parallel::run_partitioned;
pub use scale::{ScaleConfig, ScaleResult};
pub use tiers::{DataCenterConfig, DataCenterResult};
pub use workload::{FileCatalog, Request, SingleFileTrace, ZipfTrace};

#[cfg(test)]
mod send_contract {
    //! Parallel figure sweeps move these configs across worker threads;
    //! see the matching module in `ioat-core`. Runtime actors stay
    //! `Rc`-based and single-threaded — only configs must be `Send`.
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn config_types_are_send() {
        assert_send::<DataCenterConfig>();
        assert_send::<emulated::EmulatedConfig>();
        assert_send::<DataCenterCosts>();
        assert_send::<Request>();
        assert_send::<DataCenterResult>();
        assert_send::<ScaleConfig>();
        assert_send::<ScaleResult>();
    }
}
