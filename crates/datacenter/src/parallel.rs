//! The fabric-scale datacenter of [`crate::scale`], partitioned for the
//! conservative parallel engine in `ioat-parsim`.
//!
//! # Partitioning
//!
//! The scenario splits along its only long-latency cut: the switch
//! fabric. Partition 0 owns the fabric (switch buffers, ECMP, hop-by-hop
//! forwarding); partitions `1..=G` each own a *group* of servers — the
//! `f = webs_per_proxy` proxies that share one web subset plus those `f`
//! web servers — together with the emulated clients driving them. The
//! sequential subset rule `w = (p·f + j) mod n_webs` makes proxies `p`
//! and `p + G` (where `G = n_webs / f`) talk to the same webs, so group
//! `g` holds proxies `{g, g+G, g+2G, …}` and webs `[g·f, (g+1)·f)`; every
//! connection's two endpoints land in one partition and only *data
//! frames* cross a boundary (into the fabric and back out). ACKs keep
//! netsim's latency-only shortcut and turn around inside the group.
//!
//! The lookahead is [`ioat_fabric::Fabric::lookahead`] — every frame
//! entering or leaving the fabric first crosses a link of
//! `switch_latency`, so a partition executing at `t` can never affect
//! another before `t + switch_latency`.
//!
//! # Determinism
//!
//! Results are a pure function of the configuration: bit-identical for
//! any worker-thread count (the engine merges boundary messages by
//! `(time, sending partition, sender sequence)`), and the partition
//! layout itself is fixed by the config, never by `threads`. They are
//! *not* numerically identical to the sequential [`crate::scale::run`] —
//! partitioning reorders same-instant events and decorrelates the
//! per-group Zipf streams — so sequential/partitioned comparisons are
//! A/B experiments, not regression checks.

use crate::costs::{DataCenterCosts, REQUEST_WIRE_BYTES};
use crate::msg::{self, MsgSender};
use crate::scale::{ScaleConfig, ScaleResult};
use crate::workload::{FileCatalog, Trace, ZipfTrace};
use ioat_core::cluster::{Cluster, NodeConfig, NodeHandle};
use ioat_fabric::{Fabric, FabricRef, Topology};
use ioat_faults::RetryPolicy;
use ioat_netsim::stack::{self, ClusterFrameTotals, EgressMode, FrameRouter, StackRef};
use ioat_netsim::{ConnId, Frame, Socket};
use ioat_parsim::{Outbox, ParsimReport, Partition};
use ioat_simcore::{Counter, Histogram, Sim, SimDuration, SimRng, SimTime, Summary};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// A frame crossing a partition boundary. Plain `Copy` data — the only
/// payload the groups and the fabric ever exchange.
#[derive(Debug, Clone, Copy)]
enum NetMsg {
    /// Group → fabric: a frame from attachment `src` finished serializing
    /// on its access link and enters the fabric at the firing instant.
    Ingress { src: usize, frame: Frame },
    /// Fabric → group: a frame's final hop targets `host`; it arrives at
    /// the firing instant.
    Deliver { host: usize, frame: Frame },
}

/// Sizes derived from the config once, shared by every builder.
#[derive(Debug, Clone, Copy)]
struct Layout {
    n_proxies: usize,
    n_webs: usize,
    /// Webs (and proxies) per group.
    f: usize,
    /// Server groups; partitions are `0` (fabric) plus `1..=groups`.
    groups: usize,
}

impl Layout {
    fn of(cfg: &ScaleConfig) -> Layout {
        let hosts = Topology::new(cfg.spec).hosts();
        assert!(hosts >= 2, "need at least one proxy and one web host");
        assert!(cfg.clients > 0, "need at least one client");
        assert!(cfg.webs_per_proxy > 0, "need at least one web per proxy");
        let n_proxies = hosts / 2;
        let n_webs = hosts - n_proxies;
        let f = cfg.webs_per_proxy.min(n_webs);
        assert_eq!(
            n_proxies, n_webs,
            "partitioning pairs each proxy group with a web subset; \
             it needs an even host count"
        );
        assert_eq!(
            n_webs % f,
            0,
            "webs_per_proxy ({f}) must divide the web tier ({n_webs}) \
             so subsets tile into disjoint groups"
        );
        Layout {
            n_proxies,
            n_webs,
            f,
            groups: n_webs / f,
        }
    }

    /// The partition index owning topology host `host`.
    fn partition_of_host(&self, host: usize) -> usize {
        if host < self.n_proxies {
            1 + host % self.groups
        } else {
            1 + (host - self.n_proxies) / self.f
        }
    }
}

/// Per (local proxy, subset slot) request-path endpoints, as in
/// [`crate::scale`] but indexed group-locally. Request metadata is
/// `(slot, generation, size)`.
type ReqSlot = Option<(Socket, MsgSender<(u32, u32, u64)>)>;

/// Group-local run state: the partition's slice of the client slab plus
/// its own streaming statistics, merged across partitions afterwards.
struct GroupShared {
    f: usize,
    costs: DataCenterCosts,
    think: SimDuration,
    client_latency: SimDuration,
    admit_budget: Option<u32>,
    hedge: Option<RetryPolicy>,
    trace: RefCell<ZipfTrace>,
    /// Local proxy index of each local client's proxy.
    client_q: Vec<u32>,
    started: RefCell<Vec<SimTime>>,
    /// Per-local-client request generation; see [`crate::scale`].
    generation: RefCell<Vec<u32>>,
    /// Transactions currently admitted per *local* proxy.
    in_flight: RefCell<Vec<u32>>,
    shed: Cell<u64>,
    hedges: Cell<u64>,
    req: RefCell<Vec<ReqSlot>>,
    completed: RefCell<Counter>,
    latency_hist: RefCell<Histogram>,
    latency_sum: RefCell<Summary>,
}

/// One closed-loop client iteration on its group's partition; mirrors
/// [`crate::scale`]'s `fire` with local indices.
fn fire(shared: &Rc<GroupShared>, sim: &mut Sim, slot: u32) {
    let req = shared.trace.borrow_mut().next_request();
    shared.started.borrow_mut()[slot as usize] = sim.now();
    let q = shared.client_q[slot as usize] as usize;
    let idx = q * shared.f + req.file_id as usize % shared.f;
    let sh = Rc::clone(shared);
    sim.schedule(shared.client_latency, move |sim| {
        if let Some(budget) = sh.admit_budget {
            if sh.in_flight.borrow()[q] >= budget {
                sh.shed.set(sh.shed.get() + 1);
                let sh2 = Rc::clone(&sh);
                sim.schedule(sh.think, move |sim| fire(&sh2, sim, slot));
                return;
            }
        }
        sh.in_flight.borrow_mut()[q] += 1;
        let generation = sh.generation.borrow()[slot as usize];
        send_attempt(&sh, sim, slot, generation, 0, idx, req.size);
    });
}

/// One transmission of a request (attempt 0 = original, ≥ 1 = hedges);
/// mirrors [`crate::scale`]'s `send_attempt` with local indices.
fn send_attempt(
    shared: &Rc<GroupShared>,
    sim: &mut Sim,
    slot: u32,
    generation: u32,
    attempt: u32,
    idx: usize,
    size: u64,
) {
    let sock = {
        let senders = shared.req.borrow();
        senders[idx].as_ref().expect("sender installed").0.clone()
    };
    let cost = if attempt == 0 {
        shared.costs.proxy_parse + shared.costs.proxy_forward
    } else {
        shared.costs.proxy_forward
    };
    let sh = Rc::clone(shared);
    sock.compute(sim, cost, move |sim| {
        {
            let senders = sh.req.borrow();
            let (_, sender) = senders[idx].as_ref().expect("sender installed");
            sender.send(sim, REQUEST_WIRE_BYTES, (slot, generation, size));
        }
        if let Some(policy) = sh.hedge {
            if attempt < policy.max_retries {
                let sh2 = Rc::clone(&sh);
                sim.schedule(policy.deadline(attempt), move |sim| {
                    if sh2.generation.borrow()[slot as usize] == generation {
                        sh2.hedges.set(sh2.hedges.get() + 1);
                        send_attempt(&sh2, sim, slot, generation, attempt + 1, idx, size);
                    }
                });
            }
        }
    });
}

/// A connection's group-local routing entry.
struct ConnRoute {
    /// The proxy-side attachment (the connection's `a` endpoint).
    att_a: usize,
    stack_a: StackRef,
    stack_b: StackRef,
    /// Reverse-path ACK latency: `switch_latency × path_links(a, b)`,
    /// exactly the fabric's own ACK model.
    ack_delay: SimDuration,
}

/// The group partition's [`FrameRouter`]: departing data frames are
/// staged for the fabric partition; ACKs turn around locally (both
/// endpoints of every group connection live in this partition).
struct GroupRouter {
    out: Outbox<NetMsg>,
    conns: RefCell<HashMap<ConnId, ConnRoute>>,
}

impl FrameRouter for GroupRouter {
    fn frame_ingress(self: Rc<Self>, _sim: &mut Sim, _src: usize, _frame: Frame) {
        unreachable!("group ports hand frames off to the fabric partition");
    }

    fn ack_ingress(
        self: Rc<Self>,
        sim: &mut Sim,
        src: usize,
        conn: ConnId,
        seq: u64,
        window: u64,
        dup: u32,
    ) {
        let (stack, delay) = {
            let conns = self.conns.borrow();
            let route = conns.get(&conn).expect("ACK for an unrouted connection");
            let dst = if src == route.att_a {
                &route.stack_b
            } else {
                &route.stack_a
            };
            (Rc::clone(dst), route.ack_delay)
        };
        sim.schedule(delay, move |sim| {
            stack::ack_received(&stack, sim, conn, seq, window, dup);
        });
    }

    fn egress_mode(&self) -> EgressMode {
        EgressMode::Handoff
    }

    fn frame_departed(self: Rc<Self>, _sim: &mut Sim, src: usize, frame: Frame, arrive: SimTime) {
        self.out.send(0, arrive, NetMsg::Ingress { src, frame });
    }
}

/// Partition 0: the switch fabric alone on its own event queue.
struct FabricPart {
    sim: Sim,
    fabric: FabricRef,
}

fn build_fabric_part(cfg: &ScaleConfig, lay: Layout, out: Outbox<NetMsg>) -> FabricPart {
    let mut sim = Sim::new();
    // Same runaway guard policy as `Cluster::new`.
    let limit = match ioat_guard::event_budget() {
        Some(budget) => budget.min(2_000_000_000),
        None => 2_000_000_000,
    };
    sim.set_event_limit(limit);
    let fabric = Fabric::new(cfg.spec, cfg.fabric);
    // The fault plan is a pure function of (spec, topology, window), so
    // this partition expands exactly the plan the sequential build would.
    if cfg.faults.is_active() {
        fabric.set_faults(&cfg.faults.plan(fabric.topology(), &cfg.window));
    }
    // Register every connection for routing; the endpoint stacks live in
    // the group partitions.
    for p in 0..lay.n_proxies {
        for j in 0..lay.f {
            let w = (p * lay.f + j) % lay.n_webs;
            fabric.open_remote(p, lay.n_proxies + w, ConnId(1 + (p * lay.f + j) as u64));
        }
    }
    // Final hops leave this partition: stage the delivery for the host's
    // group at the frame's arrival instant.
    fabric.set_remote_delivery(move |_sim, host, frame, arrive| {
        out.send(
            lay.partition_of_host(host),
            arrive,
            NetMsg::Deliver { host, frame },
        );
    });
    FabricPart { sim, fabric }
}

/// What the fabric partition reports back after the run.
struct FabricOut {
    tail_drops: u64,
    route_blackholes: u64,
}

/// Partitions `1..=G`: one server group and its clients.
struct GroupPart {
    cluster: Cluster,
    shared: Rc<GroupShared>,
    /// Topology host → (stack, port) for frames delivered off the fabric.
    host_ports: HashMap<usize, (StackRef, usize)>,
    proxies: Vec<NodeHandle>,
    webs: Vec<NodeHandle>,
    from: SimTime,
    to: SimTime,
}

fn build_group_part(cfg: &ScaleConfig, lay: Layout, g: usize, out: Outbox<NetMsg>) -> GroupPart {
    let topo = Topology::new(cfg.spec);
    let mut cluster = Cluster::new(cfg.seed);
    let router = Rc::new(GroupRouter {
        out,
        conns: RefCell::new(HashMap::new()),
    });

    // Proxies {g, g+G, …} and webs [g·f, (g+1)·f): the closed set of the
    // subset rule `w = (p·f + j) mod n_webs`.
    let mut host_ports = HashMap::new();
    let proxies: Vec<(usize, NodeHandle, usize)> = (0..lay.f)
        .map(|i| {
            let p = g + i * lay.groups;
            let h = cluster.add_node(NodeConfig::profiled(
                &format!("p{p}"),
                cfg.ioat,
                cfg.profile,
            ));
            let port = cluster.attach_router_host(
                h,
                Rc::clone(&router) as Rc<dyn FrameRouter>,
                p,
                &cfg.fabric,
            );
            host_ports.insert(p, (Rc::clone(cluster.stack(h)), port));
            (p, h, port)
        })
        .collect();
    let webs: Vec<(usize, NodeHandle, usize)> = (0..lay.f)
        .map(|j| {
            let w = g * lay.f + j;
            let h = cluster.add_node(NodeConfig::profiled(
                &format!("w{w}"),
                cfg.ioat,
                cfg.profile,
            ));
            let port = cluster.attach_router_host(
                h,
                Rc::clone(&router) as Rc<dyn FrameRouter>,
                lay.n_proxies + w,
                &cfg.fabric,
            );
            host_ports.insert(lay.n_proxies + w, (Rc::clone(cluster.stack(h)), port));
            (w, h, port)
        })
        .collect();

    // This group's slice of the client slab, with per-group Zipf draws.
    // The catalog (document → size) is rebuilt identically in every
    // group from the same seed; only the draw stream is per-group.
    let mut crng = SimRng::seed_from(cfg.seed);
    let catalog = FileCatalog::web_content(cfg.catalog_files, 8 * 1024, &mut crng);
    let trace = ZipfTrace::new(
        catalog,
        cfg.alpha,
        SimRng::stream(cfg.seed, 0x5EED + g as u64),
    );
    let slots: Vec<u32> = (0..cfg.clients as u32)
        .filter(|&s| (s as usize % lay.n_proxies) % lay.groups == g)
        .collect();
    let client_q: Vec<u32> = slots
        .iter()
        .map(|&s| ((s as usize % lay.n_proxies - g) / lay.groups) as u32)
        .collect();
    let mut completed = Counter::new();
    completed.begin_window(cfg.window.from());
    let n_slots = slots.len();
    let shared = Rc::new(GroupShared {
        f: lay.f,
        costs: cfg.costs,
        think: cfg.think,
        client_latency: cfg.client_latency,
        admit_budget: cfg.admit_budget,
        hedge: cfg.hedge,
        trace: RefCell::new(trace),
        client_q,
        started: RefCell::new(vec![SimTime::ZERO; n_slots]),
        generation: RefCell::new(vec![0; n_slots]),
        in_flight: RefCell::new(vec![0; lay.f]),
        shed: Cell::new(0),
        hedges: Cell::new(0),
        req: RefCell::new((0..lay.f * lay.f).map(|_| None).collect()),
        completed: RefCell::new(completed),
        latency_hist: RefCell::new(Histogram::new()),
        latency_sum: RefCell::new(Summary::new()),
    });

    // Connections with the globally deterministic ids the fabric
    // partition registered: id = 1 + p·f + j.
    let opts = ScaleConfig::opts();
    for (q, &(p, ph, p_port)) in proxies.iter().enumerate() {
        for (j, &(_, wh, w_port)) in webs.iter().enumerate() {
            let w = g * lay.f + j;
            let id = ConnId(1 + (p * lay.f + j) as u64);
            let (p_sock, w_sock) = cluster.open_with_id(ph, p_port, wh, w_port, opts, id);
            router.conns.borrow_mut().insert(
                id,
                ConnRoute {
                    att_a: p,
                    stack_a: Rc::clone(cluster.stack(ph)),
                    stack_b: Rc::clone(cluster.stack(wh)),
                    ack_delay: cfg.fabric.switch_latency
                        * topo.path_links(p, lay.n_proxies + w) as u64,
                },
            );

            // Response and request paths, exactly as in the sequential
            // build but over group-local slots.
            let sh = Rc::clone(&shared);
            let p_sock2 = p_sock.clone();
            let respond = msg::channel(
                w_sock.clone(),
                p_sock.clone(),
                move |sim, (slot, generation): (u32, u32)| {
                    // Stale hedge duplicate: already completed, discard.
                    if sh.generation.borrow()[slot as usize] != generation {
                        return;
                    }
                    sh.generation.borrow_mut()[slot as usize] += 1;
                    let lq = sh.client_q[slot as usize] as usize;
                    sh.in_flight.borrow_mut()[lq] -= 1;
                    let sh2 = Rc::clone(&sh);
                    p_sock2.compute(sim, sh.costs.proxy_relay, move |sim| {
                        let sh3 = Rc::clone(&sh2);
                        sim.schedule(sh2.client_latency, move |sim| {
                            let now = sim.now();
                            let lat = now - sh3.started.borrow()[slot as usize];
                            let us = lat.as_nanos() / 1_000;
                            sh3.completed.borrow_mut().add_at(now, 1);
                            sh3.latency_hist.borrow_mut().record(us.max(1));
                            sh3.latency_sum.borrow_mut().add(us as f64);
                            let sh4 = Rc::clone(&sh3);
                            sim.schedule(sh3.think, move |sim| fire(&sh4, sim, slot));
                        });
                    });
                },
            );
            let respond = Rc::new(respond);

            let costs = cfg.costs;
            let w_sock2 = w_sock.clone();
            let request = msg::channel(
                p_sock.clone(),
                w_sock,
                move |sim, (slot, generation, size): (u32, u32, u64)| {
                    let rsp = Rc::clone(&respond);
                    w_sock2.compute(sim, costs.web_serve(size), move |sim| {
                        rsp.send(sim, size, (slot, generation));
                    });
                },
            );
            shared.req.borrow_mut()[q * lay.f + j] = Some((p_sock, request));
        }
    }

    // Client starts keep their *global* stagger offsets so the aggregate
    // arrival pattern matches the layout, not the partition count.
    let warmup_ns = cfg.window.warmup.as_nanos().max(1);
    for (local, &s) in slots.iter().enumerate() {
        let at = SimDuration::from_nanos(warmup_ns * u64::from(s) / cfg.clients as u64);
        let sh = Rc::clone(&shared);
        let local = local as u32;
        cluster
            .sim_mut()
            .schedule(at, move |sim| fire(&sh, sim, local));
    }

    // The engine runs straight to the horizon; meters open mid-run via a
    // scheduled reset instead of `ExperimentWindow::execute`'s pause.
    let from = cfg.window.from();
    for &(_, h, _) in proxies.iter().chain(webs.iter()) {
        let stack = Rc::clone(cluster.stack(h));
        cluster.sim_mut().schedule_at(from, move |_sim| {
            stack.borrow_mut().begin_measurement(from);
        });
    }

    GroupPart {
        cluster,
        shared,
        host_ports,
        proxies: proxies.iter().map(|&(_, h, _)| h).collect(),
        webs: webs.iter().map(|&(_, h, _)| h).collect(),
        from,
        to: cfg.window.to(),
    }
}

/// What a group partition reports back: its statistics slice and its
/// terms of the cluster-wide conservation identity.
struct GroupOut {
    completed: u64,
    hist: Histogram,
    lat: Summary,
    proxy_cpu_sum: f64,
    web_cpu_sum: f64,
    proxy_occ_sum: f64,
    shed: u64,
    hedges: u64,
    totals: ClusterFrameTotals,
}

/// One partition of the datacenter run.
enum DcPartition {
    Fabric(FabricPart),
    // Boxed: a group (cluster + shared client state) is ~3× the fabric
    // variant, and partitions are moved into per-worker vectors.
    Group(Box<GroupPart>),
}

enum DcOut {
    Fabric(FabricOut),
    Group(GroupOut),
}

impl Partition for DcPartition {
    type Msg = NetMsg;
    type Out = DcOut;

    fn next_event_at(&mut self) -> Option<SimTime> {
        match self {
            DcPartition::Fabric(p) => p.sim.next_event_at(),
            DcPartition::Group(p) => p.cluster.sim_mut().next_event_at(),
        }
    }

    fn run_before(&mut self, limit: SimTime) {
        match self {
            DcPartition::Fabric(p) => {
                p.sim.run_before(limit);
            }
            DcPartition::Group(p) => {
                p.cluster.sim_mut().run_before(limit);
            }
        }
    }

    fn run_final(&mut self, horizon: SimTime) {
        match self {
            DcPartition::Fabric(p) => {
                p.sim.run_until(horizon);
            }
            DcPartition::Group(p) => {
                p.cluster.run_until(horizon);
            }
        }
    }

    fn inject(&mut self, fire_at: SimTime, msg: NetMsg) {
        match (self, msg) {
            (DcPartition::Fabric(p), NetMsg::Ingress { src, frame }) => {
                let fabric = Rc::clone(&p.fabric);
                p.sim.schedule_at(fire_at, move |sim| {
                    fabric.frame_ingress(sim, src, frame);
                });
            }
            (DcPartition::Group(p), NetMsg::Deliver { host, frame }) => {
                let (stack, port) = p
                    .host_ports
                    .get(&host)
                    .expect("frame delivered to a host outside this partition")
                    .clone();
                p.cluster.sim_mut().schedule_at(fire_at, move |sim| {
                    stack::frame_arrived(&stack, sim, port, frame);
                });
            }
            (DcPartition::Fabric(_), NetMsg::Deliver { .. }) => {
                unreachable!("Deliver targets a group partition");
            }
            (DcPartition::Group(_), NetMsg::Ingress { .. }) => {
                unreachable!("Ingress targets the fabric partition");
            }
        }
    }

    fn events_executed(&self) -> u64 {
        match self {
            DcPartition::Fabric(p) => p.sim.events_executed(),
            DcPartition::Group(p) => p.cluster.sim().events_executed(),
        }
    }

    fn finish(self) -> DcOut {
        match self {
            DcPartition::Fabric(p) => {
                if ioat_guard::enabled() {
                    ioat_guard::audit_sim(&p.sim);
                    let quiescent = p.sim.events_pending() == 0;
                    p.fabric.audit(p.sim.now(), quiescent);
                }
                DcOut::Fabric(FabricOut {
                    tail_drops: p.fabric.tail_drops(),
                    route_blackholes: p.fabric.blackholes(),
                })
            }
            DcPartition::Group(p) => {
                if ioat_guard::enabled() {
                    p.cluster.run_local_audits();
                }
                let tier_sum = |handles: &[NodeHandle]| {
                    handles
                        .iter()
                        .map(|&h| p.cluster.stack(h).borrow().cpu_utilization(p.from, p.to))
                        .sum::<f64>()
                };
                DcOut::Group(GroupOut {
                    completed: p.shared.completed.borrow().window_total(),
                    hist: p.shared.latency_hist.borrow().clone(),
                    lat: p.shared.latency_sum.borrow().clone(),
                    proxy_cpu_sum: tier_sum(&p.proxies),
                    web_cpu_sum: tier_sum(&p.webs),
                    proxy_occ_sum: p
                        .proxies
                        .iter()
                        .map(|&h| p.cluster.stack(h).borrow().cpu_occupancy(p.from, p.to))
                        .sum::<f64>(),
                    shed: p.shared.shed.get(),
                    hedges: p.shared.hedges.get(),
                    totals: p.cluster.frame_totals(),
                })
            }
        }
    }
}

/// Runs the fabric-scale scenario partitioned onto `threads` worker
/// threads, returning the merged result plus the engine's
/// per-partition/per-window report.
///
/// Results are bit-identical for any `threads ≥ 1` (see the module docs
/// for why they differ from the sequential [`crate::scale::run`]).
///
/// # Panics
///
/// Panics if `threads` is zero, or if the configuration cannot be tiled
/// into groups (`webs_per_proxy` must divide the web-tier size).
pub fn run_partitioned(cfg: &ScaleConfig, threads: usize) -> (ScaleResult, ParsimReport) {
    let lay = Layout::of(cfg);
    let cfg = *cfg;
    let horizon = cfg.window.to();
    let lookahead = cfg.fabric.switch_latency;

    let builders: Vec<_> = (0..=lay.groups)
        .map(|_| {
            move |idx: usize, out: Outbox<NetMsg>| -> DcPartition {
                if idx == 0 {
                    DcPartition::Fabric(build_fabric_part(&cfg, lay, out))
                } else {
                    DcPartition::Group(Box::new(build_group_part(&cfg, lay, idx - 1, out)))
                }
            }
        })
        .collect();
    let (outs, report) = ioat_parsim::run(builders, lookahead, horizon, threads);

    // Deterministic merge in partition order.
    let mut tail_drops = 0u64;
    let mut route_blackholes = 0u64;
    let mut completed = 0u64;
    let mut hist = Histogram::new();
    let mut lat = Summary::new();
    let mut proxy_cpu_sum = 0.0;
    let mut web_cpu_sum = 0.0;
    let mut proxy_occ_sum = 0.0;
    let mut shed = 0u64;
    let mut hedges = 0u64;
    let mut totals = ClusterFrameTotals::default();
    for out in outs {
        match out {
            DcOut::Fabric(f) => {
                tail_drops = f.tail_drops;
                route_blackholes = f.route_blackholes;
            }
            DcOut::Group(g) => {
                completed += g.completed;
                hist.merge(&g.hist);
                lat.merge(&g.lat);
                proxy_cpu_sum += g.proxy_cpu_sum;
                web_cpu_sum += g.web_cpu_sum;
                proxy_occ_sum += g.proxy_occ_sum;
                shed += g.shed;
                hedges += g.hedges;
                totals.merge(&g.totals);
            }
        }
    }
    // The cluster-wide conservation identity only holds on totals summed
    // across every partition; the frames the fabric dropped or
    // blackholed are its `switch_dropped` / `route_blackholed` terms.
    // The window closes mid-flight, so the in-flight (non-quiescent)
    // form applies.
    if ioat_guard::enabled() {
        stack::audit_cluster_conservation_sums(
            totals,
            tail_drops,
            route_blackholes,
            horizon,
            false,
        );
    }

    let elapsed = (cfg.window.to() - cfg.window.from()).as_secs_f64();
    let result = ScaleResult {
        tps: completed as f64 / elapsed,
        completed,
        latency_mean_us: lat.mean(),
        latency_p50_us: hist.quantile(0.50),
        latency_p99_us: hist.quantile(0.99),
        latency_max_us: lat.max().unwrap_or(0.0),
        proxy_cpu: proxy_cpu_sum / lay.n_proxies as f64,
        web_cpu: web_cpu_sum / lay.n_webs as f64,
        tail_drops,
        route_blackholes,
        shed,
        hedges,
        proxy_occupancy: proxy_occ_sum / lay.n_proxies as f64,
        sim_events: report.total_events(),
    };
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_netsim::IoatConfig;

    #[test]
    fn partitioned_results_are_bit_identical_across_worker_counts() {
        let cfg = ScaleConfig::quick_test(IoatConfig::disabled());
        let (r1, rep1) = run_partitioned(&cfg, 1);
        let (r2, rep2) = run_partitioned(&cfg, 2);
        let (r8, rep8) = run_partitioned(&cfg, 8);
        assert_eq!(r1, r2, "1 vs 2 workers");
        assert_eq!(r1, r8, "1 vs 8 workers");
        assert!(r1.completed > 0, "clients completed transactions");
        for rep in [&rep2, &rep8] {
            assert_eq!(rep1.rounds, rep.rounds);
            assert_eq!(rep1.events, rep.events);
            assert_eq!(rep1.emitted, rep.emitted);
            assert_eq!(rep1.injected, rep.injected);
        }
        assert!(
            rep1.emitted.iter().sum::<u64>() > 0,
            "data frames crossed the fabric boundary"
        );
    }

    #[test]
    fn partitioned_run_is_audit_clean() {
        let cfg = ScaleConfig::quick_test(IoatConfig::full());
        let (result, violations) = ioat_guard::with_audit(|| run_partitioned(&cfg, 2));
        let (r, rep) = result.expect("run completes");
        assert!(
            violations.is_empty(),
            "audits must be clean: {violations:?}"
        );
        assert!(r.tps > 0.0);
        assert!(r.latency_p99_us >= r.latency_p50_us);
        assert!(r.proxy_cpu > 0.0 && r.proxy_cpu <= 1.0);
        assert!(r.web_cpu > 0.0 && r.web_cpu <= 1.0);
        assert_eq!(rep.partitions, 1 + 2, "fat-tree(4): fabric + 2 groups");
    }

    #[test]
    fn partitioned_reruns_reproduce_exactly() {
        let cfg = ScaleConfig::quick_test(IoatConfig::full());
        let a = run_partitioned(&cfg, 3);
        let b = run_partitioned(&cfg, 3);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn faulted_partitioned_runs_are_bit_identical_across_worker_counts() {
        use crate::scale::FabricFaultSpec;
        use ioat_simcore::SimDuration;
        let mut cfg = ScaleConfig::quick_test(IoatConfig::disabled());
        cfg.faults = FabricFaultSpec {
            flaps_per_link: 3,
            crashed_switches: 2,
            ..FabricFaultSpec::none()
        };
        cfg.admit_budget = Some(2);
        cfg.hedge = Some(RetryPolicy {
            timeout: SimDuration::from_millis(4),
            ..RetryPolicy::default()
        });
        let (result, violations) = ioat_guard::with_audit(|| {
            let (r1, _) = run_partitioned(&cfg, 1);
            let (r4, _) = run_partitioned(&cfg, 4);
            (r1, r4)
        });
        let (r1, r4) = result.expect("faulted runs complete");
        assert!(
            violations.is_empty(),
            "audits must stay clean under faults: {violations:?}"
        );
        assert_eq!(r1, r4, "fault windows must be partition-invariant");
        assert!(
            r1.route_blackholes > 0,
            "the crash window must blackhole some frames"
        );
        assert!(r1.completed > 0, "transactions keep completing");
    }

    #[test]
    fn ioat_still_reduces_cpu_per_transaction_when_partitioned() {
        let mut cfg = ScaleConfig::quick_test(IoatConfig::disabled());
        cfg.clients = 96;
        let (non, _) = run_partitioned(&cfg, 2);
        cfg.ioat = IoatConfig::full();
        let (ioat, _) = run_partitioned(&cfg, 2);
        let non_per = (non.proxy_cpu + non.web_cpu) / non.tps;
        let ioat_per = (ioat.proxy_cpu + ioat.web_cpu) / ioat.tps;
        assert!(
            ioat_per < non_per,
            "I/OAT {ioat_per:.3e} vs non {non_per:.3e} CPU/txn"
        );
    }
}
