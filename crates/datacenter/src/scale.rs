//! Datacenter at fabric scale: thousands of proxy/web servers behind a
//! Clos fabric, fronting up to ~10⁶ emulated Zipf clients.
//!
//! The paper's two-tier testbed (§5) stops at 2 nodes and 44 emulated
//! clients; this module re-asks the I/OAT question at datacenter scale.
//! The first half of the topology's hosts run the proxy tier, the second
//! half the web tier; every proxy holds persistent connections to a small
//! deterministic subset of web servers (`webs_per_proxy`, a documented
//! simplification of consistent hashing) and documents map onto that
//! subset by id. Clients are *emulated* exactly like the paper's: they
//! are not simulated hosts but closed loops — draw a Zipf document, wait
//! the client-side latency, drive the proxy's request path
//! (parse + forward → web serve → relay), then think and repeat.
//!
//! Every per-client and per-request structure is fixed-size so memory
//! stays bounded at a million clients:
//!
//! * per-client state is one slab slot (the request start instant — the
//!   document travels in the message metadata);
//! * latencies stream into a fixed-bucket log-scale [`Histogram`] and a
//!   Welford [`Summary`] (online mean/max), never a per-request `Vec`;
//! * throughput is a windowed [`Counter`].

use crate::costs::{DataCenterCosts, REQUEST_WIRE_BYTES};
use crate::msg::{self, MsgSender};
use crate::workload::{FileCatalog, Trace, ZipfTrace};
use ioat_core::cluster::{Cluster, NodeConfig, NodeHandle};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::{IoatConfig, SocketOpts};
use ioat_fabric::{FabricParams, Topology, TopologySpec};
use ioat_simcore::{Counter, Histogram, SimDuration, SimRng, SimTime, Summary};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of a fabric-scale datacenter run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Fabric topology; its host count fixes the server count (half
    /// proxies, half web servers).
    pub spec: TopologySpec,
    /// Fabric physical parameters (bandwidths, oversubscription, buffers,
    /// ECMP seed).
    pub fabric: FabricParams,
    /// Emulated closed-loop clients.
    pub clients: usize,
    /// I/OAT features on every server node.
    pub ioat: IoatConfig,
    /// Application cost model.
    pub costs: DataCenterCosts,
    /// Measurement window. Client starts are staggered across the warmup.
    pub window: ExperimentWindow,
    /// Zipf exponent of the document popularity distribution.
    pub alpha: f64,
    /// Documents in the catalog.
    pub catalog_files: usize,
    /// Web servers each proxy holds persistent connections to.
    pub webs_per_proxy: usize,
    /// Client think time between a completed response and the next
    /// request.
    pub think: SimDuration,
    /// One-way client ↔ proxy latency (clients are emulated, not
    /// simulated hosts, so their access network is a fixed delay).
    pub client_latency: SimDuration,
    /// Workload seed (catalog sizes + Zipf draws).
    pub seed: u64,
    /// Hardware era every server node is calibrated against.
    pub profile: ioat_core::calibration::NodeProfile,
}

impl ScaleConfig {
    /// A fat-tree(k) datacenter at oversubscription `oversub` with
    /// `clients` emulated clients. Defaults: Zipf(0.9) over 10 K
    /// documents of 8 K median, 4 webs per proxy, 20 ms think, 200 µs
    /// client latency, quick window.
    pub fn fat_tree(k: usize, oversub: f64, clients: usize, ioat: IoatConfig) -> Self {
        ScaleConfig {
            spec: TopologySpec::FatTree { k },
            fabric: FabricParams {
                oversubscription: oversub,
                seed: 0xFA8,
                ..FabricParams::gige()
            },
            clients,
            ioat,
            costs: DataCenterCosts::default(),
            window: ExperimentWindow::quick(),
            alpha: 0.9,
            catalog_files: 10_000,
            webs_per_proxy: 4,
            think: SimDuration::from_millis(20),
            client_latency: SimDuration::from_micros(200),
            seed: 0xD1CE,
            profile: ioat_core::calibration::NodeProfile::Testbed2007,
        }
    }

    /// A tiny configuration for unit tests: fat-tree(4), 48 clients,
    /// short think so several requests complete per client.
    pub fn quick_test(ioat: IoatConfig) -> Self {
        ScaleConfig {
            clients: 48,
            think: SimDuration::from_millis(2),
            catalog_files: 500,
            ..Self::fat_tree(4, 1.0, 48, ioat)
        }
    }

    /// Socket options used on the server tier: all offloads on, but
    /// moderate 64 K buffers so a million multiplexed clients cannot pile
    /// unbounded bytes into any single connection window.
    pub(crate) fn opts() -> SocketOpts {
        SocketOpts {
            sndbuf: 64 * 1024,
            rcvbuf: 64 * 1024,
            read_size: 16 * 1024,
            ..SocketOpts::tuned()
        }
    }
}

/// Outcome of a fabric-scale run. All statistics are streaming — their
/// memory footprint is independent of `clients` and of the request count.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScaleResult {
    /// Transactions per second over the measurement window.
    pub tps: f64,
    /// Transactions completed inside the window.
    pub completed: u64,
    /// Mean end-to-end client latency, µs.
    pub latency_mean_us: f64,
    /// Median latency, µs (log-scale histogram bucket upper bound).
    pub latency_p50_us: u64,
    /// 99th-percentile latency, µs.
    pub latency_p99_us: u64,
    /// Worst observed latency, µs.
    pub latency_max_us: f64,
    /// Mean CPU utilization across the proxy tier in the window.
    pub proxy_cpu: f64,
    /// Mean CPU utilization across the web tier in the window.
    pub web_cpu: f64,
    /// Frames tail-dropped by switch buffers over the whole run.
    pub tail_drops: u64,
    /// Simulator events executed by the end of the window.
    pub sim_events: u64,
}

/// Per (proxy, subset-slot) request-path endpoints: the proxy-side
/// socket (for compute charging) and the request sender toward the
/// chosen web server.
type ReqSlot = Option<(ioat_netsim::Socket, MsgSender<(u32, u64)>)>;

/// Shared run state: the client slab plus streaming statistics. One
/// allocation each, fixed size for the whole run.
struct Shared {
    n_proxies: usize,
    webs_per_proxy: usize,
    costs: DataCenterCosts,
    think: SimDuration,
    client_latency: SimDuration,
    trace: RefCell<ZipfTrace>,
    /// Slab of per-client request start instants, indexed by client slot.
    started: RefCell<Vec<SimTime>>,
    req: RefCell<Vec<ReqSlot>>,
    completed: RefCell<Counter>,
    latency_hist: RefCell<Histogram>,
    latency_sum: RefCell<Summary>,
}

/// One closed-loop client iteration: draw a document, cross the client
/// access delay, run the proxy request path.
fn fire(shared: &Rc<Shared>, sim: &mut ioat_simcore::Sim, slot: u32) {
    let req = shared.trace.borrow_mut().next_request();
    shared.started.borrow_mut()[slot as usize] = sim.now();
    let p = slot as usize % shared.n_proxies;
    let idx = p * shared.webs_per_proxy + req.file_id as usize % shared.webs_per_proxy;
    let sh = Rc::clone(shared);
    sim.schedule(shared.client_latency, move |sim| {
        let sock = {
            let senders = sh.req.borrow();
            senders[idx].as_ref().expect("sender installed").0.clone()
        };
        let cost = sh.costs.proxy_parse + sh.costs.proxy_forward;
        let sh2 = Rc::clone(&sh);
        sock.compute(sim, cost, move |sim| {
            let senders = sh2.req.borrow();
            let (_, sender) = senders[idx].as_ref().expect("sender installed");
            sender.send(sim, REQUEST_WIRE_BYTES, (slot, req.size));
        });
    });
}

/// Runs the fabric-scale scenario.
pub fn run(cfg: &ScaleConfig) -> ScaleResult {
    let topo = Topology::new(cfg.spec);
    let hosts = topo.hosts();
    assert!(hosts >= 2, "need at least one proxy and one web host");
    assert!(cfg.clients > 0, "need at least one client");
    assert!(cfg.webs_per_proxy > 0, "need at least one web per proxy");
    let n_proxies = hosts / 2;
    let n_webs = hosts - n_proxies;
    let f = cfg.webs_per_proxy.min(n_webs);

    let mut cluster = Cluster::new(cfg.seed);
    let fabric = cluster.install_fabric(cfg.spec, cfg.fabric);

    let mut nodes: Vec<NodeHandle> = Vec::with_capacity(hosts);
    let proxies: Vec<NodeHandle> = (0..n_proxies)
        .map(|p| {
            let h = cluster.add_node(NodeConfig::profiled(
                &format!("p{p}"),
                cfg.ioat,
                cfg.profile,
            ));
            cluster.attach_fabric_host(h, p);
            nodes.push(h);
            h
        })
        .collect();
    let webs: Vec<NodeHandle> = (0..n_webs)
        .map(|w| {
            let h = cluster.add_node(NodeConfig::profiled(
                &format!("w{w}"),
                cfg.ioat,
                cfg.profile,
            ));
            cluster.attach_fabric_host(h, n_proxies + w);
            nodes.push(h);
            h
        })
        .collect();

    let mut rng = SimRng::seed_from(cfg.seed);
    let catalog = FileCatalog::web_content(cfg.catalog_files, 8 * 1024, &mut rng);
    let trace = ZipfTrace::new(catalog, cfg.alpha, rng.fork());

    let mut completed = Counter::new();
    completed.begin_window(cfg.window.from());
    let shared = Rc::new(Shared {
        n_proxies,
        webs_per_proxy: f,
        costs: cfg.costs,
        think: cfg.think,
        client_latency: cfg.client_latency,
        trace: RefCell::new(trace),
        started: RefCell::new(vec![SimTime::ZERO; cfg.clients]),
        req: RefCell::new((0..n_proxies * f).map(|_| None).collect()),
        completed: RefCell::new(completed),
        latency_hist: RefCell::new(Histogram::new()),
        latency_sum: RefCell::new(Summary::new()),
    });

    let opts = ScaleConfig::opts();
    for (p, &proxy) in proxies.iter().enumerate() {
        for j in 0..f {
            let w = (p * f + j) % n_webs;
            let (p_sock, w_sock) = cluster.open_on_fabric(proxy, p, webs[w], n_proxies + w, opts);

            // Responses web → proxy → (after the access delay) client:
            // relay on the proxy, complete the transaction, think, fire
            // the client's next request.
            let sh = Rc::clone(&shared);
            let p_sock2 = p_sock.clone();
            let respond = msg::channel(w_sock.clone(), p_sock.clone(), move |sim, slot: u32| {
                let sh2 = Rc::clone(&sh);
                p_sock2.compute(sim, sh.costs.proxy_relay, move |sim| {
                    let sh3 = Rc::clone(&sh2);
                    sim.schedule(sh2.client_latency, move |sim| {
                        let now = sim.now();
                        let lat = now - sh3.started.borrow()[slot as usize];
                        let us = lat.as_nanos() / 1_000;
                        sh3.completed.borrow_mut().add_at(now, 1);
                        sh3.latency_hist.borrow_mut().record(us.max(1));
                        sh3.latency_sum.borrow_mut().add(us as f64);
                        let sh4 = Rc::clone(&sh3);
                        sim.schedule(sh3.think, move |sim| fire(&sh4, sim, slot));
                    });
                });
            });
            let respond = Rc::new(respond);

            // Requests proxy → web: serve the document, send it back.
            let costs = cfg.costs;
            let w_sock2 = w_sock.clone();
            let request = msg::channel(
                p_sock.clone(),
                w_sock,
                move |sim, (slot, size): (u32, u64)| {
                    let rsp = Rc::clone(&respond);
                    w_sock2.compute(sim, costs.web_serve(size), move |sim| {
                        rsp.send(sim, size, slot);
                    });
                },
            );
            shared.req.borrow_mut()[p * f + j] = Some((p_sock, request));
        }
    }

    // Stagger client starts across the warmup so the window opens at
    // steady state instead of on a synchronized thundering herd.
    let warmup_ns = cfg.window.warmup.as_nanos().max(1);
    for slot in 0..cfg.clients as u32 {
        let at = SimDuration::from_nanos(warmup_ns * u64::from(slot) / cfg.clients as u64);
        let sh = Rc::clone(&shared);
        cluster
            .sim_mut()
            .schedule(at, move |sim| fire(&sh, sim, slot));
    }

    let (from, to) = cfg.window.execute(&mut cluster, &nodes);
    let elapsed = (to - from).as_secs_f64();
    let tier_cpu = |handles: &[NodeHandle]| {
        handles
            .iter()
            .map(|&h| cluster.stack(h).borrow().cpu_utilization(from, to))
            .sum::<f64>()
            / handles.len() as f64
    };
    let hist = shared.latency_hist.borrow();
    let sum = shared.latency_sum.borrow();
    let completed = shared.completed.borrow().window_total();
    ScaleResult {
        tps: completed as f64 / elapsed,
        completed,
        latency_mean_us: sum.mean(),
        latency_p50_us: hist.quantile(0.50),
        latency_p99_us: hist.quantile(0.99),
        latency_max_us: sum.max().unwrap_or(0.0),
        proxy_cpu: tier_cpu(&proxies),
        web_cpu: tier_cpu(&webs),
        tail_drops: fabric.tail_drops(),
        sim_events: cluster.sim().events_executed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_run_completes_with_clean_audits() {
        let (result, violations) =
            ioat_guard::with_audit(|| run(&ScaleConfig::quick_test(IoatConfig::disabled())));
        let r = result.expect("run completes");
        assert!(
            violations.is_empty(),
            "audits must be clean: {violations:?}"
        );
        assert!(r.completed > 0, "clients must complete transactions");
        assert!(r.tps > 0.0);
        assert!(r.latency_p50_us > 0);
        assert!(r.latency_p99_us >= r.latency_p50_us);
        assert!(r.latency_max_us >= r.latency_p99_us as f64 / 2.0);
        assert!(r.proxy_cpu > 0.0 && r.proxy_cpu <= 1.0);
        assert!(r.web_cpu > 0.0 && r.web_cpu <= 1.0);
        assert!(r.sim_events > 0);
    }

    #[test]
    fn scale_runs_are_deterministic() {
        let cfg = ScaleConfig::quick_test(IoatConfig::full());
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "same seed must reproduce bit-identical results");
    }

    #[test]
    fn ioat_reduces_server_cpu_per_transaction() {
        let mut cfg = ScaleConfig::quick_test(IoatConfig::disabled());
        cfg.clients = 96;
        let non = run(&cfg);
        cfg.ioat = IoatConfig::full();
        let ioat = run(&cfg);
        let non_per = (non.proxy_cpu + non.web_cpu) / non.tps;
        let ioat_per = (ioat.proxy_cpu + ioat.web_cpu) / ioat.tps;
        assert!(
            ioat_per < non_per,
            "I/OAT {ioat_per:.3e} vs non {non_per:.3e} CPU/txn"
        );
    }
}
