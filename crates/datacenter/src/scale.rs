//! Datacenter at fabric scale: thousands of proxy/web servers behind a
//! Clos fabric, fronting up to ~10⁶ emulated Zipf clients.
//!
//! The paper's two-tier testbed (§5) stops at 2 nodes and 44 emulated
//! clients; this module re-asks the I/OAT question at datacenter scale.
//! The first half of the topology's hosts run the proxy tier, the second
//! half the web tier; every proxy holds persistent connections to a small
//! deterministic subset of web servers (`webs_per_proxy`, a documented
//! simplification of consistent hashing) and documents map onto that
//! subset by id. Clients are *emulated* exactly like the paper's: they
//! are not simulated hosts but closed loops — draw a Zipf document, wait
//! the client-side latency, drive the proxy's request path
//! (parse + forward → web serve → relay), then think and repeat.
//!
//! Every per-client and per-request structure is fixed-size so memory
//! stays bounded at a million clients:
//!
//! * per-client state is one slab slot (the request start instant — the
//!   document travels in the message metadata);
//! * latencies stream into a fixed-bucket log-scale [`Histogram`] and a
//!   Welford [`Summary`] (online mean/max), never a per-request `Vec`;
//! * throughput is a windowed [`Counter`].

use crate::costs::{DataCenterCosts, REQUEST_WIRE_BYTES};
use crate::msg::{self, MsgSender};
use crate::workload::{FileCatalog, Trace, ZipfTrace};
use ioat_core::cluster::{Cluster, NodeConfig, NodeHandle};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::{IoatConfig, SocketOpts};
use ioat_fabric::{FabricParams, Topology, TopologySpec};
use ioat_faults::{CrashWindow, FaultPlan, LinkFlapModel, RetryPolicy, TimeWindow};
use ioat_simcore::{Counter, Histogram, SimDuration, SimRng, SimTime, Summary};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Fabric-facing fault injection for a scale run, expanded against the
/// run's topology and measurement window by [`FabricFaultSpec::plan`].
/// Plain `Copy` data so [`ScaleConfig`] stays plain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricFaultSpec {
    /// Flap windows drawn per directed fabric link across the whole run
    /// (0 = no flapping).
    pub flaps_per_link: u32,
    /// Downtime of each flap.
    pub flap_down: SimDuration,
    /// Switches crashed for the first part of the measurement window
    /// (0 = none). Drawn without replacement from the non-edge tiers,
    /// where ECMP has equal-cost siblings to fail over to — crashing an
    /// edge switch severs its hosts outright, a different experiment.
    pub crashed_switches: u32,
    /// Seed of the plan's dedicated RNG streams (flap schedules and the
    /// crashed-switch draw).
    pub seed: u64,
}

impl FabricFaultSpec {
    /// The inert spec: no flaps, no crashes, bit-identical to a run that
    /// never saw one.
    pub fn none() -> Self {
        FabricFaultSpec {
            flaps_per_link: 0,
            flap_down: SimDuration::from_micros(500),
            crashed_switches: 0,
            seed: 0xFA17,
        }
    }

    /// Whether the spec injects anything at all.
    pub fn is_active(&self) -> bool {
        self.flaps_per_link > 0 || self.crashed_switches > 0
    }

    /// Expands the spec into the concrete [`FaultPlan`] for `topo` over
    /// `window`: flap schedules span the whole run, crash windows cover
    /// `[measure/8, measure/2]` past the window open so the run records
    /// both the degradation and the recovery. A pure function of
    /// `(self, topo, window)` — every partition layout expands it
    /// identically, which keeps parallel runs bit-identical.
    pub fn plan(&self, topo: &Topology, window: &ExperimentWindow) -> FaultPlan {
        let mut plan = FaultPlan {
            seed: self.seed,
            ..FaultPlan::none()
        };
        if self.flaps_per_link > 0 {
            plan.link_flap = Some(LinkFlapModel {
                flaps_per_link: self.flaps_per_link,
                down_for: self.flap_down,
                horizon: window.to(),
            });
        }
        if self.crashed_switches > 0 {
            let mut candidates: Vec<usize> = (0..topo.switches())
                .filter(|&sw| topo.switch_tier(sw) > 0)
                .collect();
            let n = (self.crashed_switches as usize).min(candidates.len());
            let mut rng = SimRng::stream(self.seed, 0xC4A5);
            let m = window.measure.as_nanos();
            let open = window.from();
            let down = TimeWindow::new(
                open + SimDuration::from_nanos(m / 8),
                open + SimDuration::from_nanos(m / 2),
            );
            for _ in 0..n {
                let i = rng.range(0, candidates.len() as u64) as usize;
                plan.switch_crashes.push(CrashWindow {
                    service: candidates.swap_remove(i) as u32,
                    window: down,
                });
            }
        }
        plan
    }
}

/// Configuration of a fabric-scale datacenter run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Fabric topology; its host count fixes the server count (half
    /// proxies, half web servers).
    pub spec: TopologySpec,
    /// Fabric physical parameters (bandwidths, oversubscription, buffers,
    /// ECMP seed).
    pub fabric: FabricParams,
    /// Emulated closed-loop clients.
    pub clients: usize,
    /// I/OAT features on every server node.
    pub ioat: IoatConfig,
    /// Application cost model.
    pub costs: DataCenterCosts,
    /// Measurement window. Client starts are staggered across the warmup.
    pub window: ExperimentWindow,
    /// Zipf exponent of the document popularity distribution.
    pub alpha: f64,
    /// Documents in the catalog.
    pub catalog_files: usize,
    /// Web servers each proxy holds persistent connections to.
    pub webs_per_proxy: usize,
    /// Client think time between a completed response and the next
    /// request.
    pub think: SimDuration,
    /// One-way client ↔ proxy latency (clients are emulated, not
    /// simulated hosts, so their access network is a fixed delay).
    pub client_latency: SimDuration,
    /// Workload seed (catalog sizes + Zipf draws).
    pub seed: u64,
    /// Hardware era every server node is calibrated against.
    pub profile: ioat_core::calibration::NodeProfile,
    /// Fabric fault injection: link flaps and switch crashes (inert by
    /// default).
    pub faults: FabricFaultSpec,
    /// Proxy admission budget: a client request arriving at a proxy that
    /// already has this many transactions in flight is shed before any
    /// proxy work, and the client retries after a think time. `None`
    /// admits everything.
    pub admit_budget: Option<u32>,
    /// Hedged-retry policy on the proxy → web request path: when a
    /// response is still outstanding at `deadline(attempt)`, the proxy
    /// sends a duplicate round-tagged request (up to `max_retries`
    /// hedges, backoff-spaced); the first response wins and stale ones
    /// are discarded by generation. `None` never hedges.
    pub hedge: Option<RetryPolicy>,
}

impl ScaleConfig {
    /// A fat-tree(k) datacenter at oversubscription `oversub` with
    /// `clients` emulated clients. Defaults: Zipf(0.9) over 10 K
    /// documents of 8 K median, 4 webs per proxy, 20 ms think, 200 µs
    /// client latency, quick window.
    pub fn fat_tree(k: usize, oversub: f64, clients: usize, ioat: IoatConfig) -> Self {
        ScaleConfig {
            spec: TopologySpec::FatTree { k },
            fabric: FabricParams {
                oversubscription: oversub,
                seed: 0xFA8,
                ..FabricParams::gige()
            },
            clients,
            ioat,
            costs: DataCenterCosts::default(),
            window: ExperimentWindow::quick(),
            alpha: 0.9,
            catalog_files: 10_000,
            webs_per_proxy: 4,
            think: SimDuration::from_millis(20),
            client_latency: SimDuration::from_micros(200),
            seed: 0xD1CE,
            profile: ioat_core::calibration::NodeProfile::Testbed2007,
            faults: FabricFaultSpec::none(),
            admit_budget: None,
            hedge: None,
        }
    }

    /// A tiny configuration for unit tests: fat-tree(4), 48 clients,
    /// short think so several requests complete per client.
    pub fn quick_test(ioat: IoatConfig) -> Self {
        ScaleConfig {
            clients: 48,
            think: SimDuration::from_millis(2),
            catalog_files: 500,
            ..Self::fat_tree(4, 1.0, 48, ioat)
        }
    }

    /// Socket options used on the server tier: all offloads on, but
    /// moderate 64 K buffers so a million multiplexed clients cannot pile
    /// unbounded bytes into any single connection window.
    pub(crate) fn opts() -> SocketOpts {
        SocketOpts {
            sndbuf: 64 * 1024,
            rcvbuf: 64 * 1024,
            read_size: 16 * 1024,
            ..SocketOpts::tuned()
        }
    }
}

/// Outcome of a fabric-scale run. All statistics are streaming — their
/// memory footprint is independent of `clients` and of the request count.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScaleResult {
    /// Transactions per second over the measurement window.
    pub tps: f64,
    /// Transactions completed inside the window.
    pub completed: u64,
    /// Mean end-to-end client latency, µs.
    pub latency_mean_us: f64,
    /// Median latency, µs (log-scale histogram bucket upper bound).
    pub latency_p50_us: u64,
    /// 99th-percentile latency, µs.
    pub latency_p99_us: u64,
    /// Worst observed latency, µs.
    pub latency_max_us: f64,
    /// Mean CPU utilization across the proxy tier in the window.
    pub proxy_cpu: f64,
    /// Mean CPU utilization across the web tier in the window.
    pub web_cpu: f64,
    /// Frames tail-dropped by switch buffers over the whole run.
    pub tail_drops: u64,
    /// Frames dropped with no surviving path (flapped links / crashed
    /// switches) over the whole run.
    pub route_blackholes: u64,
    /// Requests shed by proxy admission control over the whole run.
    pub shed: u64,
    /// Hedged duplicate requests the proxy tier sent over the whole run.
    pub hedges: u64,
    /// Mean proxy-tier core *occupancy* in the window: busy-poll spin
    /// counts as occupied, so under polling modes this exceeds
    /// [`ScaleResult::proxy_cpu`] by the cores burned spinning.
    pub proxy_occupancy: f64,
    /// Simulator events executed by the end of the window.
    pub sim_events: u64,
}

/// Per (proxy, subset-slot) request-path endpoints: the proxy-side
/// socket (for compute charging) and the request sender toward the
/// chosen web server. Request metadata is `(slot, generation, size)`.
type ReqSlot = Option<(ioat_netsim::Socket, MsgSender<(u32, u32, u64)>)>;

/// Shared run state: the client slab plus streaming statistics. One
/// allocation each, fixed size for the whole run.
struct Shared {
    n_proxies: usize,
    webs_per_proxy: usize,
    costs: DataCenterCosts,
    think: SimDuration,
    client_latency: SimDuration,
    admit_budget: Option<u32>,
    hedge: Option<RetryPolicy>,
    trace: RefCell<ZipfTrace>,
    /// Slab of per-client request start instants, indexed by client slot.
    started: RefCell<Vec<SimTime>>,
    /// Per-client request generation: responses and hedge deadlines carry
    /// the generation they were fired under; completion bumps it, which
    /// instantly stales every outstanding duplicate.
    generation: RefCell<Vec<u32>>,
    /// Transactions currently admitted per proxy, for admission control.
    in_flight: RefCell<Vec<u32>>,
    shed: Cell<u64>,
    hedges: Cell<u64>,
    req: RefCell<Vec<ReqSlot>>,
    completed: RefCell<Counter>,
    latency_hist: RefCell<Histogram>,
    latency_sum: RefCell<Summary>,
}

/// One closed-loop client iteration: draw a document, cross the client
/// access delay, pass (or fail) proxy admission, run the request path.
fn fire(shared: &Rc<Shared>, sim: &mut ioat_simcore::Sim, slot: u32) {
    let req = shared.trace.borrow_mut().next_request();
    shared.started.borrow_mut()[slot as usize] = sim.now();
    let p = slot as usize % shared.n_proxies;
    let idx = p * shared.webs_per_proxy + req.file_id as usize % shared.webs_per_proxy;
    let sh = Rc::clone(shared);
    sim.schedule(shared.client_latency, move |sim| {
        // Deterministic load shedding: over budget, the request is turned
        // away before any proxy work and the client backs off one think
        // time — the shed path costs the proxy nothing, which is the
        // point of admission control.
        if let Some(budget) = sh.admit_budget {
            if sh.in_flight.borrow()[p] >= budget {
                sh.shed.set(sh.shed.get() + 1);
                let sh2 = Rc::clone(&sh);
                sim.schedule(sh.think, move |sim| fire(&sh2, sim, slot));
                return;
            }
        }
        sh.in_flight.borrow_mut()[p] += 1;
        let generation = sh.generation.borrow()[slot as usize];
        send_attempt(&sh, sim, slot, generation, 0, idx, req.size);
    });
}

/// One transmission of a client's request (attempt 0 is the original,
/// attempts ≥ 1 are hedges): charge the proxy compute, send the
/// generation-tagged request, and — with a hedge policy installed — arm
/// the next hedge deadline, which fires only if the generation is still
/// outstanding.
fn send_attempt(
    shared: &Rc<Shared>,
    sim: &mut ioat_simcore::Sim,
    slot: u32,
    generation: u32,
    attempt: u32,
    idx: usize,
    size: u64,
) {
    let sock = {
        let senders = shared.req.borrow();
        senders[idx].as_ref().expect("sender installed").0.clone()
    };
    // A hedge re-sends an already-parsed request: forward cost only.
    let cost = if attempt == 0 {
        shared.costs.proxy_parse + shared.costs.proxy_forward
    } else {
        shared.costs.proxy_forward
    };
    let sh = Rc::clone(shared);
    sock.compute(sim, cost, move |sim| {
        {
            let senders = sh.req.borrow();
            let (_, sender) = senders[idx].as_ref().expect("sender installed");
            sender.send(sim, REQUEST_WIRE_BYTES, (slot, generation, size));
        }
        if let Some(policy) = sh.hedge {
            if attempt < policy.max_retries {
                let sh2 = Rc::clone(&sh);
                sim.schedule(policy.deadline(attempt), move |sim| {
                    if sh2.generation.borrow()[slot as usize] == generation {
                        sh2.hedges.set(sh2.hedges.get() + 1);
                        send_attempt(&sh2, sim, slot, generation, attempt + 1, idx, size);
                    }
                });
            }
        }
    });
}

/// Runs the fabric-scale scenario.
pub fn run(cfg: &ScaleConfig) -> ScaleResult {
    let topo = Topology::new(cfg.spec);
    let hosts = topo.hosts();
    assert!(hosts >= 2, "need at least one proxy and one web host");
    assert!(cfg.clients > 0, "need at least one client");
    assert!(cfg.webs_per_proxy > 0, "need at least one web per proxy");
    let n_proxies = hosts / 2;
    let n_webs = hosts - n_proxies;
    let f = cfg.webs_per_proxy.min(n_webs);

    let mut cluster = Cluster::new(cfg.seed);
    let fabric = cluster.install_fabric(cfg.spec, cfg.fabric);
    if cfg.faults.is_active() {
        let plan = cfg.faults.plan(fabric.topology(), &cfg.window);
        cluster.set_faults(&plan);
    }

    let mut nodes: Vec<NodeHandle> = Vec::with_capacity(hosts);
    let proxies: Vec<NodeHandle> = (0..n_proxies)
        .map(|p| {
            let h = cluster.add_node(NodeConfig::profiled(
                &format!("p{p}"),
                cfg.ioat,
                cfg.profile,
            ));
            cluster.attach_fabric_host(h, p);
            nodes.push(h);
            h
        })
        .collect();
    let webs: Vec<NodeHandle> = (0..n_webs)
        .map(|w| {
            let h = cluster.add_node(NodeConfig::profiled(
                &format!("w{w}"),
                cfg.ioat,
                cfg.profile,
            ));
            cluster.attach_fabric_host(h, n_proxies + w);
            nodes.push(h);
            h
        })
        .collect();

    let mut rng = SimRng::seed_from(cfg.seed);
    let catalog = FileCatalog::web_content(cfg.catalog_files, 8 * 1024, &mut rng);
    let trace = ZipfTrace::new(catalog, cfg.alpha, rng.fork());

    let mut completed = Counter::new();
    completed.begin_window(cfg.window.from());
    let shared = Rc::new(Shared {
        n_proxies,
        webs_per_proxy: f,
        costs: cfg.costs,
        think: cfg.think,
        client_latency: cfg.client_latency,
        admit_budget: cfg.admit_budget,
        hedge: cfg.hedge,
        trace: RefCell::new(trace),
        started: RefCell::new(vec![SimTime::ZERO; cfg.clients]),
        generation: RefCell::new(vec![0; cfg.clients]),
        in_flight: RefCell::new(vec![0; n_proxies]),
        shed: Cell::new(0),
        hedges: Cell::new(0),
        req: RefCell::new((0..n_proxies * f).map(|_| None).collect()),
        completed: RefCell::new(completed),
        latency_hist: RefCell::new(Histogram::new()),
        latency_sum: RefCell::new(Summary::new()),
    });

    let opts = ScaleConfig::opts();
    for (p, &proxy) in proxies.iter().enumerate() {
        for j in 0..f {
            let w = (p * f + j) % n_webs;
            let (p_sock, w_sock) = cluster.open_on_fabric(proxy, p, webs[w], n_proxies + w, opts);

            // Responses web → proxy → (after the access delay) client:
            // relay on the proxy, complete the transaction, think, fire
            // the client's next request.
            let sh = Rc::clone(&shared);
            let p_sock2 = p_sock.clone();
            let respond = msg::channel(
                w_sock.clone(),
                p_sock.clone(),
                move |sim, (slot, generation): (u32, u32)| {
                    // A response for a superseded generation is a stale
                    // hedge duplicate — the transaction already
                    // completed; discard it before any proxy work.
                    if sh.generation.borrow()[slot as usize] != generation {
                        return;
                    }
                    sh.generation.borrow_mut()[slot as usize] += 1;
                    sh.in_flight.borrow_mut()[slot as usize % sh.n_proxies] -= 1;
                    let sh2 = Rc::clone(&sh);
                    p_sock2.compute(sim, sh.costs.proxy_relay, move |sim| {
                        let sh3 = Rc::clone(&sh2);
                        sim.schedule(sh2.client_latency, move |sim| {
                            let now = sim.now();
                            let lat = now - sh3.started.borrow()[slot as usize];
                            let us = lat.as_nanos() / 1_000;
                            sh3.completed.borrow_mut().add_at(now, 1);
                            sh3.latency_hist.borrow_mut().record(us.max(1));
                            sh3.latency_sum.borrow_mut().add(us as f64);
                            let sh4 = Rc::clone(&sh3);
                            sim.schedule(sh3.think, move |sim| fire(&sh4, sim, slot));
                        });
                    });
                },
            );
            let respond = Rc::new(respond);

            // Requests proxy → web: serve the document, send it back with
            // the request's generation tag.
            let costs = cfg.costs;
            let w_sock2 = w_sock.clone();
            let request = msg::channel(
                p_sock.clone(),
                w_sock,
                move |sim, (slot, generation, size): (u32, u32, u64)| {
                    let rsp = Rc::clone(&respond);
                    w_sock2.compute(sim, costs.web_serve(size), move |sim| {
                        rsp.send(sim, size, (slot, generation));
                    });
                },
            );
            shared.req.borrow_mut()[p * f + j] = Some((p_sock, request));
        }
    }

    // Stagger client starts across the warmup so the window opens at
    // steady state instead of on a synchronized thundering herd.
    let warmup_ns = cfg.window.warmup.as_nanos().max(1);
    for slot in 0..cfg.clients as u32 {
        let at = SimDuration::from_nanos(warmup_ns * u64::from(slot) / cfg.clients as u64);
        let sh = Rc::clone(&shared);
        cluster
            .sim_mut()
            .schedule(at, move |sim| fire(&sh, sim, slot));
    }

    let (from, to) = cfg.window.execute(&mut cluster, &nodes);
    let elapsed = (to - from).as_secs_f64();
    let tier_cpu = |handles: &[NodeHandle]| {
        handles
            .iter()
            .map(|&h| cluster.stack(h).borrow().cpu_utilization(from, to))
            .sum::<f64>()
            / handles.len() as f64
    };
    let proxy_occupancy = proxies
        .iter()
        .map(|&h| cluster.stack(h).borrow().cpu_occupancy(from, to))
        .sum::<f64>()
        / proxies.len() as f64;
    let hist = shared.latency_hist.borrow();
    let sum = shared.latency_sum.borrow();
    let completed = shared.completed.borrow().window_total();
    ScaleResult {
        tps: completed as f64 / elapsed,
        completed,
        latency_mean_us: sum.mean(),
        latency_p50_us: hist.quantile(0.50),
        latency_p99_us: hist.quantile(0.99),
        latency_max_us: sum.max().unwrap_or(0.0),
        proxy_cpu: tier_cpu(&proxies),
        web_cpu: tier_cpu(&webs),
        tail_drops: fabric.tail_drops(),
        route_blackholes: fabric.blackholes(),
        shed: shared.shed.get(),
        hedges: shared.hedges.get(),
        proxy_occupancy,
        sim_events: cluster.sim().events_executed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_run_completes_with_clean_audits() {
        let (result, violations) =
            ioat_guard::with_audit(|| run(&ScaleConfig::quick_test(IoatConfig::disabled())));
        let r = result.expect("run completes");
        assert!(
            violations.is_empty(),
            "audits must be clean: {violations:?}"
        );
        assert!(r.completed > 0, "clients must complete transactions");
        assert!(r.tps > 0.0);
        assert!(r.latency_p50_us > 0);
        assert!(r.latency_p99_us >= r.latency_p50_us);
        assert!(r.latency_max_us >= r.latency_p99_us as f64 / 2.0);
        assert!(r.proxy_cpu > 0.0 && r.proxy_cpu <= 1.0);
        assert!(r.web_cpu > 0.0 && r.web_cpu <= 1.0);
        assert!(r.sim_events > 0);
    }

    #[test]
    fn scale_runs_are_deterministic() {
        let cfg = ScaleConfig::quick_test(IoatConfig::full());
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "same seed must reproduce bit-identical results");
    }

    #[test]
    fn ioat_reduces_server_cpu_per_transaction() {
        let mut cfg = ScaleConfig::quick_test(IoatConfig::disabled());
        cfg.clients = 96;
        let non = run(&cfg);
        cfg.ioat = IoatConfig::full();
        let ioat = run(&cfg);
        let non_per = (non.proxy_cpu + non.web_cpu) / non.tps;
        let ioat_per = (ioat.proxy_cpu + ioat.web_cpu) / ioat.tps;
        assert!(
            ioat_per < non_per,
            "I/OAT {ioat_per:.3e} vs non {non_per:.3e} CPU/txn"
        );
    }

    #[test]
    fn fabric_faults_degrade_and_the_run_recovers() {
        let mut cfg = ScaleConfig::quick_test(IoatConfig::disabled());
        cfg.faults = FabricFaultSpec {
            flaps_per_link: 4,
            crashed_switches: 2,
            ..FabricFaultSpec::none()
        };
        let (result, violations) = ioat_guard::with_audit(|| run(&cfg));
        let r = result.expect("faulted run completes");
        assert!(
            violations.is_empty(),
            "audits must stay clean under faults: {violations:?}"
        );
        assert!(
            r.route_blackholes > 0,
            "flaps + crashed switches must blackhole some frames"
        );
        assert!(
            r.completed > 0,
            "transactions must keep completing through failover"
        );
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let mut cfg = ScaleConfig::quick_test(IoatConfig::full());
        cfg.faults = FabricFaultSpec {
            flaps_per_link: 2,
            crashed_switches: 1,
            ..FabricFaultSpec::none()
        };
        cfg.admit_budget = Some(2);
        cfg.hedge = Some(RetryPolicy {
            timeout: SimDuration::from_millis(5),
            ..RetryPolicy::default()
        });
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "same faulted config must reproduce bit-identically");
    }

    #[test]
    fn more_flaps_blackhole_at_least_as_many_frames() {
        // The flap model draws each link's windows sequentially from one
        // dedicated stream, so n flaps' schedule is a prefix of n+1's —
        // degradation is structurally monotone in the flap rate.
        let mut prev = 0;
        for flaps in [0u32, 3, 9] {
            let mut cfg = ScaleConfig::quick_test(IoatConfig::disabled());
            cfg.faults = FabricFaultSpec {
                flaps_per_link: flaps,
                ..FabricFaultSpec::none()
            };
            let r = run(&cfg);
            assert!(
                r.route_blackholes >= prev,
                "blackholes must not decrease with flap rate \
                 ({flaps} flaps: {} < {prev})",
                r.route_blackholes
            );
            prev = r.route_blackholes;
        }
        assert!(prev > 0, "the densest flap schedule must blackhole frames");
    }

    #[test]
    fn tiny_admission_budget_sheds_and_caps_in_flight_work() {
        let mut cfg = ScaleConfig::quick_test(IoatConfig::disabled());
        let open = run(&cfg);
        cfg.admit_budget = Some(1);
        let (result, violations) = ioat_guard::with_audit(|| run(&cfg));
        let capped = result.expect("capped run completes");
        assert!(
            violations.is_empty(),
            "audits must stay clean under shedding: {violations:?}"
        );
        assert!(capped.shed > 0, "a budget of 1 must shed requests");
        assert!(
            capped.completed > 0,
            "admitted requests must still complete"
        );
        assert!(
            capped.completed < open.completed,
            "shedding must cost throughput ({} vs {})",
            capped.completed,
            open.completed
        );
        assert_eq!(open.shed, 0, "no budget, nothing shed");
    }

    #[test]
    fn hedged_retries_fire_during_an_outage_and_stale_wins_are_discarded() {
        let mut cfg = ScaleConfig::quick_test(IoatConfig::disabled());
        cfg.faults = FabricFaultSpec {
            crashed_switches: 2,
            ..FabricFaultSpec::none()
        };
        cfg.hedge = Some(RetryPolicy {
            timeout: SimDuration::from_millis(4),
            max_retries: 2,
            backoff: 2.0,
        });
        let (result, violations) = ioat_guard::with_audit(|| run(&cfg));
        let r = result.expect("hedged run completes");
        assert!(
            violations.is_empty(),
            "audits must stay clean under hedging: {violations:?}"
        );
        assert!(
            r.hedges > 0,
            "outage-lengthened requests must trip the hedge deadline"
        );
        assert!(r.completed > 0, "hedged transactions must complete");
    }
}
