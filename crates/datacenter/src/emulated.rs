//! Fig. 9 — emulated clients inside the data-center.
//!
//! §5.2.3: the proxy node acts as the client, firing requests at the web
//! server over the Testbed-1 network; both nodes have the I/OAT
//! capability. The file size is fixed at 16 K and the number of client
//! threads sweeps 1 → 256. The paper reports the *client-side* CPU: with
//! I/OAT the client receives responses more cheaply, so it sustains up to
//! 4× as many threads before its CPU saturates, and peaks ≈ 16 % higher
//! in TPS.

use crate::costs::{DataCenterCosts, REQUEST_WIRE_BYTES};
use crate::msg::{self, MsgSender};
use crate::workload::Request;
use ioat_core::cluster::{Cluster, NodeConfig};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::{IoatConfig, SocketOpts};
use ioat_simcore::{Counter, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of an emulated-clients run.
#[derive(Debug, Clone, Copy)]
pub struct EmulatedConfig {
    /// Client threads on the proxy-acting-as-client node.
    pub threads: usize,
    /// Document size (16 K in the paper).
    pub file_size: u64,
    /// GigE port pairs between the two nodes.
    pub ports: usize,
    /// I/OAT features on both nodes.
    pub ioat: IoatConfig,
    /// Application cost model.
    pub costs: DataCenterCosts,
    /// Measurement window.
    pub window: ExperimentWindow,
}

impl EmulatedConfig {
    /// The paper's configuration at a given thread count. The node firing
    /// the requests runs the full proxy request path per transaction
    /// (§5.2.3 uses the proxy tier as the client), so its per-request
    /// processing is substantial.
    pub fn paper(threads: usize, ioat: IoatConfig) -> Self {
        EmulatedConfig {
            threads,
            file_size: 16 * 1024,
            ports: ioat_core::calibration::TESTBED_PORTS,
            ioat,
            costs: DataCenterCosts {
                client_process: ioat_simcore::SimDuration::from_micros(140),
                ..DataCenterCosts::default()
            },
            window: ExperimentWindow::standard(),
        }
    }

    /// Small fast configuration for unit tests.
    pub fn quick_test(threads: usize, ioat: IoatConfig) -> Self {
        EmulatedConfig {
            threads,
            file_size: 16 * 1024,
            ports: 2,
            ioat,
            costs: DataCenterCosts::default(),
            window: ExperimentWindow::quick(),
        }
    }
}

/// Outcome of an emulated-clients run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EmulatedResult {
    /// Transactions per second.
    pub tps: f64,
    /// Client-node CPU utilization — the metric Fig. 9 plots.
    pub client_cpu: f64,
    /// Web-server CPU utilization.
    pub server_cpu: f64,
}

/// Runs the emulated-clients scenario.
pub fn run(cfg: &EmulatedConfig) -> EmulatedResult {
    assert!(cfg.threads > 0, "need at least one thread");
    let mut cluster = Cluster::new(0xE9);
    let client = cluster.add_node(NodeConfig::testbed("proxy-client", cfg.ioat));
    let server = cluster.add_node(NodeConfig::testbed("web-server", cfg.ioat));
    let opts = SocketOpts::tuned();
    let pairs = cluster.connect_ports(client, server, cfg.ports, opts.coalescing);

    let mut completed = Counter::new();
    completed.begin_window(cfg.window.from());
    let completed = Rc::new(RefCell::new(completed));
    let costs = cfg.costs;
    let size = cfg.file_size;

    for t in 0..cfg.threads {
        let pair = pairs[t % pairs.len()];
        let (c_sock, s_sock) = cluster.open(client, server, pair, opts);

        let req_sender: Rc<RefCell<Option<MsgSender<Request>>>> = Rc::new(RefCell::new(None));

        // Responses server → client.
        let done = Rc::clone(&completed);
        let rs = Rc::clone(&req_sender);
        let c_sock2 = c_sock.clone();
        let respond = msg::channel(s_sock.clone(), c_sock.clone(), move |sim, _m: ()| {
            done.borrow_mut().completed_add(sim.now());
            let rs2 = Rc::clone(&rs);
            c_sock2.compute(sim, costs.client_process, move |sim| {
                if let Some(sender) = rs2.borrow().as_ref() {
                    sender.send(sim, REQUEST_WIRE_BYTES, Request { file_id: 0, size });
                }
            });
        });
        let respond = Rc::new(respond);

        // Requests client → server.
        let rsp = Rc::clone(&respond);
        let s_sock2 = s_sock.clone();
        let request = msg::channel(c_sock.clone(), s_sock, move |sim, req: Request| {
            let rsp2 = Rc::clone(&rsp);
            s_sock2.compute(sim, costs.web_serve(req.size), move |sim| {
                rsp2.send(sim, req.size, ());
            });
        });
        *req_sender.borrow_mut() = Some(request);

        let rs = Rc::clone(&req_sender);
        cluster
            .sim_mut()
            .schedule(SimDuration::from_micros(3 * t as u64), move |sim| {
                if let Some(sender) = rs.borrow().as_ref() {
                    sender.send(sim, REQUEST_WIRE_BYTES, Request { file_id: 0, size });
                }
            });
    }

    let (from, to) = cfg.window.execute(&mut cluster, &[client, server]);
    let elapsed = (to - from).as_secs_f64();
    let result = {
        let c = cluster.stack(client).borrow();
        let srv = cluster.stack(server).borrow();
        EmulatedResult {
            tps: completed.borrow().window_total() as f64 / elapsed,
            client_cpu: c.cpu_utilization(from, to),
            server_cpu: srv.cpu_utilization(from, to),
        }
    };
    result
}

trait CounterExt {
    fn completed_add(&mut self, now: SimTime);
}

impl CounterExt for Counter {
    fn completed_add(&mut self, now: SimTime) {
        self.add_at(now, 1);
    }
}

/// The paper's thread sweep (1 → 256, powers of two).
pub fn paper_thread_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tps_grows_with_threads_then_saturates() {
        let few = run(&EmulatedConfig::quick_test(2, IoatConfig::disabled()));
        let many = run(&EmulatedConfig::quick_test(32, IoatConfig::disabled()));
        assert!(
            many.tps > 2.0 * few.tps,
            "32 threads {:.0} vs 2 threads {:.0}",
            many.tps,
            few.tps
        );
        assert!(many.client_cpu > few.client_cpu);
    }

    #[test]
    fn ioat_client_spends_less_cpu_per_transaction() {
        let non = run(&EmulatedConfig::quick_test(16, IoatConfig::disabled()));
        let ioat = run(&EmulatedConfig::quick_test(16, IoatConfig::full()));
        let non_per_txn = non.client_cpu / non.tps;
        let ioat_per_txn = ioat.client_cpu / ioat.tps;
        assert!(
            ioat_per_txn < non_per_txn,
            "I/OAT {ioat_per_txn:.3e} vs non {non_per_txn:.3e} CPU/txn"
        );
    }
}
