//! Runtime invariant auditing for the simulator.
//!
//! The paper's conclusions rest on conservation arguments: every byte a
//! sender injects is delivered, dropped by a fault, or still in flight;
//! every CPU cycle lands in exactly one Fig. 7 category. This crate is
//! the machinery that lets each subsystem *check* those identities at
//! runtime instead of trusting them:
//!
//! * [`check`] — the reporting primitive. Inside an audit scope a failed
//!   check becomes a structured [`AuditViolation`] (component, invariant,
//!   sim-time, counter detail) collected for the caller; outside a scope
//!   it panics in debug builds (audits are always-on under `cargo test`)
//!   and is silent in release builds, so production sweeps pay nothing
//!   unless `--audit` is given.
//! * [`with_audit`] / [`with_audit_budget`] — run a closure under an
//!   audit scope, catching panics and returning collected violations.
//!   The optional *event budget* is a deterministic watchdog: components
//!   that construct a [`Sim`] clamp their event limit to it (see
//!   [`event_budget`]), so a wedged job dies with a reproducible "event
//!   limit exceeded" panic after a fixed number of events, never a
//!   wall-clock timeout.
//! * [`Audit`] + [`AuditRegistry`] — how long-lived components (host
//!   stacks, DMA engines) plug their end-of-run self-checks into the
//!   harness that owns them.
//!
//! The scope is process-global and serialized: figure jobs inside one
//! scope may fan out across sweep-pool worker threads, and their audits
//! must all land in the same collection. Concurrent [`with_audit`] calls
//! (e.g. parallel tests) therefore queue on an internal lock; scopes must
//! not nest.
//!
//! Audits are *pure reads over counters at quiescent points* — they run
//! after `Sim::run_until` returns and never schedule events or mutate
//! state, so enabling them cannot perturb results: rows are bit-identical
//! with and without `--audit`.

use ioat_simcore::{Sim, SimTime};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One failed invariant check, as data rather than a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The component that failed its check (e.g. `stack:server`).
    pub component: String,
    /// The invariant's stable name (e.g. `frame-conservation`).
    pub invariant: &'static str,
    /// Simulation time at which the audit ran.
    pub at: SimTime,
    /// Human-readable counter deltas, e.g. `arrived=10 processed=9 pending=0`.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit violation [{}] {} at {}: {}",
            self.component, self.invariant, self.at, self.detail
        )
    }
}

/// An end-of-run self-check a component exposes to its owning harness.
///
/// Implementations call [`check`] (directly or via free functions) for
/// each identity they maintain; routing — collect vs. debug-panic vs.
/// no-op — is the scope's concern, not theirs.
pub trait Audit {
    /// Diagnostic component name (`stack:server`, `dma:web`, ...).
    fn component(&self) -> &str;
    /// Runs every check this component maintains, as of sim-time `now`.
    fn audit(&self, now: SimTime);
}

/// Closure adapter so harnesses can register audits without a newtype.
struct FnAudit<F: Fn(SimTime)> {
    component: String,
    f: F,
}

impl<F: Fn(SimTime)> Audit for FnAudit<F> {
    fn component(&self) -> &str {
        &self.component
    }
    fn audit(&self, now: SimTime) {
        (self.f)(now)
    }
}

/// An ordered collection of [`Audit`]s owned by a harness (one per
/// cluster). Registration order is fixed, so violation order — and with
/// it report output — is deterministic.
#[derive(Default)]
pub struct AuditRegistry {
    entries: Vec<Box<dyn Audit>>,
}

impl AuditRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a boxed audit.
    pub fn register(&mut self, audit: Box<dyn Audit>) {
        self.entries.push(audit);
    }

    /// Registers a closure as an audit under `component`.
    pub fn register_fn(&mut self, component: impl Into<String>, f: impl Fn(SimTime) + 'static) {
        self.entries.push(Box::new(FnAudit {
            component: component.into(),
            f,
        }));
    }

    /// Number of registered audits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs every registered audit in registration order.
    pub fn run(&self, now: SimTime) {
        for a in &self.entries {
            a.audit(now);
        }
    }
}

impl std::fmt::Debug for AuditRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.entries.iter().map(|a| a.component()).collect();
        f.debug_struct("AuditRegistry")
            .field("entries", &names)
            .finish()
    }
}

/// Serializes audit scopes: one scope at a time process-wide.
static SCOPE: Mutex<()> = Mutex::new(());
/// Violations collected by the currently active scope.
static VIOLATIONS: Mutex<Vec<AuditViolation>> = Mutex::new(Vec::new());
/// Whether a scope is active (readable from any worker thread).
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Event budget of the active scope; 0 means "no budget set".
static BUDGET: AtomicU64 = AtomicU64::new(0);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking audit scope must not wedge every later scope.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// True while a [`with_audit`] scope is active anywhere in the process.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// True when audits should run at all: inside a scope, or always in
/// debug builds. Callers gate the (cheap, end-of-run) audit computation
/// on this so release-mode sweeps without `--audit` pay nothing.
pub fn enabled() -> bool {
    is_active() || cfg!(debug_assertions)
}

/// The active scope's deterministic watchdog: a cap on simulator events.
/// Components constructing a [`Sim`] clamp their event limit to this, so
/// a wedged job panics reproducibly instead of spinning forever.
pub fn event_budget() -> Option<u64> {
    match BUDGET.load(Ordering::Acquire) {
        0 => None,
        b => Some(b),
    }
}

/// Records a violation into the active scope (no-op without one).
pub fn submit(v: AuditViolation) {
    if is_active() {
        lock(&VIOLATIONS).push(v);
    }
}

/// Violations collected by the active scope so far (0 without one).
/// Pairs with [`violations_since`] so a harness can surface the
/// violations its own audit pass just produced (e.g. as trace instants).
pub fn violation_count() -> usize {
    if is_active() {
        lock(&VIOLATIONS).len()
    } else {
        0
    }
}

/// Clones the violations collected after index `since` (empty without an
/// active scope).
pub fn violations_since(since: usize) -> Vec<AuditViolation> {
    if is_active() {
        lock(&VIOLATIONS)
            .get(since..)
            .map(<[AuditViolation]>::to_vec)
            .unwrap_or_default()
    } else {
        Vec::new()
    }
}

/// The reporting primitive every audit identity goes through.
///
/// When `ok` is false: inside a scope the violation is collected; outside
/// a scope debug builds panic with the violation text (audits are
/// always-on under `cargo test`) and release builds stay silent. `detail`
/// is only evaluated on failure.
pub fn check(
    component: &str,
    invariant: &'static str,
    at: SimTime,
    ok: bool,
    detail: impl FnOnce() -> String,
) {
    if ok {
        return;
    }
    let v = AuditViolation {
        component: component.to_string(),
        invariant,
        at,
        detail: detail(),
    };
    if is_active() {
        submit(v);
    } else if cfg!(debug_assertions) && !std::thread::panicking() {
        panic!("{v}");
    }
}

/// Runs `f` under an audit scope with a sim-event budget, catching
/// panics. Returns `f`'s outcome (the panic payload on unwind) and every
/// violation collected while the scope was active.
pub fn with_audit_budget<T>(
    budget: Option<u64>,
    f: impl FnOnce() -> T,
) -> (std::thread::Result<T>, Vec<AuditViolation>) {
    let _scope = lock(&SCOPE);
    lock(&VIOLATIONS).clear();
    BUDGET.store(budget.unwrap_or(0), Ordering::Release);
    ACTIVE.store(true, Ordering::Release);
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    ACTIVE.store(false, Ordering::Release);
    BUDGET.store(0, Ordering::Release);
    let violations = std::mem::take(&mut *lock(&VIOLATIONS));
    (result, violations)
}

/// [`with_audit_budget`] without an event budget.
pub fn with_audit<T>(f: impl FnOnce() -> T) -> (std::thread::Result<T>, Vec<AuditViolation>) {
    with_audit_budget(None, f)
}

/// Turns a caught panic payload into a supervisor-facing reason string.
/// The event-limit watchdog panic is classified as `wedged`; everything
/// else as `panicked`.
pub fn failure_reason(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    if msg.contains("event limit") {
        format!("wedged: {msg}")
    } else {
        format!("panicked: {msg}")
    }
}

/// Queue-health audit for the event engine: every event ever scheduled is
/// accounted for as fired, cancelled, or still live — the identity that
/// would have caught the PR 3 `events_pending()` and PR 4 tombstone bugs
/// at the first affected run instead of in ad-hoc regression tests.
pub fn audit_sim(sim: &Sim) {
    let scheduled = sim.events_scheduled();
    let executed = sim.events_executed();
    let cancelled = sim.events_cancelled();
    let live = sim.events_pending() as u64;
    check(
        "simcore",
        "queue-health: scheduled = fired + cancelled + live",
        sim.now(),
        scheduled == executed + cancelled + live,
        || {
            format!(
                "scheduled={scheduled} fired={executed} cancelled={cancelled} live={live} \
                 (imbalance {})",
                scheduled as i128 - (executed + cancelled + live) as i128
            )
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(detail: &str) -> AuditViolation {
        AuditViolation {
            component: "test".into(),
            invariant: "unit",
            at: SimTime::ZERO,
            detail: detail.into(),
        }
    }

    #[test]
    fn passing_checks_are_silent_everywhere() {
        check("c", "always-true", SimTime::ZERO, true, || unreachable!());
        let (r, v) = with_audit(|| {
            check("c", "always-true", SimTime::ZERO, true, || unreachable!());
            7
        });
        assert_eq!(r.unwrap(), 7);
        assert!(v.is_empty());
    }

    #[test]
    fn scope_collects_violations_instead_of_panicking() {
        let (r, v) = with_audit(|| {
            check(
                "stack:a",
                "byte-conservation",
                SimTime::from_nanos(5),
                false,
                || "sent=10 got=9".into(),
            );
            assert_eq!(violation_count(), 1);
            submit(violation("direct"));
            let fresh = violations_since(1);
            assert_eq!(fresh.len(), 1);
            assert_eq!(fresh[0].detail, "direct");
            42
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(violation_count(), 0, "no active scope outside with_audit");
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].component, "stack:a");
        assert_eq!(v[0].invariant, "byte-conservation");
        assert_eq!(v[0].at, SimTime::from_nanos(5));
        assert_eq!(v[1].detail, "direct");
        assert!(v[0].to_string().contains("byte-conservation"));
    }

    #[test]
    fn scope_catches_panics_and_still_returns_violations() {
        let (r, v) = with_audit(|| {
            submit(violation("before the crash"));
            panic!("boom");
        });
        let payload = r.expect_err("closure panicked");
        assert_eq!(failure_reason(payload.as_ref()), "panicked: boom");
        assert_eq!(v.len(), 1);
        assert!(!is_active(), "scope deactivated after a panic");
    }

    #[test]
    fn event_budget_is_visible_only_inside_its_scope() {
        assert_eq!(event_budget(), None);
        let (r, _) = with_audit_budget(Some(5_000), event_budget);
        assert_eq!(r.unwrap(), Some(5_000));
        assert_eq!(event_budget(), None);
    }

    #[test]
    fn failure_reason_classifies_watchdog_panics_as_wedged() {
        let wedged: Box<dyn std::any::Any + Send> =
            Box::new("event limit 100 exceeded at t=5ns — possible event loop".to_string());
        assert!(failure_reason(wedged.as_ref()).starts_with("wedged:"));
        let plain: Box<dyn std::any::Any + Send> = Box::new("index out of bounds");
        assert!(failure_reason(plain.as_ref()).starts_with("panicked:"));
        let opaque: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert!(failure_reason(opaque.as_ref()).contains("non-string"));
    }

    #[test]
    fn registry_runs_audits_in_registration_order() {
        let mut reg = AuditRegistry::new();
        assert!(reg.is_empty());
        reg.register_fn("first", |now| {
            check("first", "ordered", now, false, || "a".into());
        });
        reg.register_fn("second", |now| {
            check("second", "ordered", now, false, || "b".into());
        });
        assert_eq!(reg.len(), 2);
        let (_, v) = with_audit(|| reg.run(SimTime::from_nanos(3)));
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].component, "first");
        assert_eq!(v[1].component, "second");
        assert_eq!(v[1].at, SimTime::from_nanos(3));
    }

    #[test]
    fn healthy_sim_passes_the_queue_health_audit() {
        let mut sim = Sim::new();
        sim.schedule(ioat_simcore::SimDuration::from_nanos(1), |_| {});
        let keep = sim.schedule(ioat_simcore::SimDuration::from_nanos(2), |_| {});
        sim.schedule(ioat_simcore::SimDuration::from_nanos(3), |_| {});
        sim.cancel(keep);
        sim.run();
        let (_, v) = with_audit(|| audit_sim(&sim));
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "audit violation")]
    fn failed_check_outside_scope_panics_in_debug() {
        check("c", "debug-always-on", SimTime::ZERO, false, || {
            "boom".into()
        });
    }
}
