//! Fig. 10 — PVFS concurrent-read benchmark.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::IoatConfig;
use ioat_pvfs::harness::{concurrent_read, PvfsConfig};

fn main() {
    group("fig10");
    for clients in [1usize, 4] {
        bench(
            &format!("fig10_read_{clients}c_non_ioat"),
            DEFAULT_ITERS,
            || concurrent_read(&PvfsConfig::quick_test(3, clients, IoatConfig::disabled())),
        );
        bench(
            &format!("fig10_read_{clients}c_ioat"),
            DEFAULT_ITERS,
            || concurrent_read(&PvfsConfig::quick_test(3, clients, IoatConfig::full())),
        );
    }
}
