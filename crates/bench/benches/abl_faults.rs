//! Ablation A3 — fault injection: the loss sweep × I/OAT on/off, timed.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::bandwidth;
use ioat_core::IoatConfig;
use ioat_faults::FaultPlan;

fn main() {
    group("abl_faults");
    let mut cfg = bandwidth::BandwidthConfig::quick_test();
    cfg.ports = 2;
    cfg.window = ExperimentWindow::quick();
    for p in [0.0, 1e-5, 1e-4, 1e-3] {
        let plan = FaultPlan::bernoulli_loss(0xFA017, p);
        let (c2, p2) = (cfg, plan.clone());
        bench(
            &format!("abl_faults_loss{p:.0e}_non"),
            DEFAULT_ITERS,
            move || bandwidth::run_with_faults(&c2, IoatConfig::disabled(), &p2),
        );
        let (c2, p2) = (cfg, plan);
        bench(
            &format!("abl_faults_loss{p:.0e}_ioat"),
            DEFAULT_ITERS,
            move || bandwidth::run_with_faults(&c2, IoatConfig::full(), &p2),
        );
    }
}
