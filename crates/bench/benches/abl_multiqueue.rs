//! Ablation A1 — multiple receive queues (the feature §2.2.3 could not
//! measure on Linux).

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::multistream;
use ioat_core::IoatConfig;

fn main() {
    group("abl_multiqueue");
    for threads in [4usize, 8] {
        let mut cfg = multistream::MultiStreamConfig::quick_test(threads);
        cfg.window = ExperimentWindow::quick();
        bench(&format!("abl_mq_{threads}t_ioat"), DEFAULT_ITERS, || {
            multistream::run(&cfg, IoatConfig::full())
        });
        bench(
            &format!("abl_mq_{threads}t_ioat_multiqueue"),
            DEFAULT_ITERS,
            || multistream::run(&cfg, IoatConfig::full_with_multi_queue()),
        );
    }
}
