//! Ablation A1 — multiple receive queues (the feature §2.2.3 could not
//! measure on Linux).

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::multistream;
use ioat_core::IoatConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("abl_multiqueue");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [4usize, 8] {
        let mut cfg = multistream::MultiStreamConfig::quick_test(threads);
        cfg.window = ExperimentWindow::quick();
        g.bench_function(format!("abl_mq_{threads}t_ioat"), |b| {
            b.iter(|| multistream::run(&cfg, IoatConfig::full()))
        });
        g.bench_function(format!("abl_mq_{threads}t_ioat_multiqueue"), |b| {
            b.iter(|| multistream::run(&cfg, IoatConfig::full_with_multi_queue()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
