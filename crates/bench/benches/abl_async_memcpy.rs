//! Ablation A2 — user-level asynchronous memcpy and the pinning-cost
//! crossover (§7: "the usefulness of the copy engine becomes questionable
//! if the pinning cost exceeds the copy cost").

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_memsim::{AddressAllocator, DmaConfig, DmaEngine, DmaRequest};
use ioat_simcore::SimDuration;

fn main() {
    group("abl_async_memcpy");
    for pin_ns in [25u64, 1_000] {
        bench(
            &format!("abl_copy_cost_model_pin{pin_ns}ns"),
            DEFAULT_ITERS,
            || {
                let cfg = DmaConfig {
                    pin_per_page: SimDuration::from_nanos(pin_ns),
                    ..DmaConfig::default()
                };
                let engine = DmaEngine::new(cfg, None);
                let mut alloc = AddressAllocator::new();
                (0..=6)
                    .map(|i| {
                        let size = 1024u64 << i;
                        let req = DmaRequest::new(alloc.alloc(size), alloc.alloc(size));
                        engine.total_cost(&req)
                    })
                    .collect::<Vec<_>>()
            },
        );
    }
}
