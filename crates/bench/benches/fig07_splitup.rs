//! Fig. 7 — feature split-up benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::microbench::splitup::{self, SplitupConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let cfg = SplitupConfig::quick_test();
    g.bench_function("fig7a_row_64k", |b| b.iter(|| splitup::row(&cfg, 64 * 1024)));
    g.bench_function("fig7b_row_1m", |b| b.iter(|| splitup::row(&cfg, 1 << 20)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
