//! Fig. 7 — feature split-up benchmark.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::microbench::splitup::{self, SplitupConfig};

fn main() {
    group("fig07");
    let cfg = SplitupConfig::quick_test();
    bench("fig7a_row_64k", DEFAULT_ITERS, || {
        splitup::row(&cfg, 64 * 1024)
    });
    bench("fig7b_row_1m", DEFAULT_ITERS, || {
        splitup::row(&cfg, 1 << 20)
    });
}
