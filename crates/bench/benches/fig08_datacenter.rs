//! Fig. 8a/8b — data-center TPS benchmarks.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::IoatConfig;
use ioat_datacenter::tiers::{self, DataCenterConfig};

fn main() {
    group("fig08");
    bench("fig8a_single_file_4k_non_ioat", DEFAULT_ITERS, || {
        tiers::run_single_file(&DataCenterConfig::quick_test(IoatConfig::disabled()), 4096)
    });
    bench("fig8a_single_file_4k_ioat", DEFAULT_ITERS, || {
        tiers::run_single_file(&DataCenterConfig::quick_test(IoatConfig::full()), 4096)
    });
    bench("fig8b_zipf_095", DEFAULT_ITERS, || {
        let mut cfg = DataCenterConfig::quick_test(IoatConfig::full());
        cfg.proxy_cache_bytes = 64 << 20;
        tiers::run_zipf(&cfg, 0.95, 2_000, 2 * 1024)
    });
}
