//! Fig. 8a/8b — data-center TPS benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::IoatConfig;
use ioat_datacenter::tiers::{self, DataCenterConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("fig8a_single_file_4k_non_ioat", |b| {
        b.iter(|| {
            tiers::run_single_file(&DataCenterConfig::quick_test(IoatConfig::disabled()), 4096)
        })
    });
    g.bench_function("fig8a_single_file_4k_ioat", |b| {
        b.iter(|| tiers::run_single_file(&DataCenterConfig::quick_test(IoatConfig::full()), 4096))
    });
    g.bench_function("fig8b_zipf_095", |b| {
        b.iter(|| {
            let mut cfg = DataCenterConfig::quick_test(IoatConfig::full());
            cfg.proxy_cache_bytes = 64 << 20;
            tiers::run_zipf(&cfg, 0.95, 2_000, 2 * 1024)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
