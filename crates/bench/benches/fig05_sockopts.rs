//! Fig. 5 — socket-optimization sweep benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::bandwidth::{self, BandwidthConfig};
use ioat_core::{IoatConfig, SocketOpts};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (label, opts) in SocketOpts::all_cases() {
        let cfg = BandwidthConfig {
            ports: 2,
            opts,
            window: ExperimentWindow::quick(),
        };
        let name = label.replace(' ', "_").to_lowercase();
        g.bench_function(format!("fig5_{name}_non_ioat"), |b| {
            b.iter(|| bandwidth::run(&cfg, IoatConfig::disabled()))
        });
        g.bench_function(format!("fig5_{name}_ioat"), |b| {
            b.iter(|| bandwidth::run(&cfg, IoatConfig::full()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
