//! Fig. 5 — socket-optimization sweep benchmark.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::bandwidth::{self, BandwidthConfig};
use ioat_core::{IoatConfig, SocketOpts};

fn main() {
    group("fig05");
    for (label, opts) in SocketOpts::all_cases() {
        let cfg = BandwidthConfig {
            ports: 2,
            opts,
            window: ExperimentWindow::quick(),
        };
        let name = label.replace(' ', "_").to_lowercase();
        bench(&format!("fig5_{name}_non_ioat"), DEFAULT_ITERS, || {
            bandwidth::run(&cfg, IoatConfig::disabled())
        });
        bench(&format!("fig5_{name}_ioat"), DEFAULT_ITERS, || {
            bandwidth::run(&cfg, IoatConfig::full())
        });
    }
}
