//! Self-timed micro-benches over the simulation engine's hot paths:
//! event-queue schedule/cancel/pop, the netsim stack pump, the Zipf
//! workload sampler, and a partitioned (parsim) window round.
//!
//! Bench IDs are stable across refactors — each name identifies a
//! *workload* attached to a public entrypoint (`Sim::schedule` /
//! `Sim::cancel` / `Sim::run_until`, `bandwidth::run`,
//! `ZipfTrace::next_request`, `run_partitioned`), not an implementation
//! detail. When call sites move, update the wiring here and keep the ID.
//! Fixtures are deterministic: fixed seeds, explicit sizes in the ID.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::microbench::bandwidth;
use ioat_core::IoatConfig;
use ioat_datacenter::run_partitioned;
use ioat_datacenter::scale::ScaleConfig;
use ioat_datacenter::workload::{FileCatalog, Trace, ZipfTrace};
use ioat_simcore::{Sim, SimDuration, SimRng, SimTime};

/// xorshift64* — same generator as the queue differential test: tiny,
/// seedable, no host entropy.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Schedule `n` no-op events with colliding 0..256 ns delays, cancelling
/// every other handle when `cancel` is set, then drain the queue. The
/// slab queue's three O(log n)/O(1) operations — push, cancel, pop —
/// dominate; the event bodies are empty.
fn queue_churn(n: u64, cancel: bool) -> u64 {
    let mut sim = Sim::new();
    let mut rng = XorShift(0x5EED_CAFE);
    let mut handles = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let delay = SimDuration::from_nanos(rng.next_u64() % 256);
        handles.push(sim.schedule(delay, |_| {}));
    }
    if cancel {
        for id in handles.iter().step_by(2) {
            sim.cancel(*id);
        }
    }
    sim.run_until(SimTime::from_nanos(1_000));
    sim.events_executed()
}

fn main() {
    group("engine_hotpaths");

    bench("engine.queue/schedule_pop_100k", DEFAULT_ITERS, || {
        queue_churn(100_000, false)
    });
    bench("engine.queue/cancel_storm_100k", DEFAULT_ITERS, || {
        queue_churn(100_000, true)
    });

    // The netsim stack pump end to end: one quick-window single-port
    // bandwidth run, non-I/OAT (the copy-heavy path). Frame segmentation,
    // wire serialization, ACK clocking, and the receive cost model all
    // ride the pump.
    bench("engine.stack/pump_1port_quick", DEFAULT_ITERS, || {
        bandwidth::run(
            &bandwidth::BandwidthConfig::quick_test(),
            IoatConfig::disabled(),
        )
        .mbps
    });

    // The Zipf sampler the datacenter's emulated clients draw from:
    // 1M CDF binary searches over a 10K-document heavy-tailed catalog.
    bench("engine.zipf/draw_1m_10k_docs", DEFAULT_ITERS, || {
        let mut rng = SimRng::seed_from(0xD1CE);
        let catalog = FileCatalog::web_content(10_000, 8 * 1024, &mut rng);
        let mut trace = ZipfTrace::new(catalog, 0.9, SimRng::seed_from(7));
        (0..1_000_000u64).fold(0u64, |acc, _| acc + u64::from(trace.next_request().file_id))
    });

    // A whole partitioned run of the quick-test datacenter (fat-tree(4),
    // 3 partitions) on 2 workers: window computation, barrier exchange,
    // and the deterministic merge — the parsim engine's round trip.
    bench("engine.parsim/quicktest_2workers", DEFAULT_ITERS, || {
        let (res, rep) = run_partitioned(&ScaleConfig::quick_test(IoatConfig::full()), 2);
        (res.completed, rep.rounds)
    });
}
