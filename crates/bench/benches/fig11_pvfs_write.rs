//! Fig. 11 — PVFS concurrent-write benchmark.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::IoatConfig;
use ioat_pvfs::harness::{concurrent_write, PvfsConfig};

fn main() {
    group("fig11");
    for clients in [1usize, 4] {
        bench(
            &format!("fig11_write_{clients}c_non_ioat"),
            DEFAULT_ITERS,
            || concurrent_write(&PvfsConfig::quick_test(3, clients, IoatConfig::disabled())),
        );
        bench(
            &format!("fig11_write_{clients}c_ioat"),
            DEFAULT_ITERS,
            || concurrent_write(&PvfsConfig::quick_test(3, clients, IoatConfig::full())),
        );
    }
}
