//! Fig. 11 — PVFS concurrent-write benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::IoatConfig;
use ioat_pvfs::harness::{concurrent_write, PvfsConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for clients in [1usize, 4] {
        g.bench_function(format!("fig11_write_{clients}c_non_ioat"), |b| {
            b.iter(|| concurrent_write(&PvfsConfig::quick_test(3, clients, IoatConfig::disabled())))
        });
        g.bench_function(format!("fig11_write_{clients}c_ioat"), |b| {
            b.iter(|| concurrent_write(&PvfsConfig::quick_test(3, clients, IoatConfig::full())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
