//! Fig. 9 — emulated-clients benchmark.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::IoatConfig;
use ioat_datacenter::emulated::{self, EmulatedConfig};

fn main() {
    group("fig09");
    for threads in [16usize, 64] {
        bench(&format!("fig9_{threads}t_non_ioat"), DEFAULT_ITERS, || {
            emulated::run(&EmulatedConfig::quick_test(threads, IoatConfig::disabled()))
        });
        bench(&format!("fig9_{threads}t_ioat"), DEFAULT_ITERS, || {
            emulated::run(&EmulatedConfig::quick_test(threads, IoatConfig::full()))
        });
    }
}
