//! Fig. 9 — emulated-clients benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::IoatConfig;
use ioat_datacenter::emulated::{self, EmulatedConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [16usize, 64] {
        g.bench_function(format!("fig9_{threads}t_non_ioat"), |b| {
            b.iter(|| emulated::run(&EmulatedConfig::quick_test(threads, IoatConfig::disabled())))
        });
        g.bench_function(format!("fig9_{threads}t_ioat"), |b| {
            b.iter(|| emulated::run(&EmulatedConfig::quick_test(threads, IoatConfig::full())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
