//! Fig. 12 — PVFS multi-stream-read benchmark.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::IoatConfig;
use ioat_pvfs::harness::{multi_stream_read, PvfsConfig};

fn main() {
    group("fig12");
    for threads in [2usize, 8] {
        bench(
            &format!("fig12_stream_{threads}t_non_ioat"),
            DEFAULT_ITERS,
            || {
                multi_stream_read(
                    &PvfsConfig::quick_test(3, 1, IoatConfig::disabled()),
                    threads,
                )
            },
        );
        bench(
            &format!("fig12_stream_{threads}t_ioat"),
            DEFAULT_ITERS,
            || multi_stream_read(&PvfsConfig::quick_test(3, 1, IoatConfig::full()), threads),
        );
    }
}
