//! Fig. 12 — PVFS multi-stream-read benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::IoatConfig;
use ioat_pvfs::harness::{multi_stream_read, PvfsConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [2usize, 8] {
        g.bench_function(format!("fig12_stream_{threads}t_non_ioat"), |b| {
            b.iter(|| {
                multi_stream_read(
                    &PvfsConfig::quick_test(3, 1, IoatConfig::disabled()),
                    threads,
                )
            })
        });
        g.bench_function(format!("fig12_stream_{threads}t_ioat"), |b| {
            b.iter(|| {
                multi_stream_read(&PvfsConfig::quick_test(3, 1, IoatConfig::full()), threads)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
