//! Fig. 6 — CPU copy vs DMA copy benchmark (the full table per
//! iteration, plus per-size rows).

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::microbench::copybench;

fn main() {
    group("fig06");
    bench("fig6_full_table", DEFAULT_ITERS, copybench::table);
    for size in [1024u64, 8 * 1024, 64 * 1024] {
        bench(&format!("fig6_row_{size}"), DEFAULT_ITERS, || {
            copybench::row(size)
        });
    }
}
