//! Fig. 6 — CPU copy vs DMA copy benchmark (the full table per
//! iteration, plus per-size rows).

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::microbench::copybench;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06");
    g.bench_function("fig6_full_table", |b| b.iter(copybench::table));
    for size in [1024u64, 8 * 1024, 64 * 1024] {
        g.bench_function(format!("fig6_row_{size}"), |b| {
            b.iter(|| copybench::row(size))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
