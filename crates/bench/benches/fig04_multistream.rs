//! Fig. 4 — multi-stream bandwidth benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::multistream;
use ioat_core::IoatConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [4usize, 12] {
        let mut cfg = multistream::MultiStreamConfig::paper(threads);
        cfg.window = ExperimentWindow::quick();
        g.bench_function(format!("fig4_multistream_{threads}t_non_ioat"), |b| {
            b.iter(|| multistream::run(&cfg, IoatConfig::disabled()))
        });
        g.bench_function(format!("fig4_multistream_{threads}t_ioat"), |b| {
            b.iter(|| multistream::run(&cfg, IoatConfig::full()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
