//! Fig. 4 — multi-stream bandwidth benchmark.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::multistream;
use ioat_core::IoatConfig;

fn main() {
    group("fig04");
    for threads in [4usize, 12] {
        let mut cfg = multistream::MultiStreamConfig::paper(threads);
        cfg.window = ExperimentWindow::quick();
        bench(
            &format!("fig4_multistream_{threads}t_non_ioat"),
            DEFAULT_ITERS,
            || multistream::run(&cfg, IoatConfig::disabled()),
        );
        bench(
            &format!("fig4_multistream_{threads}t_ioat"),
            DEFAULT_ITERS,
            || multistream::run(&cfg, IoatConfig::full()),
        );
    }
}
