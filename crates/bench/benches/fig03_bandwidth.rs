//! Fig. 3a/3b — bandwidth and bi-directional bandwidth benchmarks.
//!
//! Each target runs the scaled-down (quick-window) experiment end to end;
//! `repro fig3a`/`fig3b` prints the paper-scale tables.

use ioat_bench::microtime::{bench, group, DEFAULT_ITERS};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::{bandwidth, bidirectional};
use ioat_core::IoatConfig;

fn main() {
    group("fig03");
    let mut bw = bandwidth::BandwidthConfig::paper(2);
    bw.window = ExperimentWindow::quick();
    bench("fig3a_bandwidth_2ports_non_ioat", DEFAULT_ITERS, || {
        bandwidth::run(&bw, IoatConfig::disabled())
    });
    bench("fig3a_bandwidth_2ports_ioat", DEFAULT_ITERS, || {
        bandwidth::run(&bw, IoatConfig::full())
    });
    let mut bd = bidirectional::BidirConfig::paper(2);
    bd.window = ExperimentWindow::quick();
    bench("fig3b_bidirectional_2ports_non_ioat", DEFAULT_ITERS, || {
        bidirectional::run(&bd, IoatConfig::disabled())
    });
    bench("fig3b_bidirectional_2ports_ioat", DEFAULT_ITERS, || {
        bidirectional::run(&bd, IoatConfig::full())
    });
}
