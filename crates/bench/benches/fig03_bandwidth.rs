//! Fig. 3a/3b — bandwidth and bi-directional bandwidth benchmarks.
//!
//! Each target runs the scaled-down (quick-window) experiment end to end;
//! `repro fig3a`/`fig3b` prints the paper-scale tables.

use criterion::{criterion_group, criterion_main, Criterion};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::{bandwidth, bidirectional};
use ioat_core::IoatConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let mut bw = bandwidth::BandwidthConfig::paper(2);
    bw.window = ExperimentWindow::quick();
    g.bench_function("fig3a_bandwidth_2ports_non_ioat", |b| {
        b.iter(|| bandwidth::run(&bw, IoatConfig::disabled()))
    });
    g.bench_function("fig3a_bandwidth_2ports_ioat", |b| {
        b.iter(|| bandwidth::run(&bw, IoatConfig::full()))
    });
    let mut bd = bidirectional::BidirConfig::paper(2);
    bd.window = ExperimentWindow::quick();
    g.bench_function("fig3b_bidirectional_2ports_non_ioat", |b| {
        b.iter(|| bidirectional::run(&bd, IoatConfig::disabled()))
    });
    g.bench_function("fig3b_bidirectional_2ports_ioat", |b| {
        b.iter(|| bidirectional::run(&bd, IoatConfig::full()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
