//! CLI contract tests for the `repro` binary: strict flag parsing,
//! `--jobs`/`--json` handling, and the exit-2 error paths. Runs the
//! real binary (`CARGO_BIN_EXE_repro`), so these cover exactly what a
//! user or the CI pipeline sees.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_flag_exits_2_with_suggestion() {
    // Regression: '--josb' used to be silently ignored and the whole
    // suite ran as if no flag had been passed.
    let out = repro(&["--josb"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown flag '--josb'"), "stderr: {err}");
    assert!(err.contains("--jobs"), "suggests the closest flag: {err}");
}

#[test]
fn unknown_target_exits_2_with_suggestion() {
    let out = repro(&["fig3c"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown target 'fig3c'"), "stderr: {err}");
    assert!(err.contains("did you mean"), "stderr: {err}");
}

#[test]
fn repeated_trace_flag_is_rejected() {
    // Regression: the second '--trace' left its path in the target list,
    // producing a baffling "unknown target '/tmp/b.json'" error.
    let out = repro(&["--trace", "/tmp/a.json", "--trace", "/tmp/b.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--trace given more than once"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn trace_without_path_is_rejected() {
    let out = repro(&["--trace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--trace needs a path"));
}

#[test]
fn jobs_flag_validates_its_value() {
    for bad in [&["--jobs"][..], &["--jobs", "0"], &["--jobs", "many"]] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args: {bad:?}");
        assert!(stderr(&out).contains("--jobs"), "args: {bad:?}");
    }
    let out = repro(&["--jobs", "2", "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("more than once"));
}

#[test]
fn list_prints_targets_and_exits_0() {
    let out = repro(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for target in ["fig3a", "fig12", "abl-faults"] {
        assert!(text.contains(target), "--list names {target}");
    }
}

#[test]
fn quick_run_with_jobs_and_json_writes_report() {
    let path = std::env::temp_dir().join("ioat_bench_cli_test.json");
    let _ = std::fs::remove_file(&path);
    let out = repro(&[
        "--quick",
        "--jobs",
        "2",
        "--json",
        path.to_str().unwrap(),
        "fig6",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("Fig 6"),
        "table still renders alongside --json"
    );
    let doc = std::fs::read_to_string(&path).expect("report written");
    assert!(doc.contains("\"schema\": \"ioat-bench/1\""));
    assert!(doc.contains("\"name\": \"fig6\""));
    assert!(doc.contains("\"jobs\": 2"));
    assert!(doc.contains("\"total_wall_ms\""));
    let _ = std::fs::remove_file(&path);
}
