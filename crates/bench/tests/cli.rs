//! CLI contract tests for the `repro` binary: strict flag parsing,
//! `--jobs`/`--json` handling, and the exit-2 error paths. Runs the
//! real binary (`CARGO_BIN_EXE_repro`), so these cover exactly what a
//! user or the CI pipeline sees.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_flag_exits_2_with_suggestion() {
    // Regression: '--josb' used to be silently ignored and the whole
    // suite ran as if no flag had been passed.
    let out = repro(&["--josb"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown flag '--josb'"), "stderr: {err}");
    assert!(err.contains("--jobs"), "suggests the closest flag: {err}");
}

#[test]
fn unknown_target_exits_2_with_suggestion() {
    let out = repro(&["fig3c"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown target 'fig3c'"), "stderr: {err}");
    assert!(err.contains("did you mean"), "stderr: {err}");
}

#[test]
fn repeated_trace_flag_is_rejected() {
    // Regression: the second '--trace' left its path in the target list,
    // producing a baffling "unknown target '/tmp/b.json'" error.
    let out = repro(&["--trace", "/tmp/a.json", "--trace", "/tmp/b.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--trace given more than once"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn trace_without_path_is_rejected() {
    let out = repro(&["--trace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--trace needs a path"));
}

#[test]
fn jobs_flag_validates_its_value() {
    for bad in [&["--jobs"][..], &["--jobs", "0"], &["--jobs", "many"]] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args: {bad:?}");
        assert!(stderr(&out).contains("--jobs"), "args: {bad:?}");
    }
    let out = repro(&["--jobs", "2", "--jobs", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("more than once"));
}

#[test]
fn list_prints_targets_and_exits_0() {
    let out = repro(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for target in [
        "fig3a",
        "fig12",
        "abl-faults",
        "abl-modern",
        "abl-modern-mstream",
        "abl-modern-dc",
        "abl-modern-pvfs",
    ] {
        assert!(text.contains(target), "--list names {target}");
    }
}

#[test]
fn abl_modern_typo_exits_2_with_suggestion() {
    let out = repro(&["abl-modren"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown target 'abl-modren'"), "stderr: {err}");
    assert!(
        err.contains("did you mean 'abl-modern'"),
        "suggests the grid target: {err}"
    );
}

#[test]
fn quick_run_with_jobs_and_json_writes_report() {
    let path = std::env::temp_dir().join("ioat_bench_cli_test.json");
    let _ = std::fs::remove_file(&path);
    let out = repro(&[
        "--quick",
        "--jobs",
        "2",
        "--json",
        path.to_str().unwrap(),
        "fig6",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("Fig 6"),
        "table still renders alongside --json"
    );
    let doc = std::fs::read_to_string(&path).expect("report written");
    assert!(doc.contains("\"schema\": \"ioat-bench/4\""));
    assert!(doc.contains("\"name\": \"fig6\""));
    assert!(doc.contains("\"status\": \"ok\""));
    assert!(doc.contains("\"error\": null"));
    assert!(doc.contains("\"jobs\": 2"));
    assert!(doc.contains("\"sim_threads\": 1"), "default is 1");
    assert!(doc.contains("\"parsim\": []"), "fig6 is not partitioned");
    assert!(doc.contains("\"total_wall_ms\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sim_threads_flag_validates_its_value() {
    // Satellite contract for `--sim-threads`: reject a missing value,
    // zero (a partitioned run needs at least one worker), non-numeric
    // values, and repetition — all before any figure runs.
    for bad in [
        &["--sim-threads"][..],
        &["--sim-threads", "0"],
        &["--sim-threads", "many"],
        &["--sim-threads", "-2"],
    ] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args: {bad:?}");
        assert!(stderr(&out).contains("--sim-threads"), "args: {bad:?}");
    }
    let out = repro(&["--sim-threads", "2", "--sim-threads", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--sim-threads given more than once"));
}

#[test]
fn sim_threads_typo_gets_a_suggestion() {
    let out = repro(&["--sim-thread", "2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown flag '--sim-thread'"), "stderr: {err}");
    assert!(err.contains("--sim-threads"), "suggests the flag: {err}");
}

#[test]
fn sim_threads_rejects_the_fail_watchdog_combination() {
    // The forced-panic smoke only supports the sequential engine; the
    // combination must be rejected up front (exit 2), in either order.
    for args in [
        &["--sim-threads", "2", "--fail", "fig6", "fig6"][..],
        &["--fail", "fig6", "--sim-threads", "4", "fig6"],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let err = stderr(&out);
        assert!(err.contains("--fail"), "stderr: {err}");
        assert!(err.contains("--sim-threads"), "stderr: {err}");
    }
    // `--sim-threads 1` (the default engine) keeps the smoke available.
    let out = repro(&["--quick", "--sim-threads", "1", "--fail", "fig6", "fig6"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
}

#[test]
fn sim_threads_is_recorded_in_the_report_header() {
    let path = std::env::temp_dir().join("ioat_bench_cli_simthreads.json");
    let _ = std::fs::remove_file(&path);
    let out = repro(&[
        "--quick",
        "--jobs",
        "2",
        "--sim-threads",
        "4",
        "--json",
        path.to_str().unwrap(),
        "fig6",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let doc = std::fs::read_to_string(&path).expect("report written");
    assert!(
        doc.contains("\"sim_threads\": 4"),
        "header records the flag"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn retries_flag_validates_its_value() {
    for bad in [&["--retries"][..], &["--retries", "soon"]] {
        let out = repro(bad);
        assert_eq!(out.status.code(), Some(2), "args: {bad:?}");
        assert!(stderr(&out).contains("--retries"), "args: {bad:?}");
    }
    let out = repro(&["--retries", "1", "--retries", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("more than once"));
}

#[test]
fn fail_flag_rejects_unknown_targets() {
    let out = repro(&["--fail", "fig3c"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--fail"), "stderr: {err}");
    assert!(err.contains("did you mean"), "stderr: {err}");
}

#[test]
fn forced_failure_exits_3_with_a_partial_report() {
    // The acceptance smoke for the whole supervision path: one figure is
    // made to panic inside the sweep pool; the run must finish the other
    // figure, write a complete JSON report marking only the poisoned
    // figure failed, print a summary, and exit 3.
    let path = std::env::temp_dir().join("ioat_bench_cli_fail_test.json");
    let _ = std::fs::remove_file(&path);
    let out = repro(&[
        "--quick",
        "--jobs",
        "8",
        "--fail",
        "fig6",
        "--json",
        path.to_str().unwrap(),
        "fig6",
        "abl-copy",
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("run summary"), "stderr: {err}");
    assert!(err.contains("1/2 figures failed"), "stderr: {err}");
    assert!(
        stdout(&out).contains("Ablation A2"),
        "the surviving figure still renders"
    );
    let doc = std::fs::read_to_string(&path).expect("partial report written");
    assert!(doc.contains("\"name\": \"fig6\", \"title\": \"fig6 (failed)\""));
    assert!(doc.contains("\"status\": \"failed\""));
    assert!(doc.contains("deliberate failure injected by --fail"));
    assert!(
        doc.contains("\"name\": \"abl-copy\"") && doc.contains("\"status\": \"ok\""),
        "surviving figure reports ok rows"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn audit_run_is_bit_identical_to_plain_run() {
    // The --audit acceptance criterion, end to end through the real
    // binary: same figure, same jobs, audit scope on vs off — the JSON
    // rows must match exactly (only wall-clock fields may differ).
    let strip = |doc: &str| -> String {
        doc.lines()
            .filter(|l| !l.contains("wall_ms"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let dir = std::env::temp_dir();
    let plain = dir.join("ioat_bench_cli_plain.json");
    let audited = dir.join("ioat_bench_cli_audited.json");
    for (flags, path) in [(&[][..], &plain), (&["--audit"][..], &audited)] {
        let mut args = vec!["--quick", "--jobs", "2", "--json", path.to_str().unwrap()];
        args.extend_from_slice(flags);
        args.push("fig6");
        let out = repro(&args);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    }
    let a = std::fs::read_to_string(&plain).expect("plain report");
    let b = std::fs::read_to_string(&audited).expect("audited report");
    assert_eq!(strip(&a), strip(&b), "--audit must not perturb any row");
    let _ = std::fs::remove_file(&plain);
    let _ = std::fs::remove_file(&audited);
}
