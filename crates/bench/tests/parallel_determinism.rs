//! The reproducibility invariant under the parallel sweep executor:
//! `--jobs 1` and `--jobs 8` must produce bit-identical figure rows.
//!
//! Each figure point is an independent single-threaded simulation with
//! its own seeded RNG streams, and `sweep::run_jobs` reassembles results
//! at their input index, so worker count must be unobservable in the
//! output. Exact `==` on every row (f64 bit-compare via PartialEq) —
//! not approximate — because the project's determinism contract is
//! bit-level (see `tests/determinism.rs` at the workspace root).

use ioat_bench as figs;
use ioat_core::metrics::ExperimentWindow;

/// Compares one figure across worker counts. The `rows` and `notes`
/// must match exactly; `wall_ms` is explicitly excluded (it measures the
/// host, not the model).
fn assert_jobs_invariant(name: &str) {
    let w = ExperimentWindow::quick();
    let seq = figs::run_figure(name, w, 1).expect("known figure");
    let par = figs::run_figure(name, w, 8).expect("known figure");
    assert_eq!(
        seq.rows, par.rows,
        "{name}: rows must be bit-identical at --jobs 1 and --jobs 8"
    );
    assert_eq!(
        seq.notes, par.notes,
        "{name}: notes must be bit-identical across worker counts"
    );
    assert_eq!(seq.name, par.name);
    assert_eq!(seq.title, par.title);
    assert_eq!(seq.unit, par.unit);
    assert!(!seq.rows.is_empty(), "{name}: figure produced rows");
}

// One figure per table shape and domain keeps this suite fast while
// covering every code path through the executor: microbenchmark compare
// tables, the copy table, the split-up table, the data-center and PVFS
// domains, and the fault ablation (rows + notes).

#[test]
fn fig3a_rows_identical_across_jobs() {
    assert_jobs_invariant("fig3a");
}

#[test]
fn fig5a_rows_identical_across_jobs() {
    assert_jobs_invariant("fig5a");
}

#[test]
fn fig6_rows_identical_across_jobs() {
    assert_jobs_invariant("fig6");
}

#[test]
fn fig7_rows_identical_across_jobs() {
    assert_jobs_invariant("fig7");
}

#[test]
fn fig8b_rows_identical_across_jobs() {
    assert_jobs_invariant("fig8b");
}

#[test]
fn fig10a_rows_identical_across_jobs() {
    assert_jobs_invariant("fig10a");
}

#[test]
fn abl_faults_rows_and_notes_identical_across_jobs() {
    assert_jobs_invariant("abl-faults");
}

#[test]
fn json_report_identical_across_jobs_modulo_wall_clock() {
    // The committed BENCH_*.json must be diffable across PRs: with the
    // wall-clock fields pinned, the whole document is worker-count
    // independent.
    use ioat_bench::report::{render_json, RunMeta};
    let w = ExperimentWindow::quick();
    let render = |jobs: usize| {
        let mut fig = figs::run_figure("fig3b", w, jobs).expect("known figure");
        fig.wall_ms = 0.0;
        render_json(
            &RunMeta {
                quick: true,
                jobs: 0,
                total_wall_ms: 0.0,
            },
            &[fig],
        )
    };
    assert_eq!(render(1), render(8));
}
