//! The reproducibility invariant under the parallel sweep executor:
//! `--jobs 1` and `--jobs 8` must produce bit-identical figure rows.
//!
//! Each figure point is an independent single-threaded simulation with
//! its own seeded RNG streams, and `sweep::run_jobs` reassembles results
//! at their input index, so worker count must be unobservable in the
//! output. Exact `==` on every row (f64 bit-compare via PartialEq) —
//! not approximate — because the project's determinism contract is
//! bit-level (see `tests/determinism.rs` at the workspace root).

use ioat_bench as figs;
use ioat_core::metrics::ExperimentWindow;

/// Compares one figure across worker counts. The `rows` and `notes`
/// must match exactly; `wall_ms` is explicitly excluded (it measures the
/// host, not the model).
fn assert_jobs_invariant(name: &str) {
    let w = ExperimentWindow::quick();
    let seq = figs::run_figure(name, w, 1, 1).expect("known figure");
    let par = figs::run_figure(name, w, 8, 1).expect("known figure");
    assert_eq!(
        seq.rows, par.rows,
        "{name}: rows must be bit-identical at --jobs 1 and --jobs 8"
    );
    assert_eq!(
        seq.notes, par.notes,
        "{name}: notes must be bit-identical across worker counts"
    );
    assert_eq!(seq.name, par.name);
    assert_eq!(seq.title, par.title);
    assert_eq!(seq.unit, par.unit);
    assert!(!seq.rows.is_empty(), "{name}: figure produced rows");
}

// One figure per table shape and domain keeps this suite fast while
// covering every code path through the executor: microbenchmark compare
// tables, the copy table, the split-up table, the data-center and PVFS
// domains, and the fault ablation (rows + notes).

#[test]
fn fig3a_rows_identical_across_jobs() {
    assert_jobs_invariant("fig3a");
}

#[test]
fn fig5a_rows_identical_across_jobs() {
    assert_jobs_invariant("fig5a");
}

#[test]
fn fig6_rows_identical_across_jobs() {
    assert_jobs_invariant("fig6");
}

#[test]
fn fig7_rows_identical_across_jobs() {
    assert_jobs_invariant("fig7");
}

#[test]
fn fig8b_rows_identical_across_jobs() {
    assert_jobs_invariant("fig8b");
}

#[test]
fn fig10a_rows_identical_across_jobs() {
    assert_jobs_invariant("fig10a");
}

#[test]
fn abl_faults_rows_and_notes_identical_across_jobs() {
    assert_jobs_invariant("abl-faults");
}

/// The fabric-figure point set used by the determinism tests below: the
/// real `fig_fabric` quick points sweep a 1024-host fat-tree, which a
/// debug build cannot afford here, so these runs shrink the topology and
/// client count while exercising the identical sweep closure (fat-tree
/// build, ECMP hashing, shared-buffer switching, streaming stats).
fn fabric_mini_points() -> Vec<(usize, f64, usize)> {
    vec![(4, 1.0, 48), (4, 2.0, 96)]
}

#[test]
fn fig_fabric_rows_identical_across_jobs() {
    let w = ExperimentWindow::quick();
    let seq = figs::fig_fabric_points(fabric_mini_points(), w, 1, 1);
    let par = figs::fig_fabric_points(fabric_mini_points(), w, 8, 1);
    assert_eq!(
        seq.rows, par.rows,
        "fig_fabric rows must be bit-identical at --jobs 1 and --jobs 8"
    );
    assert_eq!(seq.notes, par.notes, "per-point notes must match too");
    assert_eq!(
        seq.sim_events, par.sim_events,
        "event counts are part of the determinism contract"
    );
    assert!(!seq.rows.is_empty());
    assert!(seq.sim_events > 0, "the fabric figure reports event counts");
}

#[test]
fn fig_fabric_same_seed_runs_are_identical() {
    // Two whole-figure runs in the same process: every simulation is
    // rebuilt from its seeds, so nothing may leak between runs.
    let w = ExperimentWindow::quick();
    let a = figs::fig_fabric_points(fabric_mini_points(), w, 4, 1);
    let b = figs::fig_fabric_points(fabric_mini_points(), w, 4, 1);
    assert_eq!(a.rows, b.rows, "same-seed re-run must reproduce the rows");
    assert_eq!(a.notes, b.notes);
    assert_eq!(a.sim_events, b.sim_events);
}

#[test]
fn fig_fabric_json_identical_across_jobs_with_host_fields_pinned() {
    // The committed BENCH_*.json contract for the fabric family:
    // `wall_ms`, `events_per_sec`, and `peak_rss_bytes` measure the host
    // and are pinned before diffing; everything else — rows, notes, and
    // `sim_events` — must be worker-count independent.
    use ioat_bench::report::{render_json, RunMeta};
    let w = ExperimentWindow::quick();
    let render = |jobs: usize| {
        let mut fig = figs::fig_fabric_points(fabric_mini_points(), w, jobs, 1);
        fig.wall_ms = 0.0;
        fig.peak_rss_bytes = None;
        render_json(
            &RunMeta {
                quick: true,
                jobs: 0,
                sim_threads: 0,
                total_wall_ms: 0.0,
            },
            &[fig],
        )
    };
    let doc = render(1);
    assert_eq!(doc, render(8));
    assert!(doc.contains("\"sim_events\": "));
    assert!(!doc.contains("\"sim_events\": 0,"), "events were counted");
}

#[test]
fn fig_fabric_rows_identical_across_sim_threads() {
    // The PR 7 acceptance criterion at figure granularity: the same
    // figure built on the partitioned engine with 1, 2, and 8 workers
    // must be bit-identical — rows, notes, event counts, and the parsim
    // telemetry itself (partition layout and achieved windows are
    // functions of the configuration, never of the worker count).
    let w = ExperimentWindow::quick();
    let t1 = figs::fig_fabric_points(fabric_mini_points(), w, 1, 1);
    let t2 = figs::fig_fabric_points(fabric_mini_points(), w, 1, 2);
    let t8 = figs::fig_fabric_points(fabric_mini_points(), w, 1, 8);
    for (threads, par) in [(2, &t2), (8, &t8)] {
        assert_eq!(
            t1.rows, par.rows,
            "rows must be bit-identical at --sim-threads 1 and {threads}"
        );
        assert_eq!(t1.notes, par.notes, "notes at --sim-threads {threads}");
        assert_eq!(
            t1.sim_events, par.sim_events,
            "event totals at --sim-threads {threads}"
        );
        assert_eq!(
            t1.parsim, par.parsim,
            "parsim telemetry at --sim-threads {threads}"
        );
    }
    assert!(!t1.parsim.is_empty(), "the fabric figure reports telemetry");
    for stats in &t1.parsim {
        assert!(stats.partitions >= 2, "fabric + at least one group");
        assert!(stats.rounds > 0, "the engine executed windows");
        assert!(stats.mean_window_ns > 0.0, "achieved windows are positive");
        assert_eq!(
            stats.events.len(),
            stats.partitions,
            "one event count per partition"
        );
        assert!(
            stats.events.iter().sum::<u64>() > 0,
            "partitions executed events"
        );
    }
}

#[test]
fn fig_fabric_json_identical_across_sim_threads() {
    // CI's sim-threads determinism gate at unit scale: the schema-4 JSON
    // (host fields pinned, header excluded per contract — `sim_threads`
    // in the header records the request, like `jobs`) must be identical
    // at --sim-threads 1 and 4.
    use ioat_bench::report::{render_json, RunMeta};
    let w = ExperimentWindow::quick();
    let render = |sim_threads: usize| {
        let mut fig = figs::fig_fabric_points(fabric_mini_points(), w, 1, sim_threads);
        fig.wall_ms = 0.0;
        fig.peak_rss_bytes = None;
        render_json(
            &RunMeta {
                quick: true,
                jobs: 0,
                sim_threads: 0,
                total_wall_ms: 0.0,
            },
            &[fig],
        )
    };
    let doc = render(1);
    assert_eq!(doc, render(4));
    assert!(doc.contains("\"parsim\": ["));
    assert!(doc.contains("\"mean_window_ns\": "));
}

/// The fault-ablation grid used by the determinism pins below: one clean
/// cell and one heavily faulted cell (6 flaps per link + 2 crashed
/// switches) on the same mini fat-tree the fabric tests use. Faults,
/// admission control and hedged retries are all active in the faulted
/// cell, so these pins cover the PR 10 acceptance criterion: rows must be
/// bit-identical across worker counts *with the fault machinery firing*.
fn fabfault_mini_grid() -> Vec<(u32, u32)> {
    vec![(0, 0), (6, 2)]
}

#[test]
fn abl_fabric_faults_rows_identical_across_jobs() {
    let w = ExperimentWindow::quick();
    let seq = figs::abl_fabric_faults_points(4, 96, fabfault_mini_grid(), w, 1, 1);
    let par = figs::abl_fabric_faults_points(4, 96, fabfault_mini_grid(), w, 8, 1);
    assert_eq!(
        seq.rows, par.rows,
        "faulted rows must be bit-identical at --jobs 1 and --jobs 8"
    );
    assert_eq!(seq.notes, par.notes, "recovery-counter notes must match");
    assert_eq!(seq.sim_events, par.sim_events);
    assert_eq!(seq.parsim, par.parsim);
    assert!(!seq.rows.is_empty());
}

#[test]
fn abl_fabric_faults_rows_identical_across_sim_threads() {
    // Failover re-hashing, blackholed frames, shed requests and hedge
    // timers all live inside the partitions — none of it may observe the
    // worker count.
    let w = ExperimentWindow::quick();
    let t1 = figs::abl_fabric_faults_points(4, 96, fabfault_mini_grid(), w, 1, 1);
    let t4 = figs::abl_fabric_faults_points(4, 96, fabfault_mini_grid(), w, 1, 4);
    assert_eq!(
        t1.rows, t4.rows,
        "faulted rows must be bit-identical at --sim-threads 1 and 4"
    );
    assert_eq!(t1.notes, t4.notes);
    assert_eq!(t1.sim_events, t4.sim_events);
    assert_eq!(t1.parsim, t4.parsim);
    let blackholes: &str = t1
        .notes
        .iter()
        .find(|n| n.contains("f6 c2"))
        .expect("the faulted cell records a note");
    assert!(
        blackholes.contains("blackholes"),
        "the faulted cell reports its recovery counters: {blackholes}"
    );
}

#[test]
fn json_report_identical_across_jobs_modulo_wall_clock() {
    // The committed BENCH_*.json must be diffable across PRs: with the
    // wall-clock fields pinned, the whole document is worker-count
    // independent.
    use ioat_bench::report::{render_json, RunMeta};
    let w = ExperimentWindow::quick();
    let render = |jobs: usize| {
        let mut fig = figs::run_figure("fig3b", w, jobs, 1).expect("known figure");
        fig.wall_ms = 0.0;
        fig.peak_rss_bytes = None;
        render_json(
            &RunMeta {
                quick: true,
                jobs: 0,
                sim_threads: 0,
                total_wall_ms: 0.0,
            },
            &[fig],
        )
    };
    assert_eq!(render(1), render(8));
}

/// The modern-offload grid cells used by the determinism tests below:
/// one cell per workload (plus a second engine-bound multistream cell),
/// covering both the single-simulation cells and the dc cells that run
/// on the partitioned engine. The full 48-cell grid is a release-build
/// affair; this subset exercises the identical cell closures.
fn modern_mini_points() -> Vec<(figs::modern::ModernWorkload, u64, ioat_netsim::RxMode)> {
    use figs::modern::ModernWorkload::*;
    use ioat_netsim::RxMode;
    vec![
        (MultiStream, 10, RxMode::Interrupt),
        (MultiStream, 100, RxMode::ZeroCopy),
        (DataCenter, 10, RxMode::BusyPoll),
        (Pvfs, 40, RxMode::Coalesced),
    ]
}

#[test]
fn abl_modern_rows_identical_across_jobs() {
    let w = ExperimentWindow::quick();
    let seq = figs::modern::ablation_modern_points(modern_mini_points(), w, 1, 1);
    let par = figs::modern::ablation_modern_points(modern_mini_points(), w, 8, 1);
    assert_eq!(
        seq.rows, par.rows,
        "abl-modern rows must be bit-identical at --jobs 1 and --jobs 8"
    );
    assert_eq!(seq.notes, par.notes);
    assert_eq!(
        seq.sim_events, par.sim_events,
        "dc-cell event totals are part of the contract"
    );
    assert_eq!(seq.parsim, par.parsim, "dc-cell parsim telemetry too");
    assert!(!seq.rows.is_empty());
    let rows = seq.compare_rows().expect("compare-shaped figure");
    assert_eq!(rows.len(), modern_mini_points().len());
    assert!(
        rows.iter().all(|r| r.label.starts_with("abl.modern/")),
        "every row carries its stable dotted id"
    );
}

#[test]
fn abl_modern_rows_identical_sequential_vs_partitioned() {
    // The dc cells run on the conservative partitioned engine; worker
    // count must be unobservable in rows, notes, events and telemetry.
    let w = ExperimentWindow::quick();
    let t1 = figs::modern::ablation_modern_points(modern_mini_points(), w, 1, 1);
    let t4 = figs::modern::ablation_modern_points(modern_mini_points(), w, 1, 4);
    assert_eq!(
        t1.rows, t4.rows,
        "abl-modern rows must be bit-identical at --sim-threads 1 and 4"
    );
    assert_eq!(t1.notes, t4.notes);
    assert_eq!(t1.sim_events, t4.sim_events);
    assert_eq!(t1.parsim, t4.parsim);
    assert!(
        !t1.parsim.is_empty(),
        "the dc cell reports partitioned-engine telemetry"
    );
}

#[test]
fn abl_modern_cells_are_audit_clean() {
    // Every mini-grid cell under the runtime invariant audits: frame
    // conservation, socket lifecycle and core accounting must all hold
    // in every rx mode, including the polling and zero-copy paths.
    let w = ExperimentWindow::quick();
    let (result, violations) = ioat_guard::with_audit_budget(None, || {
        figs::modern::ablation_modern_points(modern_mini_points(), w, 1, 1)
    });
    let fig = result.expect("grid cells must not panic under audit");
    assert!(
        violations.is_empty(),
        "audit violations in the modern grid: {violations:?}"
    );
    assert!(!fig.rows.is_empty());
}
