//! The parallel sweep executor.
//!
//! Every figure of the paper's evaluation is a grid of *independent*
//! configuration points (ports × I/OAT on/off, thread counts, Zipf α,
//! PVFS client counts, ...). Each point is a deterministic
//! single-threaded simulation — `Sim` is `Rc`-based and never crosses a
//! thread — but nothing orders one point after another, so the sweep as
//! a whole parallelizes perfectly. [`run_jobs`] fans a figure's points
//! across a small `std::thread` pool and reassembles the results in
//! input order, which keeps the output bit-identical to a sequential
//! run (asserted by `tests/parallel_determinism.rs`).
//!
//! Determinism contract:
//!
//! * each job is a pure function of its inputs (every simulation seeds
//!   its own RNG streams; no job reads global mutable state),
//! * results are stored at the job's input index, never in completion
//!   order,
//! * `workers == 1` runs every job inline on the calling thread — the
//!   exact sequential behaviour, preserved for `--trace`/telemetry
//!   paths that rely on single-threaded execution.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the host's available parallelism, or 1
/// when the platform cannot report it.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every job and returns their results **in input order**.
///
/// `workers` is clamped to `1..=jobs.len()`; `workers <= 1` (or zero or
/// one job) degenerates to a plain sequential loop on the calling
/// thread. Otherwise `workers` scoped threads pull jobs from a shared
/// cursor — index order, so early rows start first — and write each
/// result into its input slot.
///
/// # Panics
///
/// A panic inside any job propagates to the caller after the pool
/// drains (no result is silently dropped, no thread is leaked — the
/// panicking worker stops pulling new jobs, the others finish theirs).
pub fn run_jobs<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let workers = workers.min(n);

    // Jobs move into per-slot cells so each worker can take ownership of
    // the `FnOnce` it claimed; results land in matching slots.
    let job_cells: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_cells: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let job = job_cells[i]
                        .lock()
                        .expect("job mutex never poisoned: taken exactly once")
                        .take()
                        .expect("each job index is claimed exactly once");
                    let out = job();
                    *result_cells[i]
                        .lock()
                        .expect("result mutex never poisoned: written exactly once") = Some(out);
                })
            })
            .collect();
        // Join explicitly so a job panic reaches the caller with its
        // original payload (`scope`'s implicit join would replace it with
        // a generic "a scoped thread panicked").
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });

    result_cells
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result mutex never poisoned")
                .expect("every job slot is filled when no worker panicked")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Jobs deliberately finish out of order (later indices are
        // cheaper); the output must still follow input order.
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for k in 0..((32 - i) * 10_000) {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    std::hint::black_box(acc);
                    i * 2
                }
            })
            .collect();
        let out = run_jobs(jobs, 8);
        assert_eq!(out, (0..32u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let mk = || (0..16u64).map(|i| move || i * i + 1).collect::<Vec<_>>();
        assert_eq!(run_jobs(mk(), 1), run_jobs(mk(), 7));
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..3u32).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 64), vec![0, 1, 2]);
    }

    #[test]
    fn zero_workers_clamps_to_sequential() {
        let jobs: Vec<_> = (0..4u32).map(|i| move || i + 10).collect();
        assert_eq!(run_jobs(jobs, 0), vec![10, 11, 12, 13]);
    }

    #[test]
    fn empty_job_list_returns_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(run_jobs(jobs, 4).is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| {
                Box::new(move || {
                    if i == 5 {
                        panic!("job 5 exploded");
                    }
                    i
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_jobs(jobs, 4)))
            .expect_err("the job panic must reach the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job 5 exploded"), "got panic payload: {msg:?}");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
