//! The parallel sweep executor and its supervisor.
//!
//! Every figure of the paper's evaluation is a grid of *independent*
//! configuration points (ports × I/OAT on/off, thread counts, Zipf α,
//! PVFS client counts, ...). Each point is a deterministic
//! single-threaded simulation — `Sim` is `Rc`-based and never crosses a
//! thread — but nothing orders one point after another, so the sweep as
//! a whole parallelizes perfectly. [`run_jobs`] fans a figure's points
//! across a small `std::thread` pool and reassembles the results in
//! input order, which keeps the output bit-identical to a sequential
//! run (asserted by `tests/parallel_determinism.rs`).
//!
//! Supervision: every job runs under its own `catch_unwind`, so one
//! panicking point can never take down in-flight siblings or leak the
//! pool — the other workers drain their queues normally and every
//! completed result survives. What happens to the caught panic depends
//! on the entry point:
//!
//! * [`run_jobs`] re-raises the first panic (in input order) after the
//!   pool drains — the historical contract, kept for figure builders
//!   where a panic means the figure itself is broken.
//! * [`run_jobs_supervised`] converts each panic into
//!   [`JobOutcome::Failed`] with a reason classified by
//!   [`ioat_guard::failure_reason`] (`wedged:` for the deterministic
//!   sim-event-budget watchdog, `panicked:` for everything else), and
//!   optionally re-runs a failed job up to `retries` times before giving
//!   up on it. Successful jobs are byte-for-byte unaffected by the
//!   supervision (the closure result is moved out, never cloned).
//!
//! Determinism contract:
//!
//! * each job is a pure function of its inputs (every simulation seeds
//!   its own RNG streams; no job reads global mutable state),
//! * results are stored at the job's input index, never in completion
//!   order,
//! * `workers == 1` runs every job inline on the calling thread — the
//!   exact sequential behaviour, preserved for `--trace`/telemetry
//!   paths that rely on single-threaded execution.

use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the host's available parallelism, or 1
/// when the platform cannot report it.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// What the supervisor reports for one job: its result, or the reason
/// it was given up on after every allowed attempt panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job returned normally (possibly after retries).
    Ok(T),
    /// Every attempt panicked; `reason` is the final attempt's panic
    /// classified by [`ioat_guard::failure_reason`].
    Failed {
        /// `wedged: ...` (event-budget watchdog) or `panicked: ...`.
        reason: String,
    },
}

impl<T> JobOutcome<T> {
    /// The success value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// True for [`JobOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

type JobResult<T> = Result<T, Box<dyn Any + Send>>;

/// One supervised attempt sequence: run `job`, retrying a panicking run
/// up to `retries` extra times, and hand back the last panic payload if
/// none succeeds. `AssertUnwindSafe` is sound here because a failed
/// attempt's partially-mutated state is dropped wholesale — the next
/// attempt re-runs the deterministic simulation from scratch and nothing
/// outside the closure observes the torn state.
fn attempt<T, F: FnMut() -> T>(job: &mut F, retries: usize) -> JobResult<T> {
    let mut last = None;
    for _ in 0..=retries {
        match panic::catch_unwind(AssertUnwindSafe(&mut *job)) {
            Ok(v) => return Ok(v),
            Err(payload) => last = Some(payload),
        }
    }
    Err(last.expect("at least one attempt always runs"))
}

/// The shared executor core: runs every job (with per-job panic
/// isolation and retries) and returns `Result`s **in input order**, the
/// panic payload preserved for the caller to classify or re-raise.
///
/// `workers` is clamped to `1..=jobs.len()`; `workers <= 1` (or a
/// single job) degenerates to a plain sequential loop on the calling
/// thread. Otherwise `workers` scoped threads pull jobs from a shared
/// cursor — index order, so early rows start first — and write each
/// outcome into its input slot. Workers themselves never panic (every
/// job runs under `catch_unwind`), so the pool always drains fully.
///
/// # Panics
///
/// On an empty job list: a figure that sweeps zero points is a harness
/// bug, and silently returning an empty table would let it masquerade
/// as a completed run (the config-validation counterpart to the
/// zero-bandwidth-link and zero-core-node constructor asserts).
fn run_jobs_raw<T, F>(jobs: Vec<F>, workers: usize, retries: usize) -> Vec<JobResult<T>>
where
    T: Send,
    F: FnMut() -> T + Send,
{
    let n = jobs.len();
    assert!(
        n > 0,
        "sweep invoked with an empty job list — a figure with zero configuration points \
         cannot produce a table and indicates a harness bug"
    );
    if workers <= 1 || n == 1 {
        return jobs
            .into_iter()
            .map(|mut job| attempt(&mut job, retries))
            .collect();
    }
    let workers = workers.min(n);

    // Jobs move into per-slot cells so each worker can take ownership of
    // the closure it claimed; outcomes land in matching slots.
    let job_cells: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_cells: Vec<Mutex<Option<JobResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let mut job = job_cells[i]
                    .lock()
                    .expect("job mutex never poisoned: taken exactly once")
                    .take()
                    .expect("each job index is claimed exactly once");
                let out = attempt(&mut job, retries);
                *result_cells[i]
                    .lock()
                    .expect("result mutex never poisoned: written exactly once") = Some(out);
            });
        }
    });

    result_cells
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result mutex never poisoned")
                .expect("every job slot is filled: workers catch all job panics")
        })
        .collect()
}

/// Runs every job and returns their results **in input order**.
///
/// See the module docs for the pool mechanics. This is the
/// panic-*propagating* entry point used by the figure builders.
///
/// # Panics
///
/// * On an empty job list (harness bug — see [`run_jobs_raw`]).
/// * A panic inside any job propagates to the caller after the pool
///   drains, with its original payload and in input order (job 3's
///   panic is re-raised even if job 7 also panicked earlier in wall
///   time): no result is silently dropped, no thread is leaked — the
///   other workers finish their queues first.
pub fn run_jobs<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    // Adapt `FnOnce` to the executor's re-runnable `FnMut` interface;
    // with zero retries each slot is taken exactly once.
    let wrapped: Vec<_> = jobs
        .into_iter()
        .map(|job| {
            let mut slot = Some(job);
            move || {
                (slot
                    .take()
                    .expect("zero retries: each job runs at most once"))()
            }
        })
        .collect();
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    let mut out = Vec::with_capacity(wrapped.len());
    for result in run_jobs_raw(wrapped, workers, 0) {
        match result {
            Ok(v) => out.push(v),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        panic::resume_unwind(payload);
    }
    out
}

/// Runs every job under full supervision: a job whose every attempt
/// (1 + `retries`) panics becomes [`JobOutcome::Failed`] instead of
/// killing the sweep, and all other jobs' results are returned intact,
/// in input order.
///
/// # Panics
///
/// Only on an empty job list (harness bug — see [`run_jobs_raw`]).
pub fn run_jobs_supervised<T, F>(jobs: Vec<F>, workers: usize, retries: usize) -> Vec<JobOutcome<T>>
where
    T: Send,
    F: FnMut() -> T + Send,
{
    run_jobs_raw(jobs, workers, retries)
        .into_iter()
        .map(|result| match result {
            Ok(v) => JobOutcome::Ok(v),
            Err(payload) => JobOutcome::Failed {
                reason: ioat_guard::failure_reason(payload.as_ref()),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Jobs deliberately finish out of order (later indices are
        // cheaper); the output must still follow input order.
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for k in 0..((32 - i) * 10_000) {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    std::hint::black_box(acc);
                    i * 2
                }
            })
            .collect();
        let out = run_jobs(jobs, 8);
        assert_eq!(out, (0..32u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let mk = || (0..16u64).map(|i| move || i * i + 1).collect::<Vec<_>>();
        assert_eq!(run_jobs(mk(), 1), run_jobs(mk(), 7));
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..3u32).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 64), vec![0, 1, 2]);
    }

    #[test]
    fn zero_workers_clamps_to_sequential() {
        let jobs: Vec<_> = (0..4u32).map(|i| move || i + 10).collect();
        assert_eq!(run_jobs(jobs, 0), vec![10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "empty job list")]
    fn empty_job_list_is_rejected_as_a_harness_bug() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        let _ = run_jobs(jobs, 4);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| {
                Box::new(move || {
                    if i == 5 {
                        panic!("job 5 exploded");
                    }
                    i
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_jobs(jobs, 4)))
            .expect_err("the job panic must reach the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job 5 exploded"), "got panic payload: {msg:?}");
    }

    #[test]
    fn first_panic_in_input_order_wins() {
        // Job 1 panics but is slow; job 6 panics immediately. The caller
        // must still see job 1's payload: re-raise order follows input
        // position, not completion order.
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| {
                Box::new(move || {
                    if i == 1 {
                        let mut acc = 0u64;
                        for k in 0..2_000_000u64 {
                            acc = acc.wrapping_add(k);
                        }
                        std::hint::black_box(acc);
                        panic!("slow early panic");
                    }
                    if i == 6 {
                        panic!("fast late panic");
                    }
                    i
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_jobs(jobs, 8)))
            .expect_err("panics propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "slow early panic");
    }

    #[test]
    fn supervised_isolates_a_panicking_job() {
        let jobs: Vec<Box<dyn FnMut() -> u32 + Send>> = (0..6u32)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("point 2 is cursed");
                    }
                    i * 10
                }) as Box<dyn FnMut() -> u32 + Send>
            })
            .collect();
        let out = run_jobs_supervised(jobs, 3, 0);
        assert_eq!(out.len(), 6);
        for (i, outcome) in out.into_iter().enumerate() {
            if i == 2 {
                let JobOutcome::Failed { reason } = outcome else {
                    panic!("job 2 must fail");
                };
                assert!(reason.starts_with("panicked:"), "reason: {reason}");
                assert!(reason.contains("point 2 is cursed"), "reason: {reason}");
            } else {
                assert_eq!(outcome.ok(), Some(i as u32 * 10), "job {i} unaffected");
            }
        }
    }

    #[test]
    fn retries_rerun_the_same_job_until_it_succeeds() {
        // A job that panics on its first attempts and succeeds later:
        // recoverable only through the supervised entry point, and only
        // when the retry budget covers it.
        let mk = |failures: u32| {
            let mut calls = 0u32;
            move || {
                calls += 1;
                if calls <= failures {
                    panic!("transient failure #{calls}");
                }
                calls
            }
        };
        let out = run_jobs_supervised(vec![mk(2)], 1, 2);
        assert_eq!(out, vec![JobOutcome::Ok(3)], "succeeds on attempt 3 of 3");
        let out = run_jobs_supervised(vec![mk(2)], 1, 1);
        assert!(out[0].is_failed(), "retry budget of 1 is not enough");
        let JobOutcome::Failed { reason } = &out[0] else {
            unreachable!()
        };
        assert!(
            reason.contains("transient failure #2"),
            "the *last* attempt's panic is reported: {reason}"
        );
    }

    #[test]
    fn watchdog_panics_classify_as_wedged() {
        // The deterministic event-budget watchdog kills a wedged job with
        // an "event limit ... exceeded" panic; the supervisor labels it
        // `wedged:` so a report reader can tell livelock from a crash.
        let jobs: Vec<Box<dyn FnMut() + Send>> = vec![Box::new(|| {
            panic!("event limit 5000 exceeded at t=1.2ms — possible event loop")
        })];
        let out = run_jobs_supervised(jobs, 1, 0);
        let JobOutcome::Failed { reason } = &out[0] else {
            panic!("watchdog panic must surface as Failed");
        };
        assert!(reason.starts_with("wedged:"), "reason: {reason}");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
