//! Ablation "modern offload" (`repro abl-modern`): re-asks the paper's
//! question on 2026-class hosts.
//!
//! The grid sweeps {rx mode × link rate × I/OAT on/off} over three
//! workloads — the Fig. 4-shaped multi-stream microbenchmark, the
//! fabric-scale proxy/web datacenter (on the partitioned engine) and the
//! PVFS concurrent read. Every cell pairs a non-I/OAT and an I/OAT stack
//! that are otherwise identical: multi-queue RSS on (every 2026-class NIC
//! has it), the row's [`RxMode`], the row's line rate, and the
//! [`NodeProfile::Modern2026`] host calibration. The pair differs only in
//! the paper's I/OAT bundle (DMA copy engine + split headers), so the
//! per-row `cpu-ben%` column *is* the paper's claim re-measured in that
//! cell.
//!
//! Row ids are stable dotted paths (`abl.modern/mstream/10g/busypoll`) so
//! `.ci/bench_baseline.json` and the determinism suite can pin them; the
//! per-workload verdict (does the CPU advantage grow, shrink, vanish or
//! invert?) lands in [`FigureResult::notes`].

use crate::{sweep, FigureResult, FigureRows, ParsimStats, Row};
use ioat_core::calibration::NodeProfile;
use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::multistream::{self, MultiStreamConfig};
use ioat_core::IoatConfig;
use ioat_datacenter::run_partitioned;
use ioat_datacenter::scale::ScaleConfig;
use ioat_netsim::RxMode;
use ioat_pvfs::harness::{concurrent_read, PvfsConfig};
use ioat_simcore::time::Bandwidth;
use ioat_simcore::SimDuration;

/// Line rates of the grid, in Gbit/s.
pub const LINK_RATES_GBPS: [u64; 4] = [1, 10, 40, 100];

/// Workload axis of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModernWorkload {
    /// Fig. 4-shaped multi-stream microbenchmark (Mbps, server rx CPU).
    MultiStream,
    /// Fabric-scale proxy/web datacenter on the partitioned engine
    /// (TPS, proxy-tier CPU).
    DataCenter,
    /// PVFS concurrent read (MB/s, client CPU — the receive side, where
    /// the paper reports it for reads).
    Pvfs,
}

impl ModernWorkload {
    /// Every workload, in grid order.
    pub const ALL: [ModernWorkload; 3] = [
        ModernWorkload::MultiStream,
        ModernWorkload::DataCenter,
        ModernWorkload::Pvfs,
    ];

    /// Dotted-id segment (`abl.modern/<tag>/...`) and target suffix
    /// (`abl-modern-<tag>`).
    pub fn tag(&self) -> &'static str {
        match self {
            ModernWorkload::MultiStream => "mstream",
            ModernWorkload::DataCenter => "dc",
            ModernWorkload::Pvfs => "pvfs",
        }
    }

    fn unit(&self) -> &'static str {
        match self {
            ModernWorkload::MultiStream => "Mbps",
            ModernWorkload::DataCenter => "TPS",
            ModernWorkload::Pvfs => "MB/s",
        }
    }
}

/// Stable dotted row id of one grid cell.
pub fn row_id(wl: ModernWorkload, gbps: u64, mode: RxMode) -> String {
    format!("abl.modern/{}/{}g/{}", wl.tag(), gbps, mode.tag())
}

/// The non-I/OAT / I/OAT pair a cell compares: identical modern NIC
/// features, differing only in the DMA copy engine + split headers.
fn cell_pair(mode: RxMode) -> (IoatConfig, IoatConfig) {
    (
        IoatConfig::disabled()
            .with_multi_queue(true)
            .with_rx_mode(mode),
        IoatConfig::full_with_multi_queue().with_rx_mode(mode),
    )
}

fn is_quick(window: ExperimentWindow) -> bool {
    window.measure <= ExperimentWindow::quick().measure
}

/// The "cores you could reclaim" note for a polling cell: occupancy
/// counts the spin loop, utilization counts only work, and the gap is
/// capacity polling burns. Only polling cells have a gap worth printing.
fn occupancy_note(label: &str, non: (f64, f64), ioat: (f64, f64)) -> Option<String> {
    let gap = (non.1 - non.0).max(ioat.1 - ioat.0);
    if gap <= 0.01 {
        return None;
    }
    Some(format!(
        "  {label}: rx occupancy {:.0}%/{:.0}% vs useful cpu {:.0}%/{:.0}% \
         (non/ioat) — the gap is cores burned spinning, reclaimable by \
         irq or i/oat rx",
        non.1 * 100.0,
        ioat.1 * 100.0,
        non.0 * 100.0,
        ioat.0 * 100.0,
    ))
}

fn cell_mstream(window: ExperimentWindow, gbps: u64, mode: RxMode) -> (Row, Vec<String>) {
    let mut cfg = if is_quick(window) {
        MultiStreamConfig::quick_test(4)
    } else {
        MultiStreamConfig {
            ports: 4,
            ..MultiStreamConfig::paper(8)
        }
    };
    cfg.window = window;
    cfg.opts = ioat_netsim::SocketOpts::modern_2026();
    let cfg = cfg.with_link(Bandwidth::from_gbps(gbps), NodeProfile::Modern2026);
    let (non_io, ioat_io) = cell_pair(mode);
    let non = multistream::run(&cfg, non_io);
    let ioat = multistream::run(&cfg, ioat_io);
    let label = row_id(ModernWorkload::MultiStream, gbps, mode);
    let notes = occupancy_note(
        &label,
        (non.rx_cpu, non.rx_occupancy),
        (ioat.rx_cpu, ioat.rx_occupancy),
    )
    .into_iter()
    .collect();
    (
        Row {
            label,
            non_ioat: non.mbps,
            ioat: ioat.mbps,
            non_cpu: non.rx_cpu,
            ioat_cpu: ioat.rx_cpu,
        },
        notes,
    )
}

fn cell_pvfs(window: ExperimentWindow, gbps: u64, mode: RxMode) -> Row {
    let clients = if is_quick(window) { 2 } else { 4 };
    let mk = |io: IoatConfig| {
        let mut cfg = PvfsConfig::quick_test(2, clients, io);
        cfg.window = window;
        cfg.with_link(Bandwidth::from_gbps(gbps), NodeProfile::Modern2026)
    };
    let (non_io, ioat_io) = cell_pair(mode);
    let non = concurrent_read(&mk(non_io));
    let ioat = concurrent_read(&mk(ioat_io));
    Row {
        label: row_id(ModernWorkload::Pvfs, gbps, mode),
        non_ioat: non.mbytes_per_sec,
        ioat: ioat.mbytes_per_sec,
        non_cpu: non.client_cpu,
        ioat_cpu: ioat.client_cpu,
    }
}

fn cell_dc(
    window: ExperimentWindow,
    gbps: u64,
    mode: RxMode,
    sim_threads: usize,
) -> (Row, Vec<String>, u64, Vec<ParsimStats>) {
    let mk = |io: IoatConfig| {
        let mut cfg = if is_quick(window) {
            ScaleConfig::quick_test(io)
        } else {
            let mut cfg = ScaleConfig::fat_tree(4, 1.0, 192, io);
            cfg.think = SimDuration::from_millis(2);
            cfg.catalog_files = 500;
            cfg
        };
        cfg.window = window;
        cfg.profile = NodeProfile::Modern2026;
        cfg.fabric.host_bandwidth = Bandwidth::from_gbps(gbps);
        cfg.fabric.link_bandwidth = Bandwidth::from_gbps(gbps);
        cfg
    };
    let (non_io, ioat_io) = cell_pair(mode);
    let (non, non_rep) = run_partitioned(&mk(non_io), sim_threads);
    let (ioat, ioat_rep) = run_partitioned(&mk(ioat_io), sim_threads);
    let label = row_id(ModernWorkload::DataCenter, gbps, mode);
    let notes = occupancy_note(
        &label,
        (non.proxy_cpu, non.proxy_occupancy),
        (ioat.proxy_cpu, ioat.proxy_occupancy),
    )
    .into_iter()
    .collect();
    let row = Row {
        label: label.clone(),
        non_ioat: non.tps,
        ioat: ioat.tps,
        non_cpu: non.proxy_cpu,
        ioat_cpu: ioat.proxy_cpu,
    };
    let parsim = [("non", &non_rep), ("ioat", &ioat_rep)]
        .into_iter()
        .map(|(suffix, rep)| ParsimStats {
            label: format!("{label} {suffix}"),
            partitions: rep.partitions,
            rounds: rep.rounds,
            mean_window_ns: rep.mean_window_ns(),
            events: rep.events.clone(),
        })
        .collect();
    (row, notes, non.sim_events + ioat.sim_events, parsim)
}

/// The per-workload verdict line: compares the I/OAT relative CPU
/// benefit in the most 2007-like cell (1 GbE, classic interrupts) with
/// the least favorable modern cell (polling rx at ≥ 40 GbE) and names
/// the outcome.
fn verdict(wl: ModernWorkload, rows: &[Row]) -> String {
    let benefit = |gbps: u64, mode: RxMode| {
        rows.iter()
            .find(|r| r.label == row_id(wl, gbps, mode))
            .map(|r| r.cpu_benefit())
    };
    let base = benefit(1, RxMode::Interrupt).unwrap_or(0.0);
    let modern = [40u64, 100]
        .into_iter()
        .flat_map(|g| {
            [RxMode::BusyPoll, RxMode::ZeroCopy]
                .into_iter()
                .filter_map(move |m| benefit(g, m))
        })
        .fold(f64::INFINITY, f64::min);
    let word = if !modern.is_finite() {
        "unmeasured"
    } else if modern < -0.005 {
        "inverts"
    } else if modern.abs() <= 0.005 {
        "vanishes"
    } else if modern < base {
        "shrinks"
    } else {
        "grows"
    };
    // The DMA engine is one serialized 10 GB/s channel; past 40 GbE it
    // can throttle throughput even where per-byte CPU still favors it.
    let worst_tput = rows
        .iter()
        .filter(|r| {
            LINK_RATES_GBPS
                .iter()
                .filter(|g| **g >= 40)
                .any(|g| RxMode::ALL.iter().any(|m| r.label == row_id(wl, *g, *m)))
        })
        .map(Row::improvement)
        .fold(f64::INFINITY, f64::min);
    let tput_clause = if worst_tput.is_finite() && worst_tput < -0.02 {
        format!(
            "; throughput inverts where the engine channel saturates \
             ({:+.1}% at the worst >=40g cell)",
            worst_tput * 100.0
        )
    } else {
        String::new()
    };
    format!(
        "  {}: I/OAT CPU advantage {} on 2026 hosts \
         ({:+.1}% at 1g/irq -> {:+.1}% at worst >=40g polling cell){}",
        wl.tag(),
        word,
        base * 100.0,
        modern * 100.0,
        tput_clause
    )
}

fn build(
    name: &str,
    title: &str,
    unit: &str,
    workloads: &[ModernWorkload],
    window: ExperimentWindow,
    jobs: usize,
    sim_threads: usize,
) -> FigureResult {
    let mut points: Vec<(ModernWorkload, u64, RxMode)> = Vec::new();
    for &wl in workloads {
        for gbps in LINK_RATES_GBPS {
            for mode in RxMode::ALL {
                points.push((wl, gbps, mode));
            }
        }
    }
    let mut fig = ablation_modern_points(points, window, jobs, sim_threads);
    fig.name = name.to_string();
    fig.title = title.to_string();
    fig.unit = unit.to_string();
    if workloads.len() > 1 {
        fig.notes
            .push("  units: mstream Mbps, dc TPS, pvfs MB/s".to_string());
    }
    if let FigureRows::Compare(rows) = &fig.rows {
        let verdicts: Vec<String> = workloads.iter().map(|&wl| verdict(wl, rows)).collect();
        fig.notes.extend(verdicts);
    }
    fig
}

/// The grid over an explicit `(workload, gbps, rx mode)` cell list. The
/// determinism suite drives this with a miniature subset (debug builds
/// cannot afford the full 48-cell grid); the `abl-modern` targets are
/// exactly this with the standard cells plus verdict notes.
pub fn ablation_modern_points(
    points: Vec<(ModernWorkload, u64, RxMode)>,
    window: ExperimentWindow,
    jobs: usize,
    sim_threads: usize,
) -> FigureResult {
    let sim_threads = sim_threads.max(1);
    let results = sweep::run_jobs(
        points
            .into_iter()
            .map(|(wl, gbps, mode)| {
                move || match wl {
                    ModernWorkload::MultiStream => {
                        let (row, notes) = cell_mstream(window, gbps, mode);
                        (row, notes, 0, Vec::new())
                    }
                    ModernWorkload::DataCenter => cell_dc(window, gbps, mode, sim_threads),
                    ModernWorkload::Pvfs => {
                        (cell_pvfs(window, gbps, mode), Vec::new(), 0, Vec::new())
                    }
                }
            })
            .collect::<Vec<_>>(),
        jobs,
    );
    let mut fig = FigureResult::new(
        "abl-modern",
        "Ablation A4: modern offload grid, rx mode x link rate x I/OAT",
        "mixed",
        FigureRows::Compare(Vec::with_capacity(results.len())),
    );
    for (row, notes, events, parsim) in results {
        if let FigureRows::Compare(rows) = &mut fig.rows {
            rows.push(row);
        }
        fig.notes.extend(notes);
        fig.sim_events += events;
        fig.parsim.extend(parsim);
    }
    fig.notes.push(
        "  every cell: Modern2026 hosts (8 cores, 32 MB LLC, ~3x cheaper \
         per-packet costs), multi-queue RSS on; non vs ioat differ only in \
         DMA engine + split headers"
            .to_string(),
    );
    fig
}

/// The full modern-offload grid: all three workloads.
pub fn ablation_modern(window: ExperimentWindow, jobs: usize, sim_threads: usize) -> FigureResult {
    build(
        "abl-modern",
        "Ablation A4: modern offload grid, rx mode x link rate x I/OAT",
        "mixed",
        &ModernWorkload::ALL,
        window,
        jobs,
        sim_threads,
    )
}

/// One workload's slice of the grid (`abl-modern-mstream` / `-dc` /
/// `-pvfs`).
pub fn ablation_modern_slice(
    wl: ModernWorkload,
    window: ExperimentWindow,
    jobs: usize,
    sim_threads: usize,
) -> FigureResult {
    let name = format!("abl-modern-{}", wl.tag());
    let title = format!("Ablation A4 ({}): rx mode x link rate x I/OAT", wl.tag());
    build(&name, &title, wl.unit(), &[wl], window, jobs, sim_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_ids_are_stable_dotted_paths() {
        assert_eq!(
            row_id(ModernWorkload::MultiStream, 10, RxMode::BusyPoll),
            "abl.modern/mstream/10g/busypoll"
        );
        assert_eq!(
            row_id(ModernWorkload::DataCenter, 100, RxMode::ZeroCopy),
            "abl.modern/dc/100g/zerocopy"
        );
        assert_eq!(
            row_id(ModernWorkload::Pvfs, 1, RxMode::Interrupt),
            "abl.modern/pvfs/1g/irq"
        );
    }

    #[test]
    fn cell_pair_differs_only_in_the_ioat_bundle() {
        for mode in RxMode::ALL {
            let (non, ioat) = cell_pair(mode);
            assert!(!non.dma_engine && !non.split_header);
            assert!(ioat.dma_engine && ioat.split_header);
            assert!(non.multi_queue && ioat.multi_queue);
            assert_eq!(non.rx_mode, mode);
            assert_eq!(ioat.rx_mode, mode);
        }
    }

    #[test]
    fn zero_copy_cells_have_no_ioat_delta_by_construction() {
        // Under kernel-bypass rx the engine is unused and split headers
        // are a no-op, so both grid cells are the same simulation.
        let (row, _) = cell_mstream(ExperimentWindow::quick(), 40, RxMode::ZeroCopy);
        assert_eq!(row.non_ioat, row.ioat, "throughput must be identical");
        assert_eq!(row.non_cpu, row.ioat_cpu, "CPU must be identical");
    }

    #[test]
    fn mstream_grid_cell_shows_ioat_benefit_at_1g_irq() {
        let (row, _) = cell_mstream(ExperimentWindow::quick(), 1, RxMode::Interrupt);
        assert!(
            row.cpu_benefit() > 0.0,
            "classic rx at 1 GbE should still favor I/OAT, got {:.3}",
            row.cpu_benefit()
        );
    }

    #[test]
    fn busy_poll_cells_report_the_spin_occupancy_gap() {
        let (_, notes) = cell_mstream(ExperimentWindow::quick(), 10, RxMode::BusyPoll);
        assert!(
            !notes.is_empty(),
            "a busy-poll cell must note its occupancy/utilization gap"
        );
        assert!(
            notes[0].contains("occupancy"),
            "note names the gap: {notes:?}"
        );
        let (_, irq_notes) = cell_mstream(ExperimentWindow::quick(), 10, RxMode::Interrupt);
        assert!(
            irq_notes.is_empty(),
            "interrupt rx does not spin, so no gap to report: {irq_notes:?}"
        );
    }
}
