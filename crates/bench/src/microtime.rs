//! Minimal wall-clock bench harness for the `benches/` binaries.
//!
//! The offline build cannot depend on criterion, and the workloads are
//! deterministic simulations, so a median over a handful of iterations is
//! stable enough for regression spotting. Each `benches/*.rs` target is a
//! plain `fn main()` (`harness = false`) built on this module.

use std::time::Instant;

/// Default iteration count used by the bench binaries.
pub const DEFAULT_ITERS: u32 = 10;

/// Runs `f` once for warm-up and `iters` timed times, printing the median
/// wall-clock per iteration. Returns the median in milliseconds.
pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> f64 {
    let iters = iters.max(1);
    std::hint::black_box(f());
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!("{name:<44} median {median:>9.3} ms  (min {min:>8.3}, max {max:>8.3}, n={iters})");
    median
}

/// Prints the standard group header used by the bench binaries.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_median() {
        let mut calls = 0u32;
        let med = bench("noop", 3, || {
            calls += 1;
            calls
        });
        assert!(med >= 0.0);
        assert_eq!(calls, 4); // warm-up + 3 timed
    }
}
