//! Figure runners shared by the `repro` binary and the self-timing benches.
//!
//! One public function per table/figure of the paper's evaluation
//! section; each prints the same rows/series the paper reports and
//! returns them for programmatic use. See `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured records.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod microtime;

use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::{bandwidth, bidirectional, copybench, multistream, sockopts, splitup};
use ioat_core::IoatConfig;
use ioat_datacenter::emulated::{self, EmulatedConfig};
use ioat_datacenter::tiers::{self, DataCenterConfig};
use ioat_pvfs::harness::{concurrent_read, concurrent_write, multi_stream_read, PvfsConfig};

/// A generic labelled comparison row printed by every figure runner.
#[derive(Debug, Clone)]
pub struct Row {
    /// X-axis label (ports, threads, message size, trace, α, ...).
    pub label: String,
    /// Non-I/OAT primary metric (Mbps / TPS / MB/s, per figure).
    pub non_ioat: f64,
    /// I/OAT primary metric.
    pub ioat: f64,
    /// Non-I/OAT CPU utilization (0 when not reported for the figure).
    pub non_cpu: f64,
    /// I/OAT CPU utilization.
    pub ioat_cpu: f64,
}

impl Row {
    /// Relative throughput improvement of I/OAT.
    pub fn improvement(&self) -> f64 {
        if self.non_ioat == 0.0 {
            0.0
        } else {
            (self.ioat - self.non_ioat) / self.non_ioat
        }
    }

    /// The paper's relative CPU benefit.
    pub fn cpu_benefit(&self) -> f64 {
        if self.non_cpu == 0.0 {
            0.0
        } else {
            (self.non_cpu - self.ioat_cpu) / self.non_cpu
        }
    }
}

fn print_rows(title: &str, unit: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<16} {:>12} {:>12} {:>8} | {:>9} {:>9} {:>8}",
        "x",
        format!("non [{unit}]"),
        format!("ioat [{unit}]"),
        "tput+%",
        "non-cpu%",
        "ioat-cpu%",
        "cpu-ben%"
    );
    for r in rows {
        println!(
            "{:<16} {:>12.0} {:>12.0} {:>8.1} | {:>9.1} {:>9.1} {:>8.1}",
            r.label,
            r.non_ioat,
            r.ioat,
            r.improvement() * 100.0,
            r.non_cpu * 100.0,
            r.ioat_cpu * 100.0,
            r.cpu_benefit() * 100.0
        );
    }
}

/// Fig. 3a — bandwidth vs number of ports.
pub fn fig3a(window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = (1..=6)
        .map(|ports| {
            let mut cfg = bandwidth::BandwidthConfig::paper(ports);
            cfg.window = window;
            let c = bandwidth::compare(&cfg);
            Row {
                label: format!("{ports} ports"),
                non_ioat: c.non_ioat.mbps,
                ioat: c.ioat.mbps,
                non_cpu: c.non_ioat.rx_cpu,
                ioat_cpu: c.ioat.rx_cpu,
            }
        })
        .collect();
    print_rows("Fig 3a: Bandwidth (Mbps) vs ports", "Mbps", &rows);
    rows
}

/// Fig. 3b — bi-directional bandwidth vs number of ports.
pub fn fig3b(window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = (1..=6)
        .map(|ports| {
            let mut cfg = bidirectional::BidirConfig::paper(ports);
            cfg.window = window;
            let c = bidirectional::compare(&cfg);
            Row {
                label: format!("{ports} ports"),
                non_ioat: c.non_ioat.mbps,
                ioat: c.ioat.mbps,
                non_cpu: c.non_ioat.rx_cpu,
                ioat_cpu: c.ioat.rx_cpu,
            }
        })
        .collect();
    print_rows(
        "Fig 3b: Bi-directional bandwidth (Mbps) vs ports",
        "Mbps",
        &rows,
    );
    rows
}

/// Fig. 4 — multi-stream bandwidth vs thread count.
pub fn fig4(window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = [1usize, 2, 4, 6, 8, 10, 12]
        .into_iter()
        .map(|threads| {
            let mut cfg = multistream::MultiStreamConfig::paper(threads);
            cfg.window = window;
            let c = multistream::compare(&cfg);
            Row {
                label: format!("{threads} threads"),
                non_ioat: c.non_ioat.mbps,
                ioat: c.ioat.mbps,
                non_cpu: c.non_ioat.rx_cpu,
                ioat_cpu: c.ioat.rx_cpu,
            }
        })
        .collect();
    print_rows(
        "Fig 4: Multi-stream bandwidth (Mbps) vs threads",
        "Mbps",
        &rows,
    );
    rows
}

/// Fig. 5a — bandwidth under socket-optimization Cases 1–5.
pub fn fig5a(window: ExperimentWindow) -> Vec<Row> {
    let cfg = sockopts::SweepConfig { ports: 6, window };
    let rows: Vec<Row> = sockopts::sweep_bandwidth(&cfg)
        .into_iter()
        .map(|r| Row {
            label: r.case,
            non_ioat: r.comparison.non_ioat.mbps,
            ioat: r.comparison.ioat.mbps,
            non_cpu: r.comparison.non_ioat.rx_cpu,
            ioat_cpu: r.comparison.ioat.rx_cpu,
        })
        .collect();
    print_rows(
        "Fig 5a: Bandwidth under optimizations (Mbps)",
        "Mbps",
        &rows,
    );
    rows
}

/// Fig. 5b — bi-directional bandwidth under Cases 1–5.
pub fn fig5b(window: ExperimentWindow) -> Vec<Row> {
    let cfg = sockopts::SweepConfig { ports: 6, window };
    let rows: Vec<Row> = sockopts::sweep_bidirectional(&cfg)
        .into_iter()
        .map(|r| Row {
            label: r.case,
            non_ioat: r.comparison.non_ioat.mbps,
            ioat: r.comparison.ioat.mbps,
            non_cpu: r.comparison.non_ioat.rx_cpu,
            ioat_cpu: r.comparison.ioat.rx_cpu,
        })
        .collect();
    print_rows(
        "Fig 5b: Bi-dir bandwidth under optimizations (Mbps)",
        "Mbps",
        &rows,
    );
    rows
}

/// Fig. 6 — CPU copy vs DMA copy (µs, plus overlap).
pub fn fig6() -> Vec<copybench::CopyRow> {
    let t = copybench::table();
    println!("\n=== Fig 6: CPU-based copy vs DMA-based copy ===");
    println!(
        "{:<8} {:>12} {:>14} {:>10} {:>13} {:>8}",
        "size", "copy-cache", "copy-nocache", "DMA-copy", "DMA-overhead", "overlap%"
    );
    for r in &t {
        println!(
            "{:<8} {:>12.2} {:>14.2} {:>10.2} {:>13.2} {:>8.1}",
            ioat_simcore::time::units::fmt_bytes(r.size),
            r.copy_cache_us,
            r.copy_nocache_us,
            r.dma_copy_us,
            r.dma_overhead_us,
            r.overlap * 100.0
        );
    }
    t
}

/// Fig. 7a/7b — feature split-up across message sizes.
pub fn fig7(window: ExperimentWindow) -> Vec<splitup::SplitupRow> {
    let cfg = splitup::SplitupConfig { ports: 4, window };
    let mut out = Vec::new();
    println!("\n=== Fig 7: I/OAT split-up (4 ports) ===");
    println!(
        "{:<8} {:>9} {:>9} {:>9} | {:>8} {:>9} | {:>9} {:>10}",
        "size", "non", "dma", "split", "dma-cpu%", "split-cpu%", "dma-tput%", "split-tput%"
    );
    for size in splitup::small_sizes()
        .into_iter()
        .chain(splitup::large_sizes())
    {
        let r = splitup::row(&cfg, size);
        println!(
            "{:<8} {:>9.0} {:>9.0} {:>9.0} | {:>8.1} {:>9.1} | {:>9.1} {:>10.1}",
            ioat_simcore::time::units::fmt_bytes(size),
            r.non_ioat.mbps,
            r.ioat_dma.mbps,
            r.ioat_split.mbps,
            r.dma_cpu_benefit() * 100.0,
            r.split_cpu_benefit() * 100.0,
            r.dma_throughput_benefit() * 100.0,
            r.split_throughput_benefit() * 100.0
        );
        out.push(r);
    }
    out
}

/// Fig. 8a — data-center TPS with single-file traces.
pub fn fig8a(window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = [2u64, 4, 6, 8, 10]
        .into_iter()
        .enumerate()
        .map(|(i, kb)| {
            let mut non_cfg = DataCenterConfig::paper(IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = tiers::run_single_file(&non_cfg, kb * 1024);
            let ioat = tiers::run_single_file(&ioat_cfg, kb * 1024);
            Row {
                label: format!("Trace {} ({kb}K)", i + 1),
                non_ioat: non.tps,
                ioat: ioat.tps,
                non_cpu: non.proxy_cpu,
                ioat_cpu: ioat.proxy_cpu,
            }
        })
        .collect();
    print_rows("Fig 8a: Data-center TPS, single-file traces", "TPS", &rows);
    rows
}

/// Fig. 8b — data-center TPS with Zipf traces.
pub fn fig8b(window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = [0.95, 0.90, 0.75, 0.50]
        .into_iter()
        .map(|alpha| {
            let mut non_cfg = DataCenterConfig::paper(IoatConfig::disabled());
            non_cfg.window = window;
            non_cfg.proxy_cache_bytes = 512 << 20;
            non_cfg.client_ports = 4;
            non_cfg.tier_ports = 2;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = tiers::run_zipf(&non_cfg, alpha, 10_000, 2 * 1024);
            let ioat = tiers::run_zipf(&ioat_cfg, alpha, 10_000, 2 * 1024);
            Row {
                label: format!("alpha={alpha}"),
                non_ioat: non.tps,
                ioat: ioat.tps,
                non_cpu: non.proxy_cpu,
                ioat_cpu: ioat.proxy_cpu,
            }
        })
        .collect();
    print_rows("Fig 8b: Data-center TPS, Zipf traces", "TPS", &rows);
    rows
}

/// Fig. 9 — emulated clients inside the data-center (16 K file).
pub fn fig9(window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = emulated::paper_thread_counts()
        .into_iter()
        .map(|threads| {
            let mut non_cfg = EmulatedConfig::paper(threads, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg;
            ioat_cfg.ioat = IoatConfig::full();
            let non = emulated::run(&non_cfg);
            let ioat = emulated::run(&ioat_cfg);
            Row {
                label: format!("{threads} clients"),
                non_ioat: non.tps,
                ioat: ioat.tps,
                non_cpu: non.client_cpu,
                ioat_cpu: ioat.client_cpu,
            }
        })
        .collect();
    print_rows(
        "Fig 9: Emulated clients, 16K file (TPS, client CPU)",
        "TPS",
        &rows,
    );
    rows
}

fn pvfs_fig(title: &str, io_servers: usize, write: bool, window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = (1..=6)
        .map(|clients| {
            let mut non_cfg = PvfsConfig::paper(io_servers, clients, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let (non, ioat) = if write {
                (concurrent_write(&non_cfg), concurrent_write(&ioat_cfg))
            } else {
                (concurrent_read(&non_cfg), concurrent_read(&ioat_cfg))
            };
            // The paper reports client CPU for reads, server CPU for
            // writes (receiver side).
            let (ncpu, icpu) = if write {
                (non.server_cpu, ioat.server_cpu)
            } else {
                (non.client_cpu, ioat.client_cpu)
            };
            Row {
                label: format!("{clients} clients"),
                non_ioat: non.mbytes_per_sec,
                ioat: ioat.mbytes_per_sec,
                non_cpu: ncpu,
                ioat_cpu: icpu,
            }
        })
        .collect();
    print_rows(title, "MB/s", &rows);
    rows
}

/// Fig. 10a — PVFS concurrent read, 6 I/O servers.
pub fn fig10a(window: ExperimentWindow) -> Vec<Row> {
    pvfs_fig(
        "Fig 10a: PVFS concurrent read, 6 I/O servers",
        6,
        false,
        window,
    )
}

/// Fig. 10b — PVFS concurrent read, 5 I/O servers.
pub fn fig10b(window: ExperimentWindow) -> Vec<Row> {
    pvfs_fig(
        "Fig 10b: PVFS concurrent read, 5 I/O servers",
        5,
        false,
        window,
    )
}

/// Fig. 11a — PVFS concurrent write, 6 I/O servers.
pub fn fig11a(window: ExperimentWindow) -> Vec<Row> {
    pvfs_fig(
        "Fig 11a: PVFS concurrent write, 6 I/O servers",
        6,
        true,
        window,
    )
}

/// Fig. 11b — PVFS concurrent write, 5 I/O servers.
pub fn fig11b(window: ExperimentWindow) -> Vec<Row> {
    pvfs_fig(
        "Fig 11b: PVFS concurrent write, 5 I/O servers",
        5,
        true,
        window,
    )
}

/// Fig. 12 — PVFS multi-stream read, 1–64 emulated clients.
pub fn fig12(window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|threads| {
            let mut non_cfg = PvfsConfig::paper(6, 1, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = multi_stream_read(&non_cfg, threads);
            let ioat = multi_stream_read(&ioat_cfg, threads);
            Row {
                label: format!("{threads} clients"),
                non_ioat: non.mbytes_per_sec,
                ioat: ioat.mbytes_per_sec,
                non_cpu: non.client_cpu,
                ioat_cpu: ioat.client_cpu,
            }
        })
        .collect();
    print_rows("Fig 12: PVFS multi-stream read (client CPU)", "MB/s", &rows);
    rows
}

/// Ablation A1 — the multi-queue feature the paper could not measure
/// (§2.2.3): multi-stream bandwidth with interrupts spread across cores.
pub fn ablation_multiqueue(window: ExperimentWindow) -> Vec<Row> {
    let rows: Vec<Row> = [4usize, 8, 12]
        .into_iter()
        .map(|threads| {
            let mut cfg = multistream::MultiStreamConfig::paper(threads);
            cfg.window = window;
            let base = multistream::run(&cfg, IoatConfig::full());
            let mq = multistream::run(&cfg, IoatConfig::full_with_multi_queue());
            Row {
                label: format!("{threads} threads"),
                non_ioat: base.mbps,
                ioat: mq.mbps,
                non_cpu: base.rx_cpu,
                ioat_cpu: mq.rx_cpu,
            }
        })
        .collect();
    print_rows(
        "Ablation A1: I/OAT vs I/OAT+multi-queue (Mbps)",
        "Mbps",
        &rows,
    );
    rows
}

/// Ablation A2 — user-level asynchronous memcpy (§7/§8 future work):
/// where the pinning cost makes the copy engine unattractive.
pub fn ablation_async_memcpy() -> Vec<copybench::CopyRow> {
    use ioat_memsim::{AddressAllocator, DmaConfig, DmaEngine, DmaRequest};
    println!("\n=== Ablation A2: user-level async memcpy, pinning-cost sensitivity ===");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "size", "pin=25ns/page", "pin=250ns/page", "pin=1us/page"
    );
    let mut out = Vec::new();
    for size in copybench::paper_sizes() {
        let mut cols = Vec::new();
        for pin_ns in [25u64, 250, 1_000] {
            let cfg = DmaConfig {
                pin_per_page: ioat_simcore::SimDuration::from_nanos(pin_ns),
                ..DmaConfig::default()
            };
            let engine = DmaEngine::new(cfg, None);
            let mut alloc = AddressAllocator::new();
            let req = DmaRequest::new(alloc.alloc(size), alloc.alloc(size));
            cols.push(engine.total_cost(&req).as_micros_f64());
        }
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2}",
            ioat_simcore::time::units::fmt_bytes(size),
            cols[0],
            cols[1],
            cols[2]
        );
        out.push(copybench::row(size));
    }
    out
}

/// Ablation A3 — deterministic fault injection (`ioat-faults`).
///
/// Part 1 sweeps independent frame loss over {0, 1e-5, 1e-4, 1e-3} at
/// 2 ports for non-I/OAT and full I/OAT: throughput degrades as loss
/// grows (retransmissions burn wire time and stall the window), while
/// the I/OAT receive-side CPU advantage persists because retransmitted
/// bytes are re-charged through the same receive cost model. Part 2
/// crashes one of two PVFS I/O daemons for a third of the run and shows
/// the client deadline/failover machinery keeping data flowing.
pub fn ablation_faults(window: ExperimentWindow) -> Vec<Row> {
    use ioat_faults::{CrashWindow, FaultPlan, TimeWindow};
    use ioat_simcore::{SimDuration, SimTime};

    let mut rows = Vec::new();
    println!("\n=== Ablation A3a: frame loss vs throughput/CPU (2 ports) ===");
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "loss", "non[Mbps]", "ioat[Mbps]", "non-cpu%", "ioat-cpu%", "drops", "retx", "rto"
    );
    for p in [0.0, 1e-5, 1e-4, 1e-3] {
        let mut cfg = bandwidth::BandwidthConfig::paper(2);
        cfg.window = window;
        let plan = FaultPlan::bernoulli_loss(0xFA017, p);
        let non = bandwidth::run_with_faults(&cfg, IoatConfig::disabled(), &plan);
        let ioat = bandwidth::run_with_faults(&cfg, IoatConfig::full(), &plan);
        println!(
            "{:<10} {:>10.0} {:>10.0} {:>9.1} {:>9.1} | {:>8} {:>8} {:>8}",
            format!("{p:.0e}"),
            non.throughput.mbps,
            ioat.throughput.mbps,
            non.throughput.rx_cpu * 100.0,
            ioat.throughput.rx_cpu * 100.0,
            non.frames_dropped + ioat.frames_dropped,
            non.retransmits + ioat.retransmits,
            non.rto_timeouts + ioat.rto_timeouts,
        );
        rows.push(Row {
            label: format!("loss={p:.0e}"),
            non_ioat: non.throughput.mbps,
            ioat: ioat.throughput.mbps,
            non_cpu: non.throughput.rx_cpu,
            ioat_cpu: ioat.throughput.rx_cpu,
        });
    }

    println!("\n=== Ablation A3b: PVFS I/O-daemon crash + failover (2 servers) ===");
    let to = window.to();
    let mut crashed = PvfsConfig::quick_test(2, 2, IoatConfig::disabled());
    crashed.window = window;
    crashed.faults.crashes.push(CrashWindow {
        service: 0,
        window: TimeWindow::new(
            SimTime::from_nanos(to.as_nanos() / 10),
            SimTime::from_nanos(to.as_nanos() * 2 / 5),
        ),
    });
    crashed.retry.timeout = SimDuration::from_nanos((to.as_nanos() / 30).max(1_000_000));
    let mut clean = PvfsConfig::quick_test(2, 2, IoatConfig::disabled());
    clean.window = window;
    let c = concurrent_read(&clean);
    let f = concurrent_read(&crashed);
    println!(
        "clean   {:>8.0} MB/s\ncrashed {:>8.0} MB/s  (drops {}, timeouts {}, retries {}, \
         failovers {}, stale {}, failed {})",
        c.mbytes_per_sec,
        f.mbytes_per_sec,
        f.daemon_drops,
        f.timeouts,
        f.retries,
        f.failovers,
        f.stale_replies,
        f.failed_ops
    );
    rows
}

/// Runs the Fig. 7 configuration with tracing on, prints the per-category
/// CPU split-up over the measurement window for non-I/OAT and full I/OAT,
/// and writes the full-I/OAT run as a Perfetto-loadable Chrome trace plus
/// companion event/metrics CSVs next to it.
pub fn trace_fig7(window: ExperimentWindow, path: &std::path::Path) {
    use ioat_telemetry::{cpu_splitup, export, Tracer};
    let cfg = splitup::SplitupConfig { ports: 2, window };
    let msg = 64 * 1024;
    let mut last: Option<Tracer> = None;
    for (label, ioat) in [
        ("non-I/OAT", IoatConfig::disabled()),
        ("I/OAT full", IoatConfig::full()),
    ] {
        let tracer = Tracer::enabled();
        let (res, (from, to)) = splitup::run_one_traced(&cfg, ioat, msg, &tracer);
        let report = cpu_splitup(&tracer.events(), from, to);
        println!("\n=== Fig 7 CPU split-up ({label}, 64 KB messages) ===");
        print!("{}", report.render_table());
        for (cat, share) in report.receive_path_shares() {
            println!(
                "  {:<10} {:>5.1}% of the CPU receive path",
                cat.name(),
                share * 100.0
            );
        }
        println!(
            "  rx-cpu {:>5.1}%   goodput {:>6.0} Mbps   {} events",
            res.rx_cpu * 100.0,
            res.mbps,
            tracer.len()
        );
        last = Some(tracer);
    }
    let tracer = last.expect("loop ran");
    if let Err(e) = export::write_chrome_trace(path, &tracer) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let csv_events = path.with_extension("events.csv");
    if let Err(e) = std::fs::write(&csv_events, export::events_csv(&tracer.events())) {
        eprintln!("error: cannot write {}: {e}", csv_events.display());
        std::process::exit(1);
    }
    println!(
        "\nwrote {} ({} events) and {}",
        path.display(),
        tracer.len(),
        csv_events.display()
    );
    println!("open the JSON at https://ui.perfetto.dev or chrome://tracing");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_core::metrics::ExperimentWindow;

    #[test]
    fn row_math_matches_paper_definitions() {
        let r = Row {
            label: "x".into(),
            non_ioat: 8569.0,
            ioat: 9754.0,
            non_cpu: 0.60,
            ioat_cpu: 0.30,
        };
        // §5.2.1: 9754 vs 8569 TPS is "14% overall improvement".
        assert!((r.improvement() - 0.1383).abs() < 1e-3);
        // §4: 30% vs 60% CPU is a 50% relative benefit.
        assert!((r.cpu_benefit() - 0.5).abs() < 1e-12);
        let zero = Row {
            label: "z".into(),
            non_ioat: 0.0,
            ioat: 1.0,
            non_cpu: 0.0,
            ioat_cpu: 0.1,
        };
        assert_eq!(zero.improvement(), 0.0);
        assert_eq!(zero.cpu_benefit(), 0.0);
    }

    #[test]
    fn fig6_runner_returns_full_table() {
        let t = fig6();
        assert_eq!(t.len(), 7);
        assert!(t.iter().all(|r| r.copy_nocache_us > r.copy_cache_us));
    }

    #[test]
    fn abl_faults_degrades_monotonically_and_keeps_cpu_advantage() {
        let rows = ablation_faults(ExperimentWindow::quick());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.ioat_cpu < r.non_cpu,
                "I/OAT CPU advantage must persist at {}: {:.3} vs {:.3}",
                r.label,
                r.ioat_cpu,
                r.non_cpu
            );
        }
        assert!(
            rows[3].non_ioat < rows[0].non_ioat && rows[3].ioat < rows[0].ioat,
            "1e-3 loss must cost throughput on both configurations"
        );
    }

    #[test]
    fn quick_windows_run_a_whole_figure() {
        // Smoke: fig3a at quick windows produces 6 ordered rows.
        let rows = fig3a(ExperimentWindow::quick());
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(w[1].non_ioat > w[0].non_ioat, "bandwidth grows with ports");
        }
    }
}
