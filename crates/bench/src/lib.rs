//! Figure runners shared by the `repro` binary and the self-timing benches.
//!
//! One public builder per table/figure of the paper's evaluation section;
//! each is a *pure* function returning a [`FigureResult`] — no printing.
//! Every builder fans its independent configuration points across the
//! [`sweep`] thread pool (`jobs` workers), and [`render`] turns the result
//! into the table the paper reports. [`report::render_json`] serializes a
//! whole run for machine consumption (`repro --json`). See `DESIGN.md` §4
//! for the experiment index and `EXPERIMENTS.md` for paper-vs-measured
//! records.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod microtime;
pub mod modern;
pub mod report;
pub mod sweep;

use ioat_core::metrics::ExperimentWindow;
use ioat_core::microbench::{bandwidth, bidirectional, copybench, multistream, sockopts, splitup};
use ioat_core::{IoatConfig, SocketOpts};
use ioat_datacenter::emulated::{self, EmulatedConfig};
use ioat_datacenter::run_partitioned;
use ioat_datacenter::scale::ScaleConfig;
use ioat_datacenter::tiers::{self, DataCenterConfig};
use ioat_pvfs::harness::{
    concurrent_read, concurrent_write, mixed_streams, multi_stream_read, PvfsConfig,
};

/// A generic labelled comparison row printed by every figure runner.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Row {
    /// X-axis label (ports, threads, message size, trace, α, ...).
    pub label: String,
    /// Non-I/OAT primary metric (Mbps / TPS / MB/s, per figure).
    pub non_ioat: f64,
    /// I/OAT primary metric.
    pub ioat: f64,
    /// Non-I/OAT CPU utilization (0 when not reported for the figure).
    pub non_cpu: f64,
    /// I/OAT CPU utilization.
    pub ioat_cpu: f64,
}

impl Row {
    /// Relative throughput improvement of I/OAT.
    pub fn improvement(&self) -> f64 {
        if self.non_ioat == 0.0 {
            0.0
        } else {
            (self.ioat - self.non_ioat) / self.non_ioat
        }
    }

    /// The paper's relative CPU benefit.
    pub fn cpu_benefit(&self) -> f64 {
        if self.non_cpu == 0.0 {
            0.0
        } else {
            (self.non_cpu - self.ioat_cpu) / self.non_cpu
        }
    }
}

/// One row of the Ablation A2 pinning-cost sensitivity table.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PinningRow {
    /// Copied bytes.
    pub size: u64,
    /// Total user-level DMA copy cost (µs) at 25 ns / 250 ns / 1 µs
    /// per-page pinning.
    pub pin_us: [f64; 3],
}

/// Parallel-engine telemetry for one partitioned simulation: the
/// thread-count-invariant slice of the `ioat-parsim` run report.
/// Everything here is a pure function of the configuration — the
/// partition layout, per-partition event counts, and the
/// synchronization windows the conservative engine achieved — so it
/// participates in determinism comparisons. The worker-thread count is
/// deliberately excluded: like `wall_ms` it describes the host, not the
/// model, and the determinism contract says it must be unobservable.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParsimStats {
    /// Which simulation within the figure ("k=16 o=1 102K non", ...).
    pub label: String,
    /// Partitions the run was split into (fabric + one per server group).
    pub partitions: usize,
    /// Synchronization windows (rounds) the conservative engine executed.
    pub rounds: u64,
    /// Mean achieved window width in nanoseconds (horizon / rounds).
    pub mean_window_ns: f64,
    /// Events executed per partition; index 0 is the fabric partition.
    pub events: Vec<u64>,
}

/// The rows of one figure, preserving each table's native shape.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FigureRows {
    /// The standard 7-column I/OAT vs non-I/OAT comparison.
    Compare(Vec<Row>),
    /// The Fig. 6 CPU-copy vs DMA-copy latency table.
    Copy(Vec<copybench::CopyRow>),
    /// The Fig. 7 three-configuration feature split-up.
    Splitup(Vec<splitup::SplitupRow>),
    /// The Ablation A2 pinning-cost sensitivity table.
    Pinning(Vec<PinningRow>),
}

impl FigureRows {
    /// Number of rows, independent of shape.
    pub fn len(&self) -> usize {
        match self {
            FigureRows::Compare(r) => r.len(),
            FigureRows::Copy(r) => r.len(),
            FigureRows::Splitup(r) => r.len(),
            FigureRows::Pinning(r) => r.len(),
        }
    }

    /// True when the figure produced no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The complete, machine-readable result of one figure run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FigureResult {
    /// Target id (`fig3a`, `abl-faults`, ...).
    pub name: String,
    /// Human title, printed as the table heading.
    pub title: String,
    /// Primary-metric unit (Mbps / TPS / MB/s / µs).
    pub unit: String,
    /// The table body.
    pub rows: FigureRows,
    /// Extra renderer lines (recovery counters, failover summaries);
    /// printed verbatim after the table.
    pub notes: Vec<String>,
    /// Wall-clock spent building this figure, in milliseconds. Filled by
    /// [`run_figure`]; excluded from determinism comparisons.
    pub wall_ms: f64,
    /// Simulator events executed across every simulation the figure
    /// built, when the builder reports them (the `fig_fabric` family
    /// does; 0 elsewhere). Deterministic — included in comparisons; the
    /// JSON report derives `events_per_sec` from this and `wall_ms`.
    pub sim_events: u64,
    /// Peak resident set size of the process (Linux `VmHWM`) observed
    /// when the figure finished, in bytes; `None` off-Linux. A process
    /// high-water mark, so host-dependent and monotone across figures —
    /// excluded from determinism comparisons.
    pub peak_rss_bytes: Option<u64>,
    /// Why the figure failed, when it did: the supervisor's classified
    /// reason (`panicked: ...` / `wedged: ...` / `audit: ...`). `None`
    /// for a figure that completed cleanly; serialized as `status` +
    /// `error` in the JSON report.
    pub error: Option<String>,
    /// Parallel-in-simulation telemetry, one entry per partitioned
    /// simulation the figure built (the `fig_fabric` family; empty
    /// elsewhere). Thread-count invariant, so included in determinism
    /// comparisons; serialized as `parsim` in the schema-4 JSON report.
    pub parsim: Vec<ParsimStats>,
}

impl FigureResult {
    fn new(name: &str, title: &str, unit: &str, rows: FigureRows) -> Self {
        FigureResult {
            name: name.to_string(),
            title: title.to_string(),
            unit: unit.to_string(),
            rows,
            notes: Vec::new(),
            wall_ms: 0.0,
            sim_events: 0,
            peak_rss_bytes: None,
            error: None,
            parsim: Vec::new(),
        }
    }

    /// True when the supervisor recorded a failure for this figure.
    pub fn failed(&self) -> bool {
        self.error.is_some()
    }

    /// The standard comparison rows, or `None` for the specialized
    /// table shapes.
    pub fn compare_rows(&self) -> Option<&[Row]> {
        match &self.rows {
            FigureRows::Compare(r) => Some(r),
            _ => None,
        }
    }
}

/// Prints a [`FigureResult`] as the table the paper reports. This is the
/// single text renderer: builders never print, so they can run on worker
/// threads in any order while output stays deterministic.
pub fn render(fig: &FigureResult) {
    println!("\n=== {} ===", fig.title);
    match &fig.rows {
        FigureRows::Compare(rows) => {
            let unit = &fig.unit;
            println!(
                "{:<16} {:>12} {:>12} {:>8} | {:>9} {:>9} {:>8}",
                "x",
                format!("non [{unit}]"),
                format!("ioat [{unit}]"),
                "tput+%",
                "non-cpu%",
                "ioat-cpu%",
                "cpu-ben%"
            );
            for r in rows {
                println!(
                    "{:<16} {:>12.0} {:>12.0} {:>8.1} | {:>9.1} {:>9.1} {:>8.1}",
                    r.label,
                    r.non_ioat,
                    r.ioat,
                    r.improvement() * 100.0,
                    r.non_cpu * 100.0,
                    r.ioat_cpu * 100.0,
                    r.cpu_benefit() * 100.0
                );
            }
        }
        FigureRows::Copy(rows) => {
            println!(
                "{:<8} {:>12} {:>14} {:>10} {:>13} {:>8}",
                "size", "copy-cache", "copy-nocache", "DMA-copy", "DMA-overhead", "overlap%"
            );
            for r in rows {
                println!(
                    "{:<8} {:>12.2} {:>14.2} {:>10.2} {:>13.2} {:>8.1}",
                    ioat_simcore::time::units::fmt_bytes(r.size),
                    r.copy_cache_us,
                    r.copy_nocache_us,
                    r.dma_copy_us,
                    r.dma_overhead_us,
                    r.overlap * 100.0
                );
            }
        }
        FigureRows::Splitup(rows) => {
            println!(
                "{:<8} {:>9} {:>9} {:>9} | {:>8} {:>9} | {:>9} {:>10}",
                "size", "non", "dma", "split", "dma-cpu%", "split-cpu%", "dma-tput%", "split-tput%"
            );
            for r in rows {
                println!(
                    "{:<8} {:>9.0} {:>9.0} {:>9.0} | {:>8.1} {:>9.1} | {:>9.1} {:>10.1}",
                    ioat_simcore::time::units::fmt_bytes(r.msg_size),
                    r.non_ioat.mbps,
                    r.ioat_dma.mbps,
                    r.ioat_split.mbps,
                    r.dma_cpu_benefit() * 100.0,
                    r.split_cpu_benefit() * 100.0,
                    r.dma_throughput_benefit() * 100.0,
                    r.split_throughput_benefit() * 100.0
                );
            }
        }
        FigureRows::Pinning(rows) => {
            println!(
                "{:<10} {:>14} {:>14} {:>14}",
                "size", "pin=25ns/page", "pin=250ns/page", "pin=1us/page"
            );
            for r in rows {
                println!(
                    "{:<10} {:>14.2} {:>14.2} {:>14.2}",
                    ioat_simcore::time::units::fmt_bytes(r.size),
                    r.pin_us[0],
                    r.pin_us[1],
                    r.pin_us[2]
                );
            }
        }
    }
    for note in &fig.notes {
        println!("{note}");
    }
}

/// Builds the standard ports/threads/clients comparison figure by
/// fanning one job per point across `jobs` workers.
fn compare_figure<P, F>(
    name: &str,
    title: &str,
    unit: &str,
    points: Vec<P>,
    jobs: usize,
    point_fn: F,
) -> FigureResult
where
    P: Send,
    F: Fn(P) -> Row + Send + Sync,
{
    let point_fn = &point_fn;
    let rows = sweep::run_jobs(
        points
            .into_iter()
            .map(|p| move || point_fn(p))
            .collect::<Vec<_>>(),
        jobs,
    );
    FigureResult::new(name, title, unit, FigureRows::Compare(rows))
}

/// Fig. 3a — bandwidth vs number of ports.
pub fn fig3a(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "fig3a",
        "Fig 3a: Bandwidth (Mbps) vs ports",
        "Mbps",
        (1..=6).collect(),
        jobs,
        move |ports| {
            let mut cfg = bandwidth::BandwidthConfig::paper(ports);
            cfg.window = window;
            let c = bandwidth::compare(&cfg);
            Row {
                label: format!("{ports} ports"),
                non_ioat: c.non_ioat.mbps,
                ioat: c.ioat.mbps,
                non_cpu: c.non_ioat.rx_cpu,
                ioat_cpu: c.ioat.rx_cpu,
            }
        },
    )
}

/// Fig. 3b — bi-directional bandwidth vs number of ports.
pub fn fig3b(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "fig3b",
        "Fig 3b: Bi-directional bandwidth (Mbps) vs ports",
        "Mbps",
        (1..=6).collect(),
        jobs,
        move |ports| {
            let mut cfg = bidirectional::BidirConfig::paper(ports);
            cfg.window = window;
            let c = bidirectional::compare(&cfg);
            Row {
                label: format!("{ports} ports"),
                non_ioat: c.non_ioat.mbps,
                ioat: c.ioat.mbps,
                non_cpu: c.non_ioat.rx_cpu,
                ioat_cpu: c.ioat.rx_cpu,
            }
        },
    )
}

/// Fig. 4 — multi-stream bandwidth vs thread count.
pub fn fig4(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "fig4",
        "Fig 4: Multi-stream bandwidth (Mbps) vs threads",
        "Mbps",
        vec![1usize, 2, 4, 6, 8, 10, 12],
        jobs,
        move |threads| {
            let mut cfg = multistream::MultiStreamConfig::paper(threads);
            cfg.window = window;
            let c = multistream::compare(&cfg);
            Row {
                label: format!("{threads} threads"),
                non_ioat: c.non_ioat.mbps,
                ioat: c.ioat.mbps,
                non_cpu: c.non_ioat.rx_cpu,
                ioat_cpu: c.ioat.rx_cpu,
            }
        },
    )
}

fn sockopt_fig(
    name: &str,
    title: &str,
    window: ExperimentWindow,
    jobs: usize,
    bidirectional: bool,
) -> FigureResult {
    let cfg = sockopts::SweepConfig { ports: 6, window };
    compare_figure(
        name,
        title,
        "Mbps",
        SocketOpts::all_cases().to_vec(),
        jobs,
        move |(label, opts)| {
            let r = if bidirectional {
                sockopts::case_bidirectional(&cfg, label, opts)
            } else {
                sockopts::case_bandwidth(&cfg, label, opts)
            };
            Row {
                label: r.case,
                non_ioat: r.comparison.non_ioat.mbps,
                ioat: r.comparison.ioat.mbps,
                non_cpu: r.comparison.non_ioat.rx_cpu,
                ioat_cpu: r.comparison.ioat.rx_cpu,
            }
        },
    )
}

/// Fig. 5a — bandwidth under socket-optimization Cases 1–5.
pub fn fig5a(window: ExperimentWindow, jobs: usize) -> FigureResult {
    sockopt_fig(
        "fig5a",
        "Fig 5a: Bandwidth under optimizations (Mbps)",
        window,
        jobs,
        false,
    )
}

/// Fig. 5b — bi-directional bandwidth under Cases 1–5.
pub fn fig5b(window: ExperimentWindow, jobs: usize) -> FigureResult {
    sockopt_fig(
        "fig5b",
        "Fig 5b: Bi-dir bandwidth under optimizations (Mbps)",
        window,
        jobs,
        true,
    )
}

/// Fig. 6 — CPU copy vs DMA copy (µs, plus overlap).
pub fn fig6(jobs: usize) -> FigureResult {
    let rows = sweep::run_jobs(
        copybench::paper_sizes()
            .into_iter()
            .map(|size| move || copybench::row(size))
            .collect::<Vec<_>>(),
        jobs,
    );
    FigureResult::new(
        "fig6",
        "Fig 6: CPU-based copy vs DMA-based copy",
        "us",
        FigureRows::Copy(rows),
    )
}

/// Fig. 7a/7b — feature split-up across message sizes.
pub fn fig7(window: ExperimentWindow, jobs: usize) -> FigureResult {
    let cfg = splitup::SplitupConfig { ports: 4, window };
    let rows = sweep::run_jobs(
        splitup::small_sizes()
            .into_iter()
            .chain(splitup::large_sizes())
            .map(|size| move || splitup::row(&cfg, size))
            .collect::<Vec<_>>(),
        jobs,
    );
    FigureResult::new(
        "fig7",
        "Fig 7: I/OAT split-up (4 ports)",
        "Mbps",
        FigureRows::Splitup(rows),
    )
}

/// Fig. 8a — data-center TPS with single-file traces.
pub fn fig8a(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "fig8a",
        "Fig 8a: Data-center TPS, single-file traces",
        "TPS",
        [2u64, 4, 6, 8, 10].into_iter().enumerate().collect(),
        jobs,
        move |(i, kb)| {
            let mut non_cfg = DataCenterConfig::paper(IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = tiers::run_single_file(&non_cfg, kb * 1024);
            let ioat = tiers::run_single_file(&ioat_cfg, kb * 1024);
            Row {
                label: format!("Trace {} ({kb}K)", i + 1),
                non_ioat: non.tps,
                ioat: ioat.tps,
                non_cpu: non.proxy_cpu,
                ioat_cpu: ioat.proxy_cpu,
            }
        },
    )
}

/// Fig. 8b — data-center TPS with Zipf traces.
pub fn fig8b(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "fig8b",
        "Fig 8b: Data-center TPS, Zipf traces",
        "TPS",
        vec![0.95, 0.90, 0.75, 0.50],
        jobs,
        move |alpha| {
            let mut non_cfg = DataCenterConfig::paper(IoatConfig::disabled());
            non_cfg.window = window;
            non_cfg.proxy_cache_bytes = 512 << 20;
            non_cfg.client_ports = 4;
            non_cfg.tier_ports = 2;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = tiers::run_zipf(&non_cfg, alpha, 10_000, 2 * 1024);
            let ioat = tiers::run_zipf(&ioat_cfg, alpha, 10_000, 2 * 1024);
            Row {
                label: format!("alpha={alpha}"),
                non_ioat: non.tps,
                ioat: ioat.tps,
                non_cpu: non.proxy_cpu,
                ioat_cpu: ioat.proxy_cpu,
            }
        },
    )
}

/// Fig. 9 — emulated clients inside the data-center (16 K file).
pub fn fig9(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "fig9",
        "Fig 9: Emulated clients, 16K file (TPS, client CPU)",
        "TPS",
        emulated::paper_thread_counts(),
        jobs,
        move |threads| {
            let mut non_cfg = EmulatedConfig::paper(threads, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg;
            ioat_cfg.ioat = IoatConfig::full();
            let non = emulated::run(&non_cfg);
            let ioat = emulated::run(&ioat_cfg);
            Row {
                label: format!("{threads} clients"),
                non_ioat: non.tps,
                ioat: ioat.tps,
                non_cpu: non.client_cpu,
                ioat_cpu: ioat.client_cpu,
            }
        },
    )
}

fn pvfs_fig(
    name: &str,
    title: &str,
    io_servers: usize,
    write: bool,
    window: ExperimentWindow,
    jobs: usize,
) -> FigureResult {
    compare_figure(
        name,
        title,
        "MB/s",
        (1..=6).collect(),
        jobs,
        move |clients| {
            let mut non_cfg = PvfsConfig::paper(io_servers, clients, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let (non, ioat) = if write {
                (concurrent_write(&non_cfg), concurrent_write(&ioat_cfg))
            } else {
                (concurrent_read(&non_cfg), concurrent_read(&ioat_cfg))
            };
            // The paper reports client CPU for reads, server CPU for
            // writes (receiver side).
            let (ncpu, icpu) = if write {
                (non.server_cpu, ioat.server_cpu)
            } else {
                (non.client_cpu, ioat.client_cpu)
            };
            Row {
                label: format!("{clients} clients"),
                non_ioat: non.mbytes_per_sec,
                ioat: ioat.mbytes_per_sec,
                non_cpu: ncpu,
                ioat_cpu: icpu,
            }
        },
    )
}

/// Fig. 10a — PVFS concurrent read, 6 I/O servers.
pub fn fig10a(window: ExperimentWindow, jobs: usize) -> FigureResult {
    pvfs_fig(
        "fig10a",
        "Fig 10a: PVFS concurrent read, 6 I/O servers",
        6,
        false,
        window,
        jobs,
    )
}

/// Fig. 10b — PVFS concurrent read, 5 I/O servers.
pub fn fig10b(window: ExperimentWindow, jobs: usize) -> FigureResult {
    pvfs_fig(
        "fig10b",
        "Fig 10b: PVFS concurrent read, 5 I/O servers",
        5,
        false,
        window,
        jobs,
    )
}

/// Fig. 11a — PVFS concurrent write, 6 I/O servers.
pub fn fig11a(window: ExperimentWindow, jobs: usize) -> FigureResult {
    pvfs_fig(
        "fig11a",
        "Fig 11a: PVFS concurrent write, 6 I/O servers",
        6,
        true,
        window,
        jobs,
    )
}

/// Fig. 11b — PVFS concurrent write, 5 I/O servers.
pub fn fig11b(window: ExperimentWindow, jobs: usize) -> FigureResult {
    pvfs_fig(
        "fig11b",
        "Fig 11b: PVFS concurrent write, 5 I/O servers",
        5,
        true,
        window,
        jobs,
    )
}

/// Fig. 12 — PVFS multi-stream read, 1–64 emulated clients.
pub fn fig12(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "fig12",
        "Fig 12: PVFS multi-stream read (client CPU)",
        "MB/s",
        vec![1usize, 2, 4, 8, 16, 32, 64],
        jobs,
        move |threads| {
            let mut non_cfg = PvfsConfig::paper(6, 1, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = multi_stream_read(&non_cfg, threads);
            let ioat = multi_stream_read(&ioat_cfg, threads);
            Row {
                label: format!("{threads} clients"),
                non_ioat: non.mbytes_per_sec,
                ioat: ioat.mbytes_per_sec,
                non_cpu: non.client_cpu,
                ioat_cpu: ioat.client_cpu,
            }
        },
    )
}

// --- The `fig_pvfs_extended` family (`repro ext-pvfs-*`) ---------------
//
// PVFS scenarios beyond the paper's figures, on the corrected
// single-threaded cost model. Row labels are stable dotted IDs
// (`group/case`, the nereid convention): the group names the swept
// dimension, the case its point — refactors rewire the builders without
// renaming a row, so reports stay diffable across time.

/// ext-pvfs-stripe — striping-factor sweep past the paper's 6 servers:
/// each extra I/O daemon brings its own GigE port, so the wire ceiling
/// keeps climbing while the shared 4-core client node's receive path
/// (where the reads land) saturates — the I/OAT gap is widest exactly
/// where the node, not the wire, is the constraint.
pub fn ext_pvfs_stripe(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "ext-pvfs-stripe",
        "Ext: PVFS read vs striping factor (6 clients)",
        "MB/s",
        vec![2usize, 4, 6, 8, 10, 12],
        jobs,
        move |servers| {
            let mut non_cfg = PvfsConfig::paper(servers, 6, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = concurrent_read(&non_cfg);
            let ioat = concurrent_read(&ioat_cfg);
            Row {
                label: format!("pvfs.stripe/s{servers}"),
                non_ioat: non.mbytes_per_sec,
                ioat: ioat.mbytes_per_sec,
                non_cpu: non.client_cpu,
                ioat_cpu: ioat.client_cpu,
            }
        },
    )
}

/// ext-pvfs-clients — concurrent-client scaling beyond the paper's 6
/// compute processes, at the paper's 6 servers.
pub fn ext_pvfs_clients(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "ext-pvfs-clients",
        "Ext: PVFS read vs client count (6 servers)",
        "MB/s",
        vec![2usize, 4, 6, 8, 12, 16],
        jobs,
        move |clients| {
            let mut non_cfg = PvfsConfig::paper(6, clients, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = concurrent_read(&non_cfg);
            let ioat = concurrent_read(&ioat_cfg);
            Row {
                label: format!("pvfs.clients/c{clients}"),
                non_ioat: non.mbytes_per_sec,
                ioat: ioat.mbytes_per_sec,
                non_cpu: non.client_cpu,
                ioat_cpu: ioat.client_cpu,
            }
        },
    )
}

/// ext-pvfs-stripesize — stripe-unit sensitivity around the PVFS 1.x
/// 64 KB default (6 servers × 6 clients, reads): small stripes pay the
/// per-piece request/bookkeeping overhead more often, large stripes
/// lump the serial per-piece work into coarser grains.
pub fn ext_pvfs_stripesize(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "ext-pvfs-stripesize",
        "Ext: PVFS read vs stripe size (6x6)",
        "MB/s",
        vec![16u64, 32, 64, 128, 256],
        jobs,
        move |stripe_kb| {
            let mut non_cfg = PvfsConfig::paper(6, 6, IoatConfig::disabled());
            non_cfg.window = window;
            non_cfg.stripe = stripe_kb * 1024;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = concurrent_read(&non_cfg);
            let ioat = concurrent_read(&ioat_cfg);
            Row {
                label: format!("pvfs.stripe_size/{stripe_kb}k"),
                non_ioat: non.mbytes_per_sec,
                ioat: ioat.mbytes_per_sec,
                non_cpu: non.client_cpu,
                ioat_cpu: ioat.client_cpu,
            }
        },
    )
}

/// ext-pvfs-mixed — mixed read/write streams over the same daemons
/// (6 servers, 6 clients, r readers + w writers). The CPU columns
/// report the I/O-server node: it receives every write and serves every
/// read, so it is the shared resource the mix contends on.
pub fn ext_pvfs_mixed(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "ext-pvfs-mixed",
        "Ext: PVFS mixed read/write streams (6x6)",
        "MB/s",
        vec![6usize, 4, 3, 2, 0],
        jobs,
        move |readers| {
            let mut non_cfg = PvfsConfig::paper(6, 6, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = mixed_streams(&non_cfg, readers);
            let ioat = mixed_streams(&ioat_cfg, readers);
            Row {
                label: format!("pvfs.mixed/r{readers}w{}", 6 - readers),
                non_ioat: non.mbytes_per_sec,
                ioat: ioat.mbytes_per_sec,
                non_cpu: non.server_cpu,
                ioat_cpu: ioat.server_cpu,
            }
        },
    )
}

/// ext-pvfs-meta — metadata-manager contention: every open queues behind
/// the single serial manager daemon (§3.2 — one process), so the time
/// until the *last* client's open completes grows superlinearly with the
/// client count. The primary metric is that completion time in µs, not
/// bandwidth; I/OAT barely moves it (metadata messages are far below the
/// copy-offload threshold), which is itself the result.
pub fn ext_pvfs_meta(window: ExperimentWindow, jobs: usize) -> FigureResult {
    let mut fig = compare_figure(
        "ext-pvfs-meta",
        "Ext: PVFS metadata-manager contention (2 servers)",
        "us",
        vec![4usize, 8, 16, 32],
        jobs,
        move |clients| {
            let mut non_cfg = PvfsConfig::paper(2, clients, IoatConfig::disabled());
            non_cfg.window = window;
            let mut ioat_cfg = non_cfg.clone();
            ioat_cfg.ioat = IoatConfig::full();
            let non = concurrent_read(&non_cfg);
            let ioat = concurrent_read(&ioat_cfg);
            Row {
                label: format!("pvfs.meta/c{clients}"),
                non_ioat: non.last_open_us,
                ioat: ioat.last_open_us,
                non_cpu: non.server_cpu,
                ioat_cpu: ioat.server_cpu,
            }
        },
    );
    fig.notes.push(
        "  metric: time until the last client's open completes (us); \
         opens serialize on the single manager daemon"
            .to_string(),
    );
    fig
}

/// Ablation A1 — the multi-queue feature the paper could not measure
/// (§2.2.3): multi-stream bandwidth with interrupts spread across cores.
pub fn ablation_multiqueue(window: ExperimentWindow, jobs: usize) -> FigureResult {
    compare_figure(
        "abl-mq",
        "Ablation A1: I/OAT vs I/OAT+multi-queue (Mbps)",
        "Mbps",
        vec![4usize, 8, 12],
        jobs,
        move |threads| {
            let mut cfg = multistream::MultiStreamConfig::paper(threads);
            cfg.window = window;
            let base = multistream::run(&cfg, IoatConfig::full());
            let mq = multistream::run(&cfg, IoatConfig::full_with_multi_queue());
            Row {
                label: format!("{threads} threads"),
                non_ioat: base.mbps,
                ioat: mq.mbps,
                non_cpu: base.rx_cpu,
                ioat_cpu: mq.rx_cpu,
            }
        },
    )
}

/// Ablation A2 — user-level asynchronous memcpy (§7/§8 future work):
/// where the pinning cost makes the copy engine unattractive.
pub fn ablation_async_memcpy(jobs: usize) -> FigureResult {
    use ioat_memsim::{AddressAllocator, DmaConfig, DmaEngine, DmaRequest};
    let rows = sweep::run_jobs(
        copybench::paper_sizes()
            .into_iter()
            .map(|size| {
                move || {
                    let mut pin_us = [0.0f64; 3];
                    for (slot, pin_ns) in pin_us.iter_mut().zip([25u64, 250, 1_000]) {
                        let cfg = DmaConfig {
                            pin_per_page: ioat_simcore::SimDuration::from_nanos(pin_ns),
                            ..DmaConfig::default()
                        };
                        let engine = DmaEngine::new(cfg, None);
                        let mut alloc = AddressAllocator::new();
                        let req = DmaRequest::new(alloc.alloc(size), alloc.alloc(size));
                        *slot = engine.total_cost(&req).as_micros_f64();
                    }
                    PinningRow { size, pin_us }
                }
            })
            .collect::<Vec<_>>(),
        jobs,
    );
    FigureResult::new(
        "abl-copy",
        "Ablation A2: user-level async memcpy, pinning-cost sensitivity",
        "us",
        FigureRows::Pinning(rows),
    )
}

/// Ablation A3 — deterministic fault injection (`ioat-faults`).
///
/// Part 1 sweeps independent frame loss over {0, 1e-5, 1e-4, 1e-3} at
/// 2 ports for non-I/OAT and full I/OAT: throughput degrades as loss
/// grows (retransmissions burn wire time and stall the window), while
/// the I/OAT receive-side CPU advantage persists because retransmitted
/// bytes are re-charged through the same receive cost model. Part 2
/// crashes one of two PVFS I/O daemons for a third of the run and shows
/// the client deadline/failover machinery keeping data flowing; its
/// summary lands in [`FigureResult::notes`].
pub fn ablation_faults(window: ExperimentWindow, jobs: usize) -> FigureResult {
    use ioat_faults::{CrashWindow, FaultPlan, TimeWindow};
    use ioat_simcore::{SimDuration, SimTime};

    let point_jobs: Vec<_> = [0.0, 1e-5, 1e-4, 1e-3]
        .into_iter()
        .map(|p| {
            move || {
                let mut cfg = bandwidth::BandwidthConfig::paper(2);
                cfg.window = window;
                let plan = FaultPlan::bernoulli_loss(0xFA017, p);
                let non = bandwidth::run_with_faults(&cfg, IoatConfig::disabled(), &plan);
                let ioat = bandwidth::run_with_faults(&cfg, IoatConfig::full(), &plan);
                let row = Row {
                    label: format!("loss={p:.0e}"),
                    non_ioat: non.throughput.mbps,
                    ioat: ioat.throughput.mbps,
                    non_cpu: non.throughput.rx_cpu,
                    ioat_cpu: ioat.throughput.rx_cpu,
                };
                let note = format!(
                    "  loss={p:<7.0e} drops {:>6}  retx {:>6}  rto {:>4}",
                    non.frames_dropped + ioat.frames_dropped,
                    non.retransmits + ioat.retransmits,
                    non.rto_timeouts + ioat.rto_timeouts,
                );
                (row, note)
            }
        })
        .collect();
    let (rows, mut notes): (Vec<Row>, Vec<String>) =
        sweep::run_jobs(point_jobs, jobs).into_iter().unzip();

    // Part 2: PVFS I/O-daemon crash + failover, clean vs crashed run.
    let to = window.to();
    let mut crashed = PvfsConfig::quick_test(2, 2, IoatConfig::disabled());
    crashed.window = window;
    crashed.faults.crashes.push(CrashWindow {
        service: 0,
        window: TimeWindow::new(
            SimTime::from_nanos(to.as_nanos() / 10),
            SimTime::from_nanos(to.as_nanos() * 2 / 5),
        ),
    });
    crashed.retry.timeout = SimDuration::from_nanos((to.as_nanos() / 30).max(1_000_000));
    let mut clean = PvfsConfig::quick_test(2, 2, IoatConfig::disabled());
    clean.window = window;
    let mut failover = sweep::run_jobs(
        vec![
            Box::new(move || concurrent_read(&clean)) as Box<dyn FnOnce() -> _ + Send>,
            Box::new(move || concurrent_read(&crashed)),
        ],
        jobs,
    );
    let f = failover.pop().expect("two failover jobs");
    let c = failover.pop().expect("two failover jobs");
    notes.push("--- A3b: PVFS I/O-daemon crash + failover (2 servers) ---".to_string());
    notes.push(format!("  clean   {:>8.0} MB/s", c.mbytes_per_sec));
    notes.push(format!(
        "  crashed {:>8.0} MB/s  (drops {}, timeouts {}, retries {}, failovers {}, stale {}, failed {})",
        f.mbytes_per_sec, f.daemon_drops, f.timeouts, f.retries, f.failovers, f.stale_replies,
        f.failed_ops
    ));

    let mut fig = FigureResult::new(
        "abl-faults",
        "Ablation A3a: frame loss vs throughput/CPU (2 ports)",
        "Mbps",
        FigureRows::Compare(rows),
    );
    fig.notes = notes;
    fig
}

/// The fabric family — the datacenter behind a fat-tree Clos fabric,
/// swept over host count × oversubscription with I/OAT on/off. Quick
/// windows run a two-point smoke on a 1024-host fat-tree(16) with
/// ~10 K emulated clients; full windows add the oversubscription sweep
/// at ~100 K clients and the fat-tree(24) headline point fronting
/// ~10⁶ clients. Every point runs on the conservative parallel engine
/// (`ioat_datacenter::run_partitioned`) with `sim_threads` workers —
/// results are bit-identical at any worker count, so `sim_threads` only
/// buys wall-clock. Unlike the paper figures this family also reports
/// simulator scale: total events executed (and thus events/sec in the
/// JSON report), per-partition event counts and achieved window sizes
/// ([`ParsimStats`]), plus per-point tail-latency and switch-drop notes.
pub fn fig_fabric(window: ExperimentWindow, jobs: usize, sim_threads: usize) -> FigureResult {
    let quick = window.measure <= ExperimentWindow::quick().measure;
    let points: Vec<(usize, f64, usize)> = if quick {
        vec![(16, 1.0, 10_240), (16, 4.0, 10_240)]
    } else {
        vec![
            (16, 1.0, 102_400),
            (16, 2.0, 102_400),
            (16, 4.0, 102_400),
            (24, 4.0, 1_000_512),
        ]
    };
    fig_fabric_points(points, window, jobs, sim_threads)
}

/// The `fig_fabric` sweep over an explicit `(k, oversubscription,
/// clients)` point list. The determinism suite drives this with a
/// miniature point set (debug builds cannot afford 1024-host sweeps);
/// [`fig_fabric`] is exactly this with the standard points.
pub fn fig_fabric_points(
    points: Vec<(usize, f64, usize)>,
    window: ExperimentWindow,
    jobs: usize,
    sim_threads: usize,
) -> FigureResult {
    let sim_threads = sim_threads.max(1);
    let results = sweep::run_jobs(
        points
            .into_iter()
            .map(|(k, oversub, clients)| {
                move || {
                    let mut non_cfg =
                        ScaleConfig::fat_tree(k, oversub, clients, IoatConfig::disabled());
                    non_cfg.window = window;
                    let mut ioat_cfg = non_cfg;
                    ioat_cfg.ioat = IoatConfig::full();
                    let (non, non_rep) = run_partitioned(&non_cfg, sim_threads);
                    let (ioat, ioat_rep) = run_partitioned(&ioat_cfg, sim_threads);
                    let label = format!("k={k} o={oversub:.0} {}K", clients / 1000);
                    let row = Row {
                        label: label.clone(),
                        non_ioat: non.tps,
                        ioat: ioat.tps,
                        non_cpu: non.proxy_cpu,
                        ioat_cpu: ioat.proxy_cpu,
                    };
                    let note = format!(
                        "  k={k:<2} o={oversub:.0} {:>5} hosts {clients:>9} clients: \
                         p50 {:>6} us  p99 {:>7} us  drops {:>7}  web-cpu {:>5.1}%",
                        k * k * k / 4,
                        ioat.latency_p50_us,
                        ioat.latency_p99_us,
                        non.tail_drops + ioat.tail_drops,
                        ioat.web_cpu * 100.0
                    );
                    let parsim: Vec<ParsimStats> = [("non", &non_rep), ("ioat", &ioat_rep)]
                        .into_iter()
                        .map(|(suffix, rep)| ParsimStats {
                            label: format!("{label} {suffix}"),
                            partitions: rep.partitions,
                            rounds: rep.rounds,
                            mean_window_ns: rep.mean_window_ns(),
                            events: rep.events.clone(),
                        })
                        .collect();
                    (row, note, non.sim_events + ioat.sim_events, parsim)
                }
            })
            .collect::<Vec<_>>(),
        jobs,
    );
    let mut fig = FigureResult::new(
        "fig_fabric",
        "Fabric: fat-tree datacenter TPS, hosts x oversubscription",
        "TPS",
        FigureRows::Compare(Vec::with_capacity(results.len())),
    );
    for (row, note, events, parsim) in results {
        if let FigureRows::Compare(rows) = &mut fig.rows {
            rows.push(row);
        }
        fig.notes.push(note);
        fig.sim_events += events;
        fig.parsim.extend(parsim);
    }
    fig
}

/// Ablation A5 — the fabric fault domain at datacenter scale.
///
/// Sweeps link-flap count × crashed-switch count over the `fig_fabric`
/// fat-tree(16) with I/OAT off/on. Every cell runs with the overload
/// protections armed — a proxy admission budget and hedged retries — so
/// the table reports not just degradation (TPS/p99 under faults) but the
/// recovery machinery at work: ECMP failover, shed load, hedge wins.
/// The flap schedules are prefix-supersets (f2's windows are a prefix of
/// f8's), so blackhole counts are structurally monotone in flap count.
pub fn abl_fabric_faults(
    window: ExperimentWindow,
    jobs: usize,
    sim_threads: usize,
) -> FigureResult {
    let quick = window.measure <= ExperimentWindow::quick().measure;
    let clients = if quick { 10_240 } else { 102_400 };
    let grid: Vec<(u32, u32)> = vec![(0, 0), (2, 0), (8, 0), (0, 2), (2, 2), (8, 2)];
    abl_fabric_faults_points(16, clients, grid, window, jobs, sim_threads)
}

/// The `abl-fabric-faults` sweep over an explicit topology size and
/// `(flaps_per_link, crashed_switches)` grid. The determinism suite
/// drives this with a miniature fat-tree (debug builds cannot afford
/// 1024-host sweeps); [`abl_fabric_faults`] is exactly this with the
/// standard grid.
pub fn abl_fabric_faults_points(
    k: usize,
    clients: usize,
    grid: Vec<(u32, u32)>,
    window: ExperimentWindow,
    jobs: usize,
    sim_threads: usize,
) -> FigureResult {
    use ioat_datacenter::scale::FabricFaultSpec;
    use ioat_faults::RetryPolicy;
    use ioat_simcore::SimDuration;

    let sim_threads = sim_threads.max(1);
    // Hedge deadline tracks the window so quick smokes still hedge: a
    // tenth of the measurement span, floored at 1 ms.
    let hedge = RetryPolicy {
        timeout: SimDuration::from_nanos((window.measure.as_nanos() / 10).max(1_000_000)),
        max_retries: 2,
        backoff: 2.0,
    };
    let results = sweep::run_jobs(
        grid.into_iter()
            .map(|(flaps, crashed)| {
                move || {
                    let mut non_cfg =
                        ScaleConfig::fat_tree(k, 1.0, clients, IoatConfig::disabled());
                    non_cfg.window = window;
                    non_cfg.faults = FabricFaultSpec {
                        flaps_per_link: flaps,
                        crashed_switches: crashed,
                        ..FabricFaultSpec::none()
                    };
                    non_cfg.admit_budget = Some(32);
                    non_cfg.hedge = Some(hedge);
                    let mut ioat_cfg = non_cfg;
                    ioat_cfg.ioat = IoatConfig::full();
                    let (non, non_rep) = run_partitioned(&non_cfg, sim_threads);
                    let (ioat, ioat_rep) = run_partitioned(&ioat_cfg, sim_threads);
                    let label = format!("abl.fabfault/f{flaps}c{crashed}");
                    let row = Row {
                        label: label.clone(),
                        non_ioat: non.tps,
                        ioat: ioat.tps,
                        non_cpu: non.proxy_cpu,
                        ioat_cpu: ioat.proxy_cpu,
                    };
                    let note = format!(
                        "  f{flaps} c{crashed}: p99 {:>7}/{:>7} us  blackholes {:>7}  \
                         shed {:>6}  hedges {:>6}",
                        non.latency_p99_us,
                        ioat.latency_p99_us,
                        non.route_blackholes + ioat.route_blackholes,
                        non.shed + ioat.shed,
                        non.hedges + ioat.hedges,
                    );
                    let parsim: Vec<ParsimStats> = [("non", &non_rep), ("ioat", &ioat_rep)]
                        .into_iter()
                        .map(|(suffix, rep)| ParsimStats {
                            label: format!("{label} {suffix}"),
                            partitions: rep.partitions,
                            rounds: rep.rounds,
                            mean_window_ns: rep.mean_window_ns(),
                            events: rep.events.clone(),
                        })
                        .collect();
                    (row, note, non.sim_events + ioat.sim_events, parsim)
                }
            })
            .collect::<Vec<_>>(),
        jobs,
    );
    let mut fig = FigureResult::new(
        "abl-fabric-faults",
        "Ablation A5: fabric faults, flaps x crashed switches, protection armed",
        "TPS",
        FigureRows::Compare(Vec::with_capacity(results.len())),
    );
    for (row, note, events, parsim) in results {
        if let FigureRows::Compare(rows) = &mut fig.rows {
            rows.push(row);
        }
        fig.notes.push(note);
        fig.sim_events += events;
        fig.parsim.extend(parsim);
    }
    fig
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`), or
/// `None` where `/proc/self/status` is unavailable. Monotone over the
/// process lifetime — a per-figure reading is "the high-water mark so
/// far", which is exactly the bound the `fig_fabric` acceptance
/// criterion cares about.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))?
        .split_whitespace()
        .next()?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Builds one figure by target name, timing the build. Returns `None`
/// for an unknown name — the `repro` CLI validates names first.
/// `sim_threads` sets the partitioned-engine worker count for the
/// figures that run on it (the `fig_fabric` family and the datacenter
/// cells of `abl-modern`; the paper figures are single simulations and
/// ignore it). Results are bit-identical at any `sim_threads` value.
pub fn run_figure(
    name: &str,
    window: ExperimentWindow,
    jobs: usize,
    sim_threads: usize,
) -> Option<FigureResult> {
    let start = std::time::Instant::now();
    let mut fig = match name {
        "fig3a" => fig3a(window, jobs),
        "fig3b" => fig3b(window, jobs),
        "fig4" => fig4(window, jobs),
        "fig5a" => fig5a(window, jobs),
        "fig5b" => fig5b(window, jobs),
        "fig6" => fig6(jobs),
        "fig7" => fig7(window, jobs),
        "fig8a" => fig8a(window, jobs),
        "fig8b" => fig8b(window, jobs),
        "fig9" => fig9(window, jobs),
        "fig10a" => fig10a(window, jobs),
        "fig10b" => fig10b(window, jobs),
        "fig11a" => fig11a(window, jobs),
        "fig11b" => fig11b(window, jobs),
        "fig12" => fig12(window, jobs),
        "ext-pvfs-stripe" => ext_pvfs_stripe(window, jobs),
        "ext-pvfs-clients" => ext_pvfs_clients(window, jobs),
        "ext-pvfs-stripesize" => ext_pvfs_stripesize(window, jobs),
        "ext-pvfs-mixed" => ext_pvfs_mixed(window, jobs),
        "ext-pvfs-meta" => ext_pvfs_meta(window, jobs),
        "abl-mq" => ablation_multiqueue(window, jobs),
        "abl-copy" => ablation_async_memcpy(jobs),
        "abl-faults" => ablation_faults(window, jobs),
        "abl-modern" => modern::ablation_modern(window, jobs, sim_threads),
        "abl-modern-mstream" => modern::ablation_modern_slice(
            modern::ModernWorkload::MultiStream,
            window,
            jobs,
            sim_threads,
        ),
        "abl-modern-dc" => modern::ablation_modern_slice(
            modern::ModernWorkload::DataCenter,
            window,
            jobs,
            sim_threads,
        ),
        "abl-modern-pvfs" => {
            modern::ablation_modern_slice(modern::ModernWorkload::Pvfs, window, jobs, sim_threads)
        }
        "abl-fabric-faults" => abl_fabric_faults(window, jobs, sim_threads),
        "fig_fabric" => fig_fabric(window, jobs, sim_threads),
        _ => return None,
    };
    fig.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    fig.peak_rss_bytes = peak_rss_bytes();
    Some(fig)
}

/// Options for [`run_figure_supervised`].
#[derive(Debug, Clone)]
pub struct SuperviseOpts {
    /// Open an audit scope around the figure (the `--audit` flag): every
    /// runtime invariant check collects a structured violation instead of
    /// debug-panicking, and any violation marks the figure failed. Audits
    /// are pure reads over counters, so rows stay bit-identical either way.
    pub audit: bool,
    /// Extra whole-figure attempts after a failure before giving up.
    pub retries: usize,
    /// Deterministic watchdog: clamps every simulation the figure builds
    /// to this many events, so a wedged job dies with a reproducible
    /// `event limit exceeded` panic rather than hanging. Rides on the
    /// audit scope, so it requires `audit`. `None` keeps the engine's
    /// default 2·10⁹-event cap (still a hard bound, just a generous one).
    pub event_budget: Option<u64>,
    /// Inject a deliberate panic into the named figure's sweep (the
    /// `--fail` flag): CI's forced-failure smoke uses this to prove a
    /// crashing figure is isolated and reported without faking anything
    /// in the reporting path itself.
    pub force_fail: Option<String>,
    /// Partitioned-engine worker count for the figures that run on it
    /// (the `--sim-threads` flag; see [`run_figure`]). Defaults to 1.
    pub sim_threads: usize,
}

impl Default for SuperviseOpts {
    fn default() -> Self {
        SuperviseOpts {
            audit: false,
            retries: 0,
            event_budget: None,
            force_fail: None,
            sim_threads: 1,
        }
    }
}

/// [`run_figure`] under supervision: panics (including the event-budget
/// watchdog's) and audit violations become [`FigureResult::error`]
/// instead of crashing the run, after up to `opts.retries` whole-figure
/// re-attempts. Successful figures are byte-for-byte what [`run_figure`]
/// returns (modulo `wall_ms`). Returns `None` only for an unknown name.
pub fn run_figure_supervised(
    name: &str,
    window: ExperimentWindow,
    jobs: usize,
    opts: &SuperviseOpts,
) -> Option<FigureResult> {
    let start = std::time::Instant::now();
    let force = opts.force_fail.as_deref() == Some(name);
    let mut attempts = 0usize;
    loop {
        attempts += 1;
        let build = || {
            if force {
                // Push the deliberate panic through the sweep pool so the
                // smoke exercises the exact worker/catch_unwind path a real
                // point failure takes under `--jobs N`.
                let poison: Vec<Box<dyn FnOnce() + Send>> = vec![
                    Box::new(|| ()),
                    Box::new(move || panic!("deliberate failure injected by --fail")),
                ];
                sweep::run_jobs(poison, jobs);
            }
            run_figure(name, window, jobs, opts.sim_threads)
        };
        let (result, violations) = if opts.audit {
            ioat_guard::with_audit_budget(opts.event_budget, build)
        } else {
            (
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(build)),
                Vec::new(),
            )
        };
        // A failure carries the classified reason plus, for audit
        // failures, the rows that were built anyway (evidence for the
        // report reader; `status: "failed"` still marks them suspect).
        let (reason, partial) = match result {
            Err(payload) => (ioat_guard::failure_reason(payload.as_ref()), None),
            Ok(None) => return None,
            Ok(Some(mut fig)) => {
                if violations.is_empty() {
                    fig.wall_ms = start.elapsed().as_secs_f64() * 1e3;
                    return Some(fig);
                }
                (
                    format!(
                        "audit: {} violation(s); first: {}",
                        violations.len(),
                        violations[0]
                    ),
                    Some(fig),
                )
            }
        };
        if attempts <= opts.retries {
            continue;
        }
        let mut fig = partial.unwrap_or_else(|| {
            FigureResult::new(
                name,
                &format!("{name} (failed)"),
                "",
                FigureRows::Compare(Vec::new()),
            )
        });
        fig.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        fig.peak_rss_bytes = peak_rss_bytes();
        fig.error = Some(reason);
        return Some(fig);
    }
}

/// Runs the Fig. 7 configuration with tracing on, prints the per-category
/// CPU split-up over the measurement window for non-I/OAT and full I/OAT,
/// and writes the full-I/OAT run as a Perfetto-loadable Chrome trace plus
/// companion event/metrics CSVs next to it. Tracing is inherently
/// single-threaded; this path never uses the sweep pool.
pub fn trace_fig7(window: ExperimentWindow, path: &std::path::Path) {
    use ioat_telemetry::{cpu_splitup, export, Tracer};
    let cfg = splitup::SplitupConfig { ports: 2, window };
    let msg = 64 * 1024;
    let mut last: Option<Tracer> = None;
    for (label, ioat) in [
        ("non-I/OAT", IoatConfig::disabled()),
        ("I/OAT full", IoatConfig::full()),
    ] {
        let tracer = Tracer::enabled();
        let (res, (from, to)) = splitup::run_one_traced(&cfg, ioat, msg, &tracer);
        let report = cpu_splitup(&tracer.events(), from, to);
        println!("\n=== Fig 7 CPU split-up ({label}, 64 KB messages) ===");
        print!("{}", report.render_table());
        for (cat, share) in report.receive_path_shares() {
            println!(
                "  {:<10} {:>5.1}% of the CPU receive path",
                cat.name(),
                share * 100.0
            );
        }
        println!(
            "  rx-cpu {:>5.1}%   goodput {:>6.0} Mbps   {} events",
            res.rx_cpu * 100.0,
            res.mbps,
            tracer.len()
        );
        last = Some(tracer);
    }
    let tracer = last.expect("loop ran");
    if let Err(e) = export::write_chrome_trace(path, &tracer) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let csv_events = path.with_extension("events.csv");
    if let Err(e) = std::fs::write(&csv_events, export::events_csv(&tracer.events())) {
        eprintln!("error: cannot write {}: {e}", csv_events.display());
        std::process::exit(1);
    }
    println!(
        "\nwrote {} ({} events) and {}",
        path.display(),
        tracer.len(),
        csv_events.display()
    );
    println!("open the JSON at https://ui.perfetto.dev or chrome://tracing");
}

/// Runs the Fig. 10a configuration (6 servers × 6 clients, concurrent
/// read) with tracing on for non-I/OAT and full I/OAT, prints the
/// per-component CPU split-up on both nodes — this is the telemetry view
/// that diagnosed the PVFS throughput bug: the I/O-server node's daemons
/// barely register while the compute node's process-context receive path
/// saturates, so the binding constraint is CPU, not the wire — and writes
/// the full-I/OAT run as a Perfetto-loadable Chrome trace plus the event
/// CSV, exactly like [`trace_fig7`]. Single-threaded by design.
pub fn trace_fig10a(window: ExperimentWindow, path: &std::path::Path) {
    use ioat_pvfs::harness::concurrent_read_traced;
    use ioat_telemetry::{cpu_splitup, export, Category, Tracer};
    let elapsed = (window.to() - window.from()).as_secs_f64();
    let mut last: Option<Tracer> = None;
    for (label, ioat) in [
        ("non-I/OAT", IoatConfig::disabled()),
        ("I/OAT full", IoatConfig::full()),
    ] {
        let mut cfg = PvfsConfig::paper(6, 6, ioat);
        cfg.window = window;
        let tracer = Tracer::enabled();
        let res = concurrent_read_traced(&cfg, &tracer);
        let report = cpu_splitup(&tracer.events(), window.from(), window.to());
        println!("\n=== Fig 10a CPU split-up ({label}, 6 servers x 6 clients, read) ===");
        print!("{}", report.render_table());
        // Core-equivalents per node over the window: node 0 is the
        // compute (client) node, node 1 the I/O-server node.
        for (node, name) in [(0u32, "compute"), (1u32, "io-server")] {
            let mut line = format!("  {name:<10}");
            let mut total = 0.0;
            for cat in [
                Category::Interrupt,
                Category::Protocol,
                Category::Copy,
                Category::Dma,
                Category::App,
            ] {
                let busy: f64 = report
                    .tracks()
                    .filter(|t| t.node == node)
                    .map(|t| report.busy_on(t, cat).as_secs_f64())
                    .sum();
                total += busy / elapsed;
                line.push_str(&format!(" {}={:.2}", cat.name(), busy / elapsed));
            }
            println!("{line}  total={total:.2} cores");
        }
        println!(
            "  bandwidth {:>6.0} MB/s   client-cpu {:>5.1}%   server-cpu {:>5.1}%   {} events",
            res.mbytes_per_sec,
            res.client_cpu * 100.0,
            res.server_cpu * 100.0,
            tracer.len()
        );
        last = Some(tracer);
    }
    let tracer = last.expect("loop ran");
    if let Err(e) = export::write_chrome_trace(path, &tracer) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let csv_events = path.with_extension("events.csv");
    if let Err(e) = std::fs::write(&csv_events, export::events_csv(&tracer.events())) {
        eprintln!("error: cannot write {}: {e}", csv_events.display());
        std::process::exit(1);
    }
    println!(
        "\nwrote {} ({} events) and {}",
        path.display(),
        tracer.len(),
        csv_events.display()
    );
    println!("open the JSON at https://ui.perfetto.dev or chrome://tracing");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_core::metrics::ExperimentWindow;

    #[test]
    fn row_math_matches_paper_definitions() {
        let r = Row {
            label: "x".into(),
            non_ioat: 8569.0,
            ioat: 9754.0,
            non_cpu: 0.60,
            ioat_cpu: 0.30,
        };
        // §5.2.1: 9754 vs 8569 TPS is "14% overall improvement".
        assert!((r.improvement() - 0.1383).abs() < 1e-3);
        // §4: 30% vs 60% CPU is a 50% relative benefit.
        assert!((r.cpu_benefit() - 0.5).abs() < 1e-12);
        let zero = Row {
            label: "z".into(),
            non_ioat: 0.0,
            ioat: 1.0,
            non_cpu: 0.0,
            ioat_cpu: 0.1,
        };
        assert_eq!(zero.improvement(), 0.0);
        assert_eq!(zero.cpu_benefit(), 0.0);
    }

    #[test]
    fn fig6_runner_returns_full_table() {
        let fig = fig6(2);
        let FigureRows::Copy(t) = &fig.rows else {
            panic!("fig6 produces the copy table");
        };
        assert_eq!(t.len(), 7);
        assert!(t.iter().all(|r| r.copy_nocache_us > r.copy_cache_us));
        render(&fig); // smoke: the renderer handles every shape
    }

    #[test]
    fn abl_faults_degrades_monotonically_and_keeps_cpu_advantage() {
        let fig = ablation_faults(ExperimentWindow::quick(), 2);
        let rows = fig.compare_rows().expect("loss sweep is a compare table");
        assert_eq!(rows.len(), 4);
        for r in rows {
            assert!(
                r.ioat_cpu < r.non_cpu,
                "I/OAT CPU advantage must persist at {}: {:.3} vs {:.3}",
                r.label,
                r.ioat_cpu,
                r.non_cpu
            );
        }
        assert!(
            rows[3].non_ioat < rows[0].non_ioat && rows[3].ioat < rows[0].ioat,
            "1e-3 loss must cost throughput on both configurations"
        );
        assert!(
            fig.notes.iter().any(|n| n.contains("failover")),
            "A3b summary rides in the notes"
        );
    }

    #[test]
    fn abl_fabric_faults_mini_grid_reports_rows_and_recovery_notes() {
        // Mini fat-tree(4) stand-in for the release-scale grid: stable
        // dotted row ids, per-cell recovery notes, and partitioned-engine
        // telemetry all present.
        let fig =
            abl_fabric_faults_points(4, 96, vec![(0, 0), (6, 2)], ExperimentWindow::quick(), 2, 1);
        let rows = fig.compare_rows().expect("compare table");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "abl.fabfault/f0c0");
        assert_eq!(rows[1].label, "abl.fabfault/f6c2");
        assert!(rows.iter().all(|r| r.non_ioat > 0.0 && r.ioat > 0.0));
        assert!(
            fig.notes.iter().all(|n| n.contains("blackholes")),
            "every cell records its recovery counters: {:?}",
            fig.notes
        );
        assert!(!fig.parsim.is_empty(), "dc cells report engine telemetry");
        assert!(fig.sim_events > 0);
    }

    #[test]
    fn quick_windows_run_a_whole_figure() {
        // Smoke: fig3a at quick windows produces 6 ordered rows.
        let fig = fig3a(ExperimentWindow::quick(), 2);
        let rows = fig.compare_rows().expect("fig3a is a compare table");
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(w[1].non_ioat > w[0].non_ioat, "bandwidth grows with ports");
        }
    }

    #[test]
    fn ext_pvfs_rows_are_identical_at_any_job_count() {
        // The acceptance bar for the fig_pvfs_extended family: rows are
        // a pure function of the configuration, so the sweep-pool worker
        // count must be unobservable.
        let w = ExperimentWindow::quick();
        let a = ext_pvfs_meta(w, 1);
        let b = ext_pvfs_meta(w, 8);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.notes, b.notes);
        let rows = a.compare_rows().expect("compare table");
        assert_eq!(rows.len(), 4);
        // Stable dotted IDs, and contention grows with client count.
        assert_eq!(rows[0].label, "pvfs.meta/c4");
        assert_eq!(rows[3].label, "pvfs.meta/c32");
        assert!(
            rows[3].non_ioat > rows[0].non_ioat,
            "32 opens must queue longer than 4: {} vs {}",
            rows[3].non_ioat,
            rows[0].non_ioat
        );
    }

    #[test]
    fn run_figure_times_and_dispatches() {
        let fig = run_figure("fig6", ExperimentWindow::quick(), 1, 1).expect("fig6 is known");
        assert_eq!(fig.name, "fig6");
        assert!(fig.wall_ms > 0.0);
        assert!(fig.error.is_none(), "unsupervised success carries no error");
        assert!(run_figure("nope", ExperimentWindow::quick(), 1, 1).is_none());
    }

    #[test]
    fn supervision_and_audit_do_not_perturb_rows() {
        // The --audit acceptance criterion at unit scale: rows must be
        // bit-identical with the audit scope open and closed, because
        // audits are pure reads at quiescent points.
        let w = ExperimentWindow::quick();
        let plain = run_figure("fig6", w, 2, 1).expect("known");
        let opts = SuperviseOpts {
            audit: true,
            ..SuperviseOpts::default()
        };
        let audited = run_figure_supervised("fig6", w, 2, &opts).expect("known");
        assert!(audited.error.is_none(), "error: {:?}", audited.error);
        assert_eq!(plain.rows, audited.rows);
        assert_eq!(plain.notes, audited.notes);
        assert!(
            run_figure_supervised("nope", w, 2, &opts).is_none(),
            "unknown names still return None under supervision"
        );
    }

    #[test]
    fn forced_failure_is_isolated_and_classified() {
        let opts = SuperviseOpts {
            force_fail: Some("fig6".to_string()),
            ..SuperviseOpts::default()
        };
        let fig = run_figure_supervised("fig6", ExperimentWindow::quick(), 4, &opts)
            .expect("known figure");
        let reason = fig.error.as_deref().expect("forced failure is recorded");
        assert!(reason.starts_with("panicked:"), "reason: {reason}");
        assert!(
            reason.contains("--fail"),
            "reason names the cause: {reason}"
        );
        assert!(fig.rows.is_empty(), "a crashed figure reports no rows");
        // The same options leave *other* figures untouched.
        let ok = run_figure_supervised("abl-copy", ExperimentWindow::quick(), 4, &opts)
            .expect("known figure");
        assert!(ok.error.is_none());
        assert!(!ok.rows.is_empty());
    }

    #[test]
    fn event_budget_watchdog_reports_a_wedged_figure() {
        // 5000 events is far below what even a quick fig3a point needs,
        // so every simulation trips the deterministic watchdog; the
        // supervisor must classify that as `wedged:`, not `panicked:`.
        let opts = SuperviseOpts {
            audit: true,
            event_budget: Some(5_000),
            ..SuperviseOpts::default()
        };
        let fig = run_figure_supervised("fig3a", ExperimentWindow::quick(), 2, &opts)
            .expect("known figure");
        let reason = fig.error.as_deref().expect("watchdog fired");
        assert!(reason.starts_with("wedged:"), "reason: {reason}");
        assert!(reason.contains("event limit"), "reason: {reason}");
    }
}
