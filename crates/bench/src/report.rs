//! Machine-readable run reports (`repro --json`).
//!
//! Hand-rolled JSON, same approach as `ioat-telemetry`'s Chrome-trace
//! exporter: the offline build has no registry serde, and the in-tree
//! `serde` facade is a no-op stub, so the writer walks [`FigureResult`]s
//! directly. The document is stable enough to commit (`BENCH_pr5.json`)
//! and diff across PRs: figures appear in request order, rows in input
//! order, and every number comes from a deterministic simulation — only
//! the `*_wall_ms` fields vary between hosts.
//!
//! Schema `ioat-bench/2` adds per-figure `status` ("ok"/"failed") and
//! `error` (the supervisor's classified failure reason, or null): a
//! partial-failure run still produces a complete, parseable report with
//! every surviving figure's rows intact.
//!
//! Schema `ioat-bench/3` adds per-figure simulator-scale metrics for the
//! fabric family: `sim_events` (deterministic; 0 when a figure does not
//! report them), `events_per_sec` (derived from `sim_events` and
//! `wall_ms`, null when either is unavailable), and `peak_rss_bytes`
//! (process `VmHWM`, null off-Linux). Like `*_wall_ms`, the last two
//! vary between hosts and must be stripped before determinism diffs.
//!
//! Schema `ioat-bench/4` adds the parallel-in-simulation fields:
//! `sim_threads` in the header (the `--sim-threads` worker count the run
//! was *requested* with — host policy, like `jobs`) and a per-figure
//! `parsim` array (one entry per partitioned simulation: partition
//! count, rounds, mean achieved window in nanoseconds, and per-partition
//! event counts). The `parsim` payload is deliberately thread-count
//! invariant — it is part of the determinism contract and must be
//! byte-identical at any `--sim-threads` value.

use crate::{FigureResult, FigureRows};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An `f64` as a JSON number. JSON has no NaN/Infinity; those become
/// `null` rather than corrupting the document.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Header metadata recorded at the top of the document.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Whether `--quick` windows were used.
    pub quick: bool,
    /// Worker count the sweep executor ran with.
    pub jobs: usize,
    /// Partitioned-engine worker count the run was requested with
    /// (`--sim-threads`). Header-only: per-figure payloads stay
    /// thread-count invariant.
    pub sim_threads: usize,
    /// Wall-clock for the whole run in milliseconds (all figures,
    /// including render time).
    pub total_wall_ms: f64,
}

/// Renders the full report document for a run's figures.
pub fn render_json(meta: &RunMeta, figures: &[FigureResult]) -> String {
    let mut out = String::with_capacity(figures.len() * 2048 + 256);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"ioat-bench/4\",");
    let _ = writeln!(out, "  \"quick\": {},", meta.quick);
    let _ = writeln!(out, "  \"jobs\": {},", meta.jobs);
    let _ = writeln!(out, "  \"sim_threads\": {},", meta.sim_threads);
    let _ = writeln!(out, "  \"total_wall_ms\": {},", num(meta.total_wall_ms));
    out.push_str("  \"figures\": [");
    for (i, fig) in figures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&figure_json(fig, "    "));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn figure_json(fig: &FigureResult, indent: &str) -> String {
    // Schema 2: `status` is "ok"/"failed" and `error` carries the
    // supervisor's classified reason (or null). The fields sit between
    // the identity header and `wall_ms` so partial-failure runs diff
    // cleanly against a clean baseline (only the failed figure changes).
    let error = match &fig.error {
        Some(reason) => format!("\"{}\"", esc(reason)),
        None => "null".to_string(),
    };
    // Schema 3: events/sec only when both inputs are meaningful — a
    // figure that doesn't count events (sim_events 0) or a zeroed-out
    // wall clock (determinism fixtures) yields null, not 0 or Infinity.
    let events_per_sec = if fig.sim_events > 0 && fig.wall_ms.is_finite() && fig.wall_ms > 0.0 {
        num(fig.sim_events as f64 / (fig.wall_ms / 1e3))
    } else {
        "null".to_string()
    };
    let peak_rss = match fig.peak_rss_bytes {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    let mut out = String::new();
    let _ = write!(
        out,
        "{indent}{{\"name\": \"{}\", \"title\": \"{}\", \"unit\": \"{}\", \
         \"status\": \"{}\", \"error\": {error}, \
         \"wall_ms\": {}, \"sim_events\": {}, \"events_per_sec\": {events_per_sec}, \
         \"peak_rss_bytes\": {peak_rss}, \"kind\": \"{}\",\n{indent} \"rows\": [",
        esc(&fig.name),
        esc(&fig.title),
        esc(&fig.unit),
        if fig.failed() { "failed" } else { "ok" },
        num(fig.wall_ms),
        fig.sim_events,
        kind_name(&fig.rows),
    );
    let rows: Vec<String> = match &fig.rows {
        FigureRows::Compare(rows) => rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"label\": \"{}\", \"non_ioat\": {}, \"ioat\": {}, \
                     \"non_cpu\": {}, \"ioat_cpu\": {}}}",
                    esc(&r.label),
                    num(r.non_ioat),
                    num(r.ioat),
                    num(r.non_cpu),
                    num(r.ioat_cpu)
                )
            })
            .collect(),
        FigureRows::Copy(rows) => rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"size\": {}, \"copy_cache_us\": {}, \"copy_nocache_us\": {}, \
                     \"dma_copy_us\": {}, \"dma_overhead_us\": {}, \"overlap\": {}}}",
                    r.size,
                    num(r.copy_cache_us),
                    num(r.copy_nocache_us),
                    num(r.dma_copy_us),
                    num(r.dma_overhead_us),
                    num(r.overlap)
                )
            })
            .collect(),
        FigureRows::Splitup(rows) => rows
            .iter()
            .map(|r| {
                let cfgs = [
                    ("non_ioat", &r.non_ioat),
                    ("ioat_dma", &r.ioat_dma),
                    ("ioat_split", &r.ioat_split),
                ];
                let mut obj = format!("{{\"msg_size\": {}", r.msg_size);
                for (key, t) in cfgs {
                    let _ = write!(
                        obj,
                        ", \"{key}\": {{\"mbps\": {}, \"rx_cpu\": {}, \"tx_cpu\": {}}}",
                        num(t.mbps),
                        num(t.rx_cpu),
                        num(t.tx_cpu)
                    );
                }
                obj.push('}');
                obj
            })
            .collect(),
        FigureRows::Pinning(rows) => rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"size\": {}, \"pin_us\": [{}, {}, {}]}}",
                    r.size,
                    num(r.pin_us[0]),
                    num(r.pin_us[1]),
                    num(r.pin_us[2])
                )
            })
            .collect(),
    };
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{indent}  {row}");
    }
    let _ = write!(out, "\n{indent} ],\n{indent} \"notes\": [");
    for (i, note) in fig.notes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", esc(note));
    }
    // Schema 4: one entry per partitioned simulation the figure built
    // (empty for figures that don't run on the parallel engine). All
    // values are thread-count invariant.
    let _ = write!(out, "],\n{indent} \"parsim\": [");
    for (i, p) in fig.parsim.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let events: Vec<String> = p.events.iter().map(|e| e.to_string()).collect();
        let _ = write!(
            out,
            "\n{indent}  {{\"label\": \"{}\", \"partitions\": {}, \"rounds\": {}, \
             \"mean_window_ns\": {}, \"events\": [{}]}}",
            esc(&p.label),
            p.partitions,
            p.rounds,
            num(p.mean_window_ns),
            events.join(", ")
        );
    }
    if !fig.parsim.is_empty() {
        let _ = write!(out, "\n{indent} ");
    }
    out.push_str("]}");
    out
}

fn kind_name(rows: &FigureRows) -> &'static str {
    match rows {
        FigureRows::Compare(_) => "compare",
        FigureRows::Copy(_) => "copy",
        FigureRows::Splitup(_) => "splitup",
        FigureRows::Pinning(_) => "pinning",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParsimStats, PinningRow, Row};

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// strings, no unterminated strings, no bare NaN/Infinity tokens.
    fn assert_well_formed(s: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced structure");
        }
        assert_eq!(depth, 0, "balanced document");
        assert!(!in_str, "no unterminated string");
        assert!(
            !s.contains("NaN") && !s.contains("inf"),
            "no non-JSON numbers"
        );
    }

    fn sample_figures() -> Vec<FigureResult> {
        vec![
            FigureResult {
                name: "fig3a".into(),
                title: "Fig \"3a\"".into(),
                unit: "Mbps".into(),
                rows: FigureRows::Compare(vec![Row {
                    label: "1 port".into(),
                    non_ioat: 920.0,
                    ioat: 940.5,
                    non_cpu: 0.35,
                    ioat_cpu: f64::NAN,
                }]),
                notes: vec!["a \"note\"".into()],
                wall_ms: 12.5,
                sim_events: 25_000,
                peak_rss_bytes: Some(64 << 20),
                error: None,
                parsim: vec![ParsimStats {
                    label: "k=4 o=1 0K non".into(),
                    partitions: 3,
                    rounds: 40,
                    mean_window_ns: 125000.5,
                    events: vec![100, 2000, 3000],
                }],
            },
            FigureResult {
                name: "abl-copy".into(),
                title: "Pinning".into(),
                unit: "us".into(),
                rows: FigureRows::Pinning(vec![PinningRow {
                    size: 4096,
                    pin_us: [1.0, 2.0, 3.0],
                }]),
                notes: Vec::new(),
                wall_ms: 0.1,
                sim_events: 0,
                peak_rss_bytes: None,
                error: None,
                parsim: Vec::new(),
            },
        ]
    }

    #[test]
    fn report_is_well_formed_and_complete() {
        let meta = RunMeta {
            quick: true,
            jobs: 8,
            sim_threads: 2,
            total_wall_ms: 99.0,
        };
        let doc = render_json(&meta, &sample_figures());
        assert_well_formed(&doc);
        assert!(doc.contains("\"schema\": \"ioat-bench/4\""));
        assert!(doc.contains("\"jobs\": 8"));
        assert!(doc.contains("\"sim_threads\": 2"));
        assert!(doc.contains("\"name\": \"fig3a\""));
        assert!(doc.contains("\"kind\": \"compare\""));
        assert!(doc.contains("\"kind\": \"pinning\""));
        // Schema 3: 25 000 events over 12.5 ms is exactly 2e6 events/sec;
        // the pinning figure reports neither events nor RSS.
        assert!(doc.contains("\"sim_events\": 25000"));
        assert!(doc.contains("\"events_per_sec\": 2000000"));
        assert!(doc.contains("\"peak_rss_bytes\": 67108864"));
        assert!(doc.contains("\"sim_events\": 0"));
        assert!(doc.contains("\"events_per_sec\": null"));
        assert!(doc.contains("\"peak_rss_bytes\": null"));
        assert!(doc.contains("\"status\": \"ok\""));
        assert!(doc.contains("\"error\": null"));
        assert!(!doc.contains("\"status\": \"failed\""));
        assert!(doc.contains("\"ioat_cpu\": null"), "NaN becomes null");
        assert!(doc.contains("\"pin_us\": [1, 2, 3]"));
        assert!(doc.contains("a \\\"note\\\""), "notes are escaped");
        // Schema 4: the partitioned figure carries its parsim telemetry;
        // the non-partitioned one renders an empty array.
        assert!(doc.contains("\"parsim\": ["));
        assert!(doc.contains("\"parsim\": []"));
        assert!(doc.contains("\"label\": \"k=4 o=1 0K non\""));
        assert!(doc.contains("\"partitions\": 3"));
        assert!(doc.contains("\"rounds\": 40"));
        assert!(doc.contains("\"mean_window_ns\": 125000.5"));
        assert!(doc.contains("\"events\": [100, 2000, 3000]"));
    }

    /// Inverse of [`esc`], for round-trip testing only: decodes the
    /// escape sequences the writer can emit.
    fn unescape(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (&mut chars).take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).expect("4 hex digits");
                    out.push(char::from_u32(code).expect("BMP scalar"));
                }
                other => panic!("unknown escape \\{other:?}"),
            }
        }
        out
    }

    #[test]
    fn hostile_strings_round_trip_and_keep_the_document_well_formed() {
        // Every class of character that could break a JSON string:
        // quotes, backslashes, the named control escapes, raw C0 controls
        // (NUL, BEL, ESC), DEL-adjacent text, and non-ASCII.
        let hostile = "q=\" bs=\\ nl=\n cr=\r tab=\t nul=\0 bel=\x07 esc=\x1b \
                       u=✓ crab=🦀 end";
        assert_eq!(unescape(&esc(hostile)), hostile, "escaper is lossless");
        assert!(!esc(hostile).contains('\n'), "no raw control chars leak");
        assert!(esc(hostile).contains("\\u0000"), "NUL uses \\u form");

        // The same strings flowing through every user-controlled field of
        // a failed figure must still yield a structurally valid document.
        let fig = FigureResult {
            name: hostile.into(),
            title: hostile.into(),
            unit: "\"".into(),
            rows: FigureRows::Compare(vec![Row {
                label: hostile.into(),
                non_ioat: 1.0,
                ioat: 2.0,
                non_cpu: 0.1,
                ioat_cpu: 0.2,
            }]),
            notes: vec![hostile.into()],
            wall_ms: 1.0,
            sim_events: 0,
            peak_rss_bytes: None,
            error: Some(format!("panicked: {hostile}")),
            parsim: vec![crate::ParsimStats {
                label: hostile.into(),
                partitions: 1,
                rounds: 1,
                mean_window_ns: f64::NAN,
                events: vec![7],
            }],
        };
        let meta = RunMeta {
            quick: false,
            jobs: 1,
            sim_threads: 1,
            total_wall_ms: 1.0,
        };
        let doc = render_json(&meta, &[fig]);
        assert_well_formed(&doc);
        assert!(doc.contains("\"status\": \"failed\""));
        assert!(doc.contains("\"error\": \"panicked: "));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        // JSON has no NaN/Infinity tokens; every non-finite value must
        // degrade to `null` so downstream parsers never choke on a report
        // from a pathological run.
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NEG_INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.0), "0");

        let meta = RunMeta {
            quick: true,
            jobs: 1,
            sim_threads: 1,
            total_wall_ms: f64::INFINITY,
        };
        let mut figs = sample_figures();
        if let FigureRows::Compare(rows) = &mut figs[0].rows {
            rows[0].non_ioat = f64::NEG_INFINITY;
            rows[0].ioat = f64::INFINITY;
        }
        figs[0].wall_ms = f64::NAN;
        let doc = render_json(&meta, &figs);
        assert_well_formed(&doc);
        assert!(doc.contains("\"total_wall_ms\": null"));
        assert!(doc.contains("\"non_ioat\": null"));
        assert!(doc.contains("\"ioat\": null"));
        assert!(doc.contains("\"wall_ms\": null"));
    }

    #[test]
    fn empty_run_is_well_formed() {
        let meta = RunMeta {
            quick: false,
            jobs: 1,
            sim_threads: 1,
            total_wall_ms: 0.0,
        };
        assert_well_formed(&render_json(&meta, &[]));
    }
}
