//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--list] [--quick] [--audit] [--jobs N] [--sim-threads N]
//!       [--retries N] [--fail <target>] [--json <path>]
//!       [--trace <path>] [target ...]
//! ```
//!
//! With no targets (or `all`) every figure runs (the `abl-modern-*`
//! workload slices excepted — `all` runs the `abl-modern` umbrella grid
//! once instead). `--list` prints the
//! known targets with one-line descriptions. `--quick` uses short
//! measurement windows (for smoke tests); the default windows match
//! `EXPERIMENTS.md`. `--jobs N` sets the sweep-executor worker count
//! (default: available parallelism; results are bit-identical at any
//! count). `--sim-threads N` sets the partitioned-engine worker count
//! for the figures that run on it (the `fig_fabric` family): one
//! simulation is split across N conservative-synchronization workers,
//! and the deterministic merge keeps results bit-identical at any N
//! (default 1). `--json <path>` additionally writes every figure's rows and
//! wall-clock timings as a machine-readable report. `--trace <path>`
//! runs with the telemetry tracer on, prints the per-category CPU
//! split-up and writes a Perfetto-loadable Chrome trace to `<path>`
//! (and then exits unless figures were also requested); with a PVFS
//! figure among the targets it traces the Fig. 10a configuration (the
//! view that diagnosed the daemon cost model), otherwise Fig. 7.
//! Unknown flags and unknown targets exit with status 2 and
//! suggest the closest known name.
//!
//! Supervision (always on): every figure runs under the supervisor, so a
//! panicking or wedged figure is isolated — the remaining figures run to
//! completion with unchanged rows, the failure lands in the report as
//! `status: "failed"` plus a classified `error`, a summary table prints
//! at the end, and the process exits with status **3** (partial failure)
//! instead of aborting mid-run. `--audit` additionally opens a runtime
//! invariant-audit scope: conservation and lifecycle identities are
//! checked at the end of every measurement window, and any violation
//! fails the figure (rows are bit-identical with and without `--audit` —
//! audits are pure reads). `--retries N` re-attempts a failed figure up
//! to N extra times before recording the failure. `--fail <target>`
//! injects a deliberate panic into that figure's sweep — CI's
//! forced-failure smoke for this whole path.

use ioat_bench as figs;
use ioat_bench::report::{self, RunMeta};
use ioat_core::metrics::ExperimentWindow;

/// Every runnable target, with the one-line description `--list` prints.
const TARGETS: &[(&str, &str)] = &[
    ("fig3a", "Bandwidth (Mbps) vs 1-6 ports, I/OAT on/off"),
    ("fig3b", "Bi-directional bandwidth vs 1-6 ports"),
    ("fig4", "Multi-stream bandwidth vs thread count"),
    ("fig5a", "Bandwidth under socket-optimization Cases 1-5"),
    ("fig5b", "Bi-directional bandwidth under Cases 1-5"),
    ("fig6", "CPU-based copy vs DMA-based copy latency table"),
    ("fig7", "I/OAT feature split-up across message sizes"),
    ("fig8a", "Data-center TPS, single-file traces"),
    ("fig8b", "Data-center TPS, Zipf traces with proxy cache"),
    ("fig9", "Emulated clients inside the data-center, 16K file"),
    ("fig10a", "PVFS concurrent read, 6 I/O servers"),
    ("fig10b", "PVFS concurrent read, 5 I/O servers"),
    ("fig11a", "PVFS concurrent write, 6 I/O servers"),
    ("fig11b", "PVFS concurrent write, 5 I/O servers"),
    ("fig12", "PVFS multi-stream read, 1-64 emulated clients"),
    (
        "ext-pvfs-stripe",
        "Ext: PVFS read vs striping factor, 2-12 servers",
    ),
    (
        "ext-pvfs-clients",
        "Ext: PVFS read vs client count, 2-16 clients",
    ),
    (
        "ext-pvfs-stripesize",
        "Ext: PVFS read vs stripe size, 16-256 KB",
    ),
    ("ext-pvfs-mixed", "Ext: PVFS mixed read/write streams"),
    ("ext-pvfs-meta", "Ext: PVFS metadata-manager contention"),
    ("abl-mq", "Ablation A1: multi-queue receive interrupts"),
    (
        "abl-copy",
        "Ablation A2: async memcpy pinning-cost sensitivity",
    ),
    (
        "abl-faults",
        "Ablation A3: frame-loss sweep + PVFS daemon crash/failover",
    ),
    (
        "abl-modern",
        "Ablation A4: modern grid, rx mode x link rate x I/OAT",
    ),
    (
        "abl-modern-mstream",
        "Ablation A4 slice: multi-stream workload only",
    ),
    (
        "abl-modern-dc",
        "Ablation A4 slice: fabric datacenter workload only",
    ),
    (
        "abl-modern-pvfs",
        "Ablation A4 slice: PVFS concurrent-read workload only",
    ),
    (
        "abl-fabric-faults",
        "Ablation A5: fabric faults, flaps x crashed switches",
    ),
    (
        "fig_fabric",
        "Fabric: fat-tree datacenter TPS, hosts x oversubscription",
    ),
];

/// Every flag the parser accepts, for "did you mean" on unknown flags.
const FLAGS: &[&str] = &[
    "--list",
    "--quick",
    "--audit",
    "--jobs",
    "--sim-threads",
    "--retries",
    "--fail",
    "--json",
    "--trace",
];

/// Classic dynamic-programming edit distance, for "did you mean".
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

fn closest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> &'a str {
    candidates
        .map(|t| (t, edit_distance(name, t)))
        .min_by_key(|(_, d)| *d)
        .map(|(t, _)| t)
        .expect("candidate list is non-empty")
}

fn print_list() {
    println!("repro targets ('all' or no target runs everything):");
    for (name, desc) in TARGETS {
        println!("  {name:<12} {desc}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [--list] [--quick] [--audit] [--jobs N] [--sim-threads N] \
         [--retries N] [--fail <target>] [--json <path>] [--trace <path>] [target ...]"
    );
    std::process::exit(2);
}

/// Parsed command line.
struct Cli {
    list: bool,
    quick: bool,
    audit: bool,
    jobs: usize,
    sim_threads: usize,
    retries: usize,
    fail: Option<String>,
    json_path: Option<String>,
    trace_path: Option<String>,
    targets: Vec<String>,
}

/// Parses args strictly: every `--` token must be a known flag (exit 2
/// with a did-you-mean otherwise), value flags consume exactly one value
/// and reject repetition — a second `--trace` previously shadowed its
/// path into the target list and produced a baffling "unknown target"
/// error.
fn parse_cli(args: Vec<String>) -> Cli {
    let mut cli = Cli {
        list: false,
        quick: false,
        audit: false,
        jobs: figs::sweep::default_jobs(),
        sim_threads: 1,
        retries: 0,
        fail: None,
        json_path: None,
        trace_path: None,
        targets: Vec::new(),
    };
    let mut jobs_seen = false;
    let mut sim_threads_seen = false;
    let mut retries_seen = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => cli.list = true,
            "--quick" => cli.quick = true,
            "--audit" => cli.audit = true,
            "--retries" => {
                if retries_seen {
                    die("--retries given more than once");
                }
                retries_seen = true;
                let val = it
                    .next()
                    .unwrap_or_else(|| die("--retries needs an attempt count"));
                cli.retries = val.parse::<usize>().unwrap_or_else(|_| {
                    die(&format!(
                        "--retries needs a non-negative integer, got '{val}'"
                    ))
                });
            }
            "--fail" => {
                if cli.fail.is_some() {
                    die("--fail given more than once");
                }
                cli.fail = Some(it.next().unwrap_or_else(|| die("--fail needs a target")));
            }
            "--jobs" => {
                if jobs_seen {
                    die("--jobs given more than once");
                }
                jobs_seen = true;
                let val = it
                    .next()
                    .unwrap_or_else(|| die("--jobs needs a worker count"));
                cli.jobs = match val.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => die(&format!("--jobs needs a positive integer, got '{val}'")),
                };
            }
            "--sim-threads" => {
                if sim_threads_seen {
                    die("--sim-threads given more than once");
                }
                sim_threads_seen = true;
                let val = it
                    .next()
                    .unwrap_or_else(|| die("--sim-threads needs a worker count"));
                cli.sim_threads = match val.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => die(&format!(
                        "--sim-threads needs a positive integer, got '{val}'"
                    )),
                };
            }
            "--json" => {
                if cli.json_path.is_some() {
                    die("--json given more than once");
                }
                cli.json_path = Some(it.next().unwrap_or_else(|| die("--json needs a path")));
            }
            "--trace" => {
                if cli.trace_path.is_some() {
                    die("--trace given more than once");
                }
                cli.trace_path = Some(it.next().unwrap_or_else(|| die("--trace needs a path")));
            }
            flag if flag.starts_with("--") => {
                die(&format!(
                    "unknown flag '{flag}' — did you mean '{}'?",
                    closest(flag, FLAGS.iter().copied())
                ));
            }
            _ => cli.targets.push(arg),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli(std::env::args().skip(1).collect());
    if cli.list {
        print_list();
        return;
    }
    let window = if cli.quick {
        ExperimentWindow::quick()
    } else {
        ExperimentWindow::standard()
    };

    // Validate every requested target (and --fail's) before running
    // anything.
    let known = |name: &str| TARGETS.iter().any(|(t, _)| *t == name);
    for name in &cli.targets {
        if name != "all" && !known(name) {
            eprintln!(
                "error: unknown target '{name}' — did you mean '{}'?",
                closest(name, TARGETS.iter().map(|(t, _)| *t))
            );
            eprintln!("use --list to see all targets");
            std::process::exit(2);
        }
    }
    if let Some(name) = &cli.fail {
        if !known(name) {
            eprintln!(
                "error: --fail wants a known target, '{name}' is not one — did you mean '{}'?",
                closest(name, TARGETS.iter().map(|(t, _)| *t))
            );
            std::process::exit(2);
        }
        // The forced-panic smoke drives the sequential sweep pool; with
        // partitioned-engine workers live the panic could land while a
        // worker holds the window barrier, turning a clean classified
        // failure into a wedged run. Unsupported, so rejected up front.
        if cli.sim_threads > 1 {
            eprintln!(
                "error: --fail cannot be combined with --sim-threads > 1 — the \
                 forced-panic watchdog smoke only supports the sequential engine"
            );
            std::process::exit(2);
        }
    }

    if let Some(path) = &cli.trace_path {
        // Tracing is single-threaded by design; it never uses the pool.
        // With a PVFS figure among the targets the tracer runs the
        // Fig. 10a configuration (the per-component CPU split-up that
        // diagnosed the daemon cost model); otherwise the Fig. 7
        // split-up, as before.
        let pvfs = ["fig10a", "fig10b", "fig11a", "fig11b", "fig12"];
        if cli.targets.iter().any(|t| pvfs.contains(&t.as_str())) {
            figs::trace_fig10a(window, std::path::Path::new(path));
        } else {
            figs::trace_fig7(window, std::path::Path::new(path));
        }
        if cli.targets.is_empty() && cli.json_path.is_none() {
            return;
        }
    }

    let start = std::time::Instant::now();
    let all = cli.targets.is_empty() || cli.targets.iter().any(|t| t == "all");
    let opts = figs::SuperviseOpts {
        audit: cli.audit,
        retries: cli.retries,
        event_budget: None,
        force_fail: cli.fail.clone(),
        sim_threads: cli.sim_threads,
    };
    let mut results = Vec::new();
    for (name, _) in TARGETS {
        // The abl-modern workload slices are single-figure conveniences;
        // 'all' runs the umbrella grid once instead of four times.
        let in_all = all && !name.starts_with("abl-modern-");
        if in_all || cli.targets.iter().any(|t| t == name) {
            let fig = figs::run_figure_supervised(name, window, cli.jobs, &opts)
                .expect("TARGETS only lists known figures");
            if let Some(reason) = &fig.error {
                eprintln!("\n=== {name}: FAILED ===\n{reason}");
            } else {
                figs::render(&fig);
            }
            results.push(fig);
        }
    }
    let total_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    if let Some(path) = &cli.json_path {
        let meta = RunMeta {
            quick: cli.quick,
            jobs: cli.jobs,
            sim_threads: cli.sim_threads,
            total_wall_ms,
        };
        let doc = report::render_json(&meta, &results);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "\nwrote {path} ({} figures, {total_wall_ms:.0} ms total, {} jobs)",
            results.len(),
            cli.jobs
        );
    }

    // Partial-failure summary: one line per figure, failures last-word
    // visible without scrolling, exit 3 so CI can tell "some figures
    // failed but the report is intact" from a hard crash.
    let failed = results.iter().filter(|f| f.failed()).count();
    if failed > 0 {
        eprintln!(
            "\n=== run summary: {failed}/{} figures failed ===",
            results.len()
        );
        for fig in &results {
            match &fig.error {
                Some(reason) => eprintln!("  {:<12} FAILED  {reason}", fig.name),
                None => eprintln!("  {:<12} ok      ({:.0} ms)", fig.name, fig.wall_ms),
            }
        }
        std::process::exit(3);
    }
}
