//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [all|fig3a|fig3b|fig4|fig5a|fig5b|fig6|fig7|fig8a|fig8b|fig9|
//!        fig10a|fig10b|fig11a|fig11b|fig12|abl-mq|abl-copy]
//!       [--quick] [--trace <path>]
//! ```
//!
//! `--quick` uses short measurement windows (for smoke tests); the
//! default windows match `EXPERIMENTS.md`. `--trace <path>` runs the
//! Fig. 7 configuration with the telemetry tracer on, prints the
//! per-category CPU split-up and writes a Perfetto-loadable Chrome trace
//! to `<path>` (and then exits unless figures were also requested).

use ioat_bench as figs;
use ioat_core::metrics::ExperimentWindow;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let window = if quick {
        ExperimentWindow::quick()
    } else {
        ExperimentWindow::standard()
    };
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --trace needs a path argument");
            std::process::exit(2);
        })
    });
    let mut skip_next = false;
    let which: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--trace" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    if let Some(path) = trace_path {
        figs::trace_fig7(window, std::path::Path::new(&path));
        if which.is_empty() {
            return;
        }
    }
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("fig3a") {
        figs::fig3a(window);
    }
    if want("fig3b") {
        figs::fig3b(window);
    }
    if want("fig4") {
        figs::fig4(window);
    }
    if want("fig5a") {
        figs::fig5a(window);
    }
    if want("fig5b") {
        figs::fig5b(window);
    }
    if want("fig6") {
        figs::fig6();
    }
    if want("fig7") {
        figs::fig7(window);
    }
    if want("fig8a") {
        figs::fig8a(window);
    }
    if want("fig8b") {
        figs::fig8b(window);
    }
    if want("fig9") {
        figs::fig9(window);
    }
    if want("fig10a") {
        figs::fig10a(window);
    }
    if want("fig10b") {
        figs::fig10b(window);
    }
    if want("fig11a") {
        figs::fig11a(window);
    }
    if want("fig11b") {
        figs::fig11b(window);
    }
    if want("fig12") {
        figs::fig12(window);
    }
    if want("abl-mq") {
        figs::ablation_multiqueue(window);
    }
    if want("abl-copy") {
        figs::ablation_async_memcpy();
    }
}
