//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--list] [--quick] [--trace <path>] [target ...]
//! ```
//!
//! With no targets (or `all`) every figure runs. `--list` prints the
//! known targets with one-line descriptions. `--quick` uses short
//! measurement windows (for smoke tests); the default windows match
//! `EXPERIMENTS.md`. `--trace <path>` runs the Fig. 7 configuration with
//! the telemetry tracer on, prints the per-category CPU split-up and
//! writes a Perfetto-loadable Chrome trace to `<path>` (and then exits
//! unless figures were also requested). Unknown targets exit with
//! status 2 and suggest the closest known name.

use ioat_bench as figs;
use ioat_core::metrics::ExperimentWindow;

/// Every runnable target, with the one-line description `--list` prints.
const TARGETS: &[(&str, &str)] = &[
    ("fig3a", "Bandwidth (Mbps) vs 1-6 ports, I/OAT on/off"),
    ("fig3b", "Bi-directional bandwidth vs 1-6 ports"),
    ("fig4", "Multi-stream bandwidth vs thread count"),
    ("fig5a", "Bandwidth under socket-optimization Cases 1-5"),
    ("fig5b", "Bi-directional bandwidth under Cases 1-5"),
    ("fig6", "CPU-based copy vs DMA-based copy latency table"),
    ("fig7", "I/OAT feature split-up across message sizes"),
    ("fig8a", "Data-center TPS, single-file traces"),
    ("fig8b", "Data-center TPS, Zipf traces with proxy cache"),
    ("fig9", "Emulated clients inside the data-center, 16K file"),
    ("fig10a", "PVFS concurrent read, 6 I/O servers"),
    ("fig10b", "PVFS concurrent read, 5 I/O servers"),
    ("fig11a", "PVFS concurrent write, 6 I/O servers"),
    ("fig11b", "PVFS concurrent write, 5 I/O servers"),
    ("fig12", "PVFS multi-stream read, 1-64 emulated clients"),
    ("abl-mq", "Ablation A1: multi-queue receive interrupts"),
    (
        "abl-copy",
        "Ablation A2: async memcpy pinning-cost sensitivity",
    ),
    (
        "abl-faults",
        "Ablation A3: frame-loss sweep + PVFS daemon crash/failover",
    ),
];

fn run_target(name: &str, window: ExperimentWindow) {
    match name {
        "fig3a" => {
            figs::fig3a(window);
        }
        "fig3b" => {
            figs::fig3b(window);
        }
        "fig4" => {
            figs::fig4(window);
        }
        "fig5a" => {
            figs::fig5a(window);
        }
        "fig5b" => {
            figs::fig5b(window);
        }
        "fig6" => {
            figs::fig6();
        }
        "fig7" => {
            figs::fig7(window);
        }
        "fig8a" => {
            figs::fig8a(window);
        }
        "fig8b" => {
            figs::fig8b(window);
        }
        "fig9" => {
            figs::fig9(window);
        }
        "fig10a" => {
            figs::fig10a(window);
        }
        "fig10b" => {
            figs::fig10b(window);
        }
        "fig11a" => {
            figs::fig11a(window);
        }
        "fig11b" => {
            figs::fig11b(window);
        }
        "fig12" => {
            figs::fig12(window);
        }
        "abl-mq" => {
            figs::ablation_multiqueue(window);
        }
        "abl-copy" => {
            figs::ablation_async_memcpy();
        }
        "abl-faults" => {
            figs::ablation_faults(window);
        }
        _ => unreachable!("targets are validated before dispatch"),
    }
}

/// Classic dynamic-programming edit distance, for "did you mean".
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

fn closest_target(name: &str) -> &'static str {
    TARGETS
        .iter()
        .map(|(t, _)| (*t, edit_distance(name, t)))
        .min_by_key(|(_, d)| *d)
        .map(|(t, _)| t)
        .expect("TARGETS is non-empty")
}

fn print_list() {
    println!("repro targets ('all' or no target runs everything):");
    for (name, desc) in TARGETS {
        println!("  {name:<12} {desc}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        print_list();
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let window = if quick {
        ExperimentWindow::quick()
    } else {
        ExperimentWindow::standard()
    };
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --trace needs a path argument");
            std::process::exit(2);
        })
    });
    let mut skip_next = false;
    let which: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--trace" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();

    // Validate every requested target before running anything.
    for name in &which {
        if *name != "all" && !TARGETS.iter().any(|(t, _)| t == name) {
            eprintln!(
                "error: unknown target '{name}' — did you mean '{}'?",
                closest_target(name)
            );
            eprintln!("use --list to see all targets");
            std::process::exit(2);
        }
    }

    if let Some(path) = trace_path {
        figs::trace_fig7(window, std::path::Path::new(&path));
        if which.is_empty() {
            return;
        }
    }
    let all = which.is_empty() || which.contains(&"all");
    for (name, _) in TARGETS {
        if all || which.contains(name) {
            run_target(name, window);
        }
    }
}
