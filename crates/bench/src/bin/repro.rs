//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [all|fig3a|fig3b|fig4|fig5a|fig5b|fig6|fig7|fig8a|fig8b|fig9|
//!        fig10a|fig10b|fig11a|fig11b|fig12|abl-mq|abl-copy] [--quick]
//! ```
//!
//! `--quick` uses short measurement windows (for smoke tests); the
//! default windows match `EXPERIMENTS.md`.

use ioat_bench as figs;
use ioat_core::metrics::ExperimentWindow;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let window = if quick {
        ExperimentWindow::quick()
    } else {
        ExperimentWindow::standard()
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("fig3a") {
        figs::fig3a(window);
    }
    if want("fig3b") {
        figs::fig3b(window);
    }
    if want("fig4") {
        figs::fig4(window);
    }
    if want("fig5a") {
        figs::fig5a(window);
    }
    if want("fig5b") {
        figs::fig5b(window);
    }
    if want("fig6") {
        figs::fig6();
    }
    if want("fig7") {
        figs::fig7(window);
    }
    if want("fig8a") {
        figs::fig8a(window);
    }
    if want("fig8b") {
        figs::fig8b(window);
    }
    if want("fig9") {
        figs::fig9(window);
    }
    if want("fig10a") {
        figs::fig10a(window);
    }
    if want("fig10b") {
        figs::fig10b(window);
    }
    if want("fig11a") {
        figs::fig11a(window);
    }
    if want("fig11b") {
        figs::fig11b(window);
    }
    if want("fig12") {
        figs::fig12(window);
    }
    if want("abl-mq") {
        figs::ablation_multiqueue(window);
    }
    if want("abl-copy") {
        figs::ablation_async_memcpy();
    }
}
