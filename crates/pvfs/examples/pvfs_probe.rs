//! Paper-scale probe for Figs 10, 11, 12.
use ioat_core::IoatConfig;
use ioat_pvfs::harness::{concurrent_read, concurrent_write, multi_stream_read, PvfsConfig};

fn main() {
    println!("--- Fig 10a: read, 6 servers (paper: non 361->649, ioat 360->731, cpu ben 15%) ---");
    for clients in [1usize, 2, 4, 6] {
        let non = concurrent_read(&PvfsConfig::paper(6, clients, IoatConfig::disabled()));
        let ioat = concurrent_read(&PvfsConfig::paper(6, clients, IoatConfig::full()));
        println!(
            "c={clients}: non {:5.0} MB/s cpu {:4.1}% | ioat {:5.0} MB/s cpu {:4.1}% | tput +{:4.1}% cpu-ben {:4.1}%",
            non.mbytes_per_sec, non.client_cpu * 100.0,
            ioat.mbytes_per_sec, ioat.client_cpu * 100.0,
            (ioat.mbytes_per_sec - non.mbytes_per_sec) / non.mbytes_per_sec * 100.0,
            (non.client_cpu - ioat.client_cpu) / non.client_cpu * 100.0
        );
    }
    println!("--- Fig 11a: write, 6 servers (paper: non 464->697, ioat 460->750, cpu ben 7%) ---");
    for clients in [1usize, 2, 4, 6] {
        let non = concurrent_write(&PvfsConfig::paper(6, clients, IoatConfig::disabled()));
        let ioat = concurrent_write(&PvfsConfig::paper(6, clients, IoatConfig::full()));
        println!(
            "c={clients}: non {:5.0} MB/s srv-cpu {:4.1}% | ioat {:5.0} MB/s srv-cpu {:4.1}% | tput +{:4.1}%",
            non.mbytes_per_sec, non.server_cpu * 100.0,
            ioat.mbytes_per_sec, ioat.server_cpu * 100.0,
            (ioat.mbytes_per_sec - non.mbytes_per_sec) / non.mbytes_per_sec * 100.0
        );
    }
    println!(
        "--- Fig 12: multi-stream read (paper: ioat >= non, client cpu ~10% higher for ioat) ---"
    );
    for threads in [1usize, 4, 16, 64] {
        let cfg = PvfsConfig::paper(6, 1, IoatConfig::disabled());
        let non = multi_stream_read(&cfg, threads);
        let mut cfg2 = cfg;
        cfg2.ioat = IoatConfig::full();
        let ioat = multi_stream_read(&cfg2, threads);
        println!(
            "n={threads:2}: non {:5.0} MB/s cpu {:4.1}% | ioat {:5.0} MB/s cpu {:4.1}%",
            non.mbytes_per_sec,
            non.client_cpu * 100.0,
            ioat.mbytes_per_sec,
            ioat.client_cpu * 100.0
        );
    }
}
