//! Differential test for the corrected I/O-daemon cost model.
//!
//! PR 8 replaced the legacy per-connection PVFS threading model (every
//! connection its own daemon handler, all work spread over the node's
//! least-loaded cores, no process-context rx-copy) with the
//! single-threaded process model the 2007 testbed actually ran: one
//! serial `iod` thread per I/O server shared by every client
//! connection, one serial thread per client process, one serial
//! metadata manager, and rx-copy charged on the receiving side. The
//! legacy path is kept behind [`PvfsConfig::legacy_threading`] and must
//! keep reproducing the pre-fix wire-bound rows *bit-for-bit* — same
//! contract as the indexed-queue differential test in
//! `simcore/tests/queue_differential.rs`: the refactor may add a
//! serialization point only when the new model is enabled; with it
//! disabled, nothing about the simulation may move by even one ULP.
//!
//! The pinned constants below are the exact f64 bit patterns the
//! pre-fix model produced for the `quick_test(2, 3)` read and write
//! sweeps (both I/OAT settings saturate the 2-port wire at
//! 241.17 MB/s — the very symptom the tracer diagnosed: throughput
//! was wire-bound because no CPU could saturate first).

use ioat_core::IoatConfig;
use ioat_pvfs::harness::{concurrent_read, concurrent_write, PvfsConfig, PvfsResult};

/// Recorded pre-fix row: (bandwidth, client CPU, server CPU) bits.
struct LegacyRow {
    bw: u64,
    client_cpu: u64,
    server_cpu: u64,
}

/// `quick_test(2, 3)` rows recorded from the legacy per-connection
/// model. Both modes sit exactly on the 2-port wire (241.17 MB/s).
const LEGACY_NON_READ: LegacyRow = LegacyRow {
    bw: 0x406e_2584_f4c6_e6d9,
    client_cpu: 0x3fc5_42e6_03aa_8478,
    server_cpu: 0x3fb5_8937_f793_1f01,
};
const LEGACY_NON_WRITE: LegacyRow = LegacyRow {
    bw: 0x406e_2584_f4c6_e6d9,
    client_cpu: 0x3fb9_0fa8_13af_e02d,
    server_cpu: 0x3fc8_cd88_c9e8_96d8,
};
const LEGACY_IOAT_READ: LegacyRow = LegacyRow {
    bw: 0x406e_2584_f4c6_e6d9,
    client_cpu: 0x3fbe_94fe_7f4c_6660,
    server_cpu: 0x3fb5_8d85_393a_5e4b,
};
const LEGACY_IOAT_WRITE: LegacyRow = LegacyRow {
    bw: 0x406e_2584_f4c6_e6d9,
    client_cpu: 0x3fb9_1aa5_f39a_1616,
    server_cpu: 0x3fc2_d768_1bc8_3289,
};

fn assert_row(what: &str, got: &PvfsResult, want: &LegacyRow) {
    assert_eq!(
        got.mbytes_per_sec.to_bits(),
        want.bw,
        "{what}: bandwidth moved ({} vs {})",
        got.mbytes_per_sec,
        f64::from_bits(want.bw)
    );
    assert_eq!(
        got.client_cpu.to_bits(),
        want.client_cpu,
        "{what}: client CPU moved ({} vs {})",
        got.client_cpu,
        f64::from_bits(want.client_cpu)
    );
    assert_eq!(
        got.server_cpu.to_bits(),
        want.server_cpu,
        "{what}: server CPU moved ({} vs {})",
        got.server_cpu,
        f64::from_bits(want.server_cpu)
    );
    assert_eq!(got.opens, 3, "{what}: opens moved");
}

#[test]
fn legacy_threading_reproduces_the_wire_bound_rows_bit_for_bit() {
    let non = |s, c| PvfsConfig::quick_test(s, c, IoatConfig::disabled()).legacy_threading();
    let ioat = |s, c| PvfsConfig::quick_test(s, c, IoatConfig::full()).legacy_threading();

    assert_row("non read", &concurrent_read(&non(2, 3)), &LEGACY_NON_READ);
    assert_row(
        "non write",
        &concurrent_write(&non(2, 3)),
        &LEGACY_NON_WRITE,
    );
    assert_row(
        "ioat read",
        &concurrent_read(&ioat(2, 3)),
        &LEGACY_IOAT_READ,
    );
    assert_row(
        "ioat write",
        &concurrent_write(&ioat(2, 3)),
        &LEGACY_IOAT_WRITE,
    );
}

#[test]
fn corrected_model_adds_the_missing_serialization_point() {
    // The whole point of the fix: with the serial process threads and
    // rx-copy terms enabled (the default), non-I/OAT CPU can saturate
    // before the wire, so throughput drops below the legacy wire-bound
    // figure and I/OAT opens a gap the legacy model could never show.
    // This needs the full 6-port wire (723 MB/s): the compute-node CPU
    // cap (~645 MB/s) sits between the 2-port and 6-port wire rates.
    let legacy =
        concurrent_read(&PvfsConfig::quick_test(6, 6, IoatConfig::disabled()).legacy_threading());
    let non = concurrent_read(&PvfsConfig::quick_test(6, 6, IoatConfig::disabled()));
    let ioat = concurrent_read(&PvfsConfig::quick_test(6, 6, IoatConfig::full()));
    assert!(
        non.mbytes_per_sec < legacy.mbytes_per_sec,
        "corrected non-I/OAT read should fall below the wire-bound legacy row ({} vs {})",
        non.mbytes_per_sec,
        legacy.mbytes_per_sec
    );
    assert!(
        ioat.mbytes_per_sec > non.mbytes_per_sec * 1.02,
        "I/OAT should out-run non-I/OAT once the daemon model is CPU-bound ({} vs {})",
        ioat.mbytes_per_sec,
        non.mbytes_per_sec
    );
}
