//! I/O daemons and the `ramfs` storage model.
//!
//! §3.2: "An I/O daemon runs on each I/O node and services requests from
//! the compute nodes, in particular the read and write requests. Thus,
//! data is transferred directly between the I/O servers and the compute
//! nodes." §6.1 configures storage on `ramfs` — memory-resident — so a
//! read is a page-cache lookup plus `sendfile`, and a write is a memory
//! copy into the page cache.

use crate::process::ProcessCpu;
use ioat_faults::FaultInjector;
use ioat_netsim::msg::{self, MsgSender};
use ioat_netsim::Socket;
use ioat_simcore::{Sim, SimDuration};
use std::rc::Rc;

/// Wire size of a read request.
pub const READ_REQ_BYTES: u64 = 128;
/// Wire size of a write acknowledgement.
pub const WRITE_ACK_BYTES: u64 = 64;

/// Messages a client sends to an I/O daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IodRequest {
    /// Read `len` bytes of this server's stripe pieces.
    Read {
        /// Client-assigned operation (attempt) id, echoed in the reply.
        op: u64,
        /// Piece length in bytes.
        len: u64,
    },
    /// The message itself carries `len` bytes to be written.
    Write {
        /// Client-assigned operation (attempt) id, echoed in the reply.
        op: u64,
        /// Piece length in bytes.
        len: u64,
    },
}

/// Messages an I/O daemon sends back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IodReply {
    /// The message carries `len` bytes of file data.
    Data {
        /// Operation id of the request being answered.
        op: u64,
        /// Piece length in bytes.
        len: u64,
    },
    /// A write completed.
    Ack {
        /// Operation id of the write being acknowledged.
        op: u64,
    },
}

impl IodReply {
    /// The operation id this reply answers.
    pub fn op(&self) -> u64 {
        match *self {
            IodReply::Data { op, .. } => op,
            IodReply::Ack { op } => op,
        }
    }
}

/// `ramfs` + request-handling costs of an I/O daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IodParams {
    /// Fixed cost to decode and validate a request.
    pub request_handle: SimDuration,
    /// Per-byte cost of a `ramfs` read (page-cache lookup + `sendfile`
    /// descriptor setup; the wire transmission is charged by the stack).
    pub read_ps_per_byte: u64,
    /// Per-byte cost of a `ramfs` write (memory copy into the page
    /// cache).
    pub write_ps_per_byte: u64,
    /// Fixed cost to acquire and recycle a staging buffer per request
    /// (single-threaded daemon model only; the legacy per-connection
    /// path ignores it).
    pub buffer_mgmt: SimDuration,
    /// Per-byte process-context cost to touch received payload when the
    /// CPU performs the kernel→user copy (no DMA engine): the copy
    /// itself plus the cache pollution it leaves behind. Applied to the
    /// daemon's received bytes — the bulk data of writes, the small
    /// request header of reads.
    pub rx_copy_ps_per_byte: u64,
    /// Residual per-byte cost when the I/OAT DMA engine performs the
    /// copy instead (descriptor posting + completion reaping).
    pub rx_offload_ps_per_byte: u64,
}

impl Default for IodParams {
    fn default() -> Self {
        IodParams {
            request_handle: SimDuration::from_micros(12),
            read_ps_per_byte: 120,
            write_ps_per_byte: 800,
            buffer_mgmt: SimDuration::from_micros(6),
            rx_copy_ps_per_byte: 2850,
            rx_offload_ps_per_byte: 1700,
        }
    }
}

impl IodParams {
    /// Daemon CPU cost to serve a read of `len` bytes.
    pub fn read_cost(&self, len: u64) -> SimDuration {
        self.request_handle + SimDuration::from_nanos(len * self.read_ps_per_byte / 1000)
    }

    /// Daemon CPU cost to commit a write of `len` bytes.
    pub fn write_cost(&self, len: u64) -> SimDuration {
        self.request_handle + SimDuration::from_nanos(len * self.write_ps_per_byte / 1000)
    }

    /// The effective per-byte receive-copy cost under `dma_engine`.
    pub fn rx_ps_per_byte(&self, dma_engine: bool) -> u64 {
        if dma_engine {
            self.rx_offload_ps_per_byte
        } else {
            self.rx_copy_ps_per_byte
        }
    }

    /// Single-threaded daemon CPU per read request: handling + buffer
    /// management + `ramfs` read, plus the rx copy of the request header.
    pub fn serve_read_cost(&self, len: u64, rx_ps_per_byte: u64) -> SimDuration {
        self.read_cost(len)
            + self.buffer_mgmt
            + SimDuration::from_nanos(READ_REQ_BYTES * rx_ps_per_byte / 1000)
    }

    /// Single-threaded daemon CPU per write request: handling + buffer
    /// management + `ramfs` commit, plus the rx copy of the payload
    /// itself — the term the DMA engine offloads.
    pub fn serve_write_cost(&self, len: u64, rx_ps_per_byte: u64) -> SimDuration {
        self.write_cost(len)
            + self.buffer_mgmt
            + SimDuration::from_nanos(len * rx_ps_per_byte / 1000)
    }
}

/// Installs an I/O daemon on the server endpoint of a connection and
/// returns the client-side request sender; `on_reply` fires at the client
/// for each data/ack message.
pub fn serve<F>(
    client_sock: Socket,
    server_sock: Socket,
    params: IodParams,
    on_reply: F,
) -> MsgSender<IodRequest>
where
    F: FnMut(&mut Sim, IodReply) + 'static,
{
    serve_with_faults(
        client_sock,
        server_sock,
        params,
        FaultInjector::inert(),
        0,
        on_reply,
    )
}

/// [`serve`] under a fault injector: while the daemon's crash window
/// (service id `service`) is open, incoming requests are dropped on the
/// floor — the bytes were already delivered (message framing stays
/// intact), only the handler goes dark. The client's deadline/failover
/// machinery is responsible for recovery.
///
/// This is the legacy *per-connection* model: every connection gets an
/// independent handler whose compute lands on the least-loaded core, so
/// a "daemon" can effectively occupy every core of the node at once.
/// The corrected single-threaded model is [`serve_shared`].
pub fn serve_with_faults<F>(
    client_sock: Socket,
    server_sock: Socket,
    params: IodParams,
    faults: FaultInjector,
    service: u32,
    on_reply: F,
) -> MsgSender<IodRequest>
where
    F: FnMut(&mut Sim, IodReply) + 'static,
{
    // Replies daemon → client.
    let reply = Rc::new(msg::channel(
        server_sock.clone(),
        client_sock.clone(),
        on_reply,
    ));
    // Requests client → daemon.
    let server2 = server_sock.clone();
    msg::channel(client_sock, server_sock, move |sim, req: IodRequest| {
        if faults.service_down(service, sim.now()) {
            faults.note_daemon_drop();
            return;
        }
        let reply2 = Rc::clone(&reply);
        match req {
            IodRequest::Read { op, len } => {
                server2.compute(sim, params.read_cost(len), move |sim| {
                    reply2.send(sim, len, IodReply::Data { op, len });
                });
            }
            IodRequest::Write { op, len } => {
                server2.compute(sim, params.write_cost(len), move |sim| {
                    reply2.send(sim, WRITE_ACK_BYTES, IodReply::Ack { op });
                });
            }
        }
    })
}

/// Attaches one connection of a *single-threaded* I/O daemon.
///
/// All connections to the same server pass the same [`ProcessCpu`], so
/// every request that daemon serves — from any client — runs through one
/// serial FIFO thread, exactly like the 2007 testbed's one `iod` process
/// per I/O server. Request costs use the full single-threaded model
/// ([`IodParams::serve_read_cost`] / [`IodParams::serve_write_cost`]):
/// rx-copy of received bytes at `rx_ps_per_byte` (pick it with
/// [`IodParams::rx_ps_per_byte`] from the node's DMA-engine setting),
/// request handling, buffer management, and the `ramfs` access.
///
/// Crash-window semantics match [`serve_with_faults`]: requests arriving
/// while the daemon is dark are dropped before they reach its queue.
#[allow(clippy::too_many_arguments)]
pub fn serve_shared<F>(
    client_sock: Socket,
    server_sock: Socket,
    params: IodParams,
    cpu: ProcessCpu,
    rx_ps_per_byte: u64,
    faults: FaultInjector,
    service: u32,
    on_reply: F,
) -> MsgSender<IodRequest>
where
    F: FnMut(&mut Sim, IodReply) + 'static,
{
    // Replies daemon → client.
    let reply = Rc::new(msg::channel(
        server_sock.clone(),
        client_sock.clone(),
        on_reply,
    ));
    // Requests client → daemon, serialized on the shared process thread.
    msg::channel(client_sock, server_sock, move |sim, req: IodRequest| {
        if faults.service_down(service, sim.now()) {
            faults.note_daemon_drop();
            return;
        }
        let reply2 = Rc::clone(&reply);
        match req {
            IodRequest::Read { op, len } => {
                let cost = params.serve_read_cost(len, rx_ps_per_byte);
                cpu.run(sim, cost, move |sim| {
                    reply2.send(sim, len, IodReply::Data { op, len });
                });
            }
            IodRequest::Write { op, len } => {
                let cost = params.serve_write_cost(len, rx_ps_per_byte);
                cpu.run(sim, cost, move |sim| {
                    reply2.send(sim, WRITE_ACK_BYTES, IodReply::Ack { op });
                });
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_netsim::config::{IoatConfig, SocketOpts, StackParams};
    use ioat_netsim::socket::socket_pair;
    use ioat_netsim::stack::HostStack;
    use ioat_netsim::ConnId;
    use ioat_simcore::time::Bandwidth;
    use std::cell::RefCell;

    #[test]
    fn read_returns_data_write_returns_ack() {
        let mut sim = ioat_simcore::Sim::new();
        let c = HostStack::new("cn", 4, StackParams::default(), IoatConfig::disabled());
        let s = HostStack::new("iod", 4, StackParams::default(), IoatConfig::disabled());
        let (cs, ss) = socket_pair(
            &c,
            &s,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(25),
            SocketOpts::tuned(),
            ConnId(1),
        );
        let replies = Rc::new(RefCell::new(Vec::new()));
        let r = Rc::clone(&replies);
        let sender = serve(cs, ss, IodParams::default(), move |_sim, reply| {
            r.borrow_mut().push(reply);
        });
        sender.send(
            &mut sim,
            READ_REQ_BYTES,
            IodRequest::Read { op: 1, len: 65_536 },
        );
        sender.send(&mut sim, 65_536, IodRequest::Write { op: 2, len: 65_536 });
        sim.run();
        let replies = replies.borrow();
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0], IodReply::Data { op: 1, len: 65_536 });
        assert_eq!(replies[1], IodReply::Ack { op: 2 });
    }

    #[test]
    fn write_costs_more_than_read_per_byte() {
        let p = IodParams::default();
        assert!(p.write_cost(65_536) > p.read_cost(65_536));
        assert_eq!(p.read_cost(0), p.request_handle);
    }

    #[test]
    fn dma_engine_offloads_the_write_rx_copy() {
        let p = IodParams::default();
        let copied = p.serve_write_cost(65_536, p.rx_ps_per_byte(false));
        let offloaded = p.serve_write_cost(65_536, p.rx_ps_per_byte(true));
        assert!(
            copied > offloaded,
            "CPU copy {copied:?} must cost more than DMA offload {offloaded:?}"
        );
        // Reads only receive the 128-byte request header, so their
        // daemon cost is nearly insensitive to the copy engine.
        let r_delta = p.serve_read_cost(65_536, p.rx_ps_per_byte(false))
            - p.serve_read_cost(65_536, p.rx_ps_per_byte(true));
        let w_delta = copied - offloaded;
        assert!(r_delta < w_delta / 100);
    }

    #[test]
    fn shared_daemon_serializes_requests_across_connections() {
        use crate::process::ProcessCpu;
        let mut sim = ioat_simcore::Sim::new();
        let c = HostStack::new("cn", 4, StackParams::default(), IoatConfig::disabled());
        let s = HostStack::new("iod", 4, StackParams::default(), IoatConfig::disabled());
        let mk = |conn: u64| {
            socket_pair(
                &c,
                &s,
                Bandwidth::from_gbps(10),
                SimDuration::from_micros(5),
                SocketOpts::tuned(),
                ConnId(conn),
            )
        };
        let (cs1, ss1) = mk(1);
        let (cs2, ss2) = mk(2);
        let cpu = ProcessCpu::new(ss1.clone());
        let params = IodParams::default();
        let done: Rc<RefCell<Vec<(u64, ioat_simcore::SimTime)>>> =
            Rc::new(RefCell::new(Vec::new()));
        let (d1, d2) = (Rc::clone(&done), Rc::clone(&done));
        let s1 = serve_shared(
            cs1,
            ss1,
            params,
            cpu.clone(),
            params.rx_ps_per_byte(false),
            FaultInjector::inert(),
            0,
            move |sim, reply| d1.borrow_mut().push((reply.op(), sim.now())),
        );
        let s2 = serve_shared(
            cs2,
            ss2,
            params,
            cpu.clone(),
            params.rx_ps_per_byte(false),
            FaultInjector::inert(),
            0,
            move |sim, reply| d2.borrow_mut().push((reply.op(), sim.now())),
        );
        // Two same-size reads on different connections of one daemon:
        // a per-connection daemon would serve them concurrently; the
        // shared thread must finish them one service time apart.
        s1.send(
            &mut sim,
            READ_REQ_BYTES,
            IodRequest::Read { op: 1, len: 65_536 },
        );
        s2.send(
            &mut sim,
            READ_REQ_BYTES,
            IodRequest::Read { op: 2, len: 65_536 },
        );
        sim.run();
        let done = done.borrow();
        assert_eq!(done.len(), 2);
        let gap = if done[1].1 > done[0].1 {
            done[1].1 - done[0].1
        } else {
            done[0].1 - done[1].1
        };
        let service = params.serve_read_cost(65_536, params.rx_ps_per_byte(false));
        assert!(
            gap >= service / 2,
            "replies {gap:?} apart — requests did not serialize (service {service:?})"
        );
    }
}
