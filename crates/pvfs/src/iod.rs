//! I/O daemons and the `ramfs` storage model.
//!
//! §3.2: "An I/O daemon runs on each I/O node and services requests from
//! the compute nodes, in particular the read and write requests. Thus,
//! data is transferred directly between the I/O servers and the compute
//! nodes." §6.1 configures storage on `ramfs` — memory-resident — so a
//! read is a page-cache lookup plus `sendfile`, and a write is a memory
//! copy into the page cache.

use ioat_faults::FaultInjector;
use ioat_netsim::msg::{self, MsgSender};
use ioat_netsim::Socket;
use ioat_simcore::{Sim, SimDuration};
use std::rc::Rc;

/// Wire size of a read request.
pub const READ_REQ_BYTES: u64 = 128;
/// Wire size of a write acknowledgement.
pub const WRITE_ACK_BYTES: u64 = 64;

/// Messages a client sends to an I/O daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IodRequest {
    /// Read `len` bytes of this server's stripe pieces.
    Read {
        /// Client-assigned operation (attempt) id, echoed in the reply.
        op: u64,
        /// Piece length in bytes.
        len: u64,
    },
    /// The message itself carries `len` bytes to be written.
    Write {
        /// Client-assigned operation (attempt) id, echoed in the reply.
        op: u64,
        /// Piece length in bytes.
        len: u64,
    },
}

/// Messages an I/O daemon sends back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IodReply {
    /// The message carries `len` bytes of file data.
    Data {
        /// Operation id of the request being answered.
        op: u64,
        /// Piece length in bytes.
        len: u64,
    },
    /// A write completed.
    Ack {
        /// Operation id of the write being acknowledged.
        op: u64,
    },
}

impl IodReply {
    /// The operation id this reply answers.
    pub fn op(&self) -> u64 {
        match *self {
            IodReply::Data { op, .. } => op,
            IodReply::Ack { op } => op,
        }
    }
}

/// `ramfs` + request-handling costs of an I/O daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IodParams {
    /// Fixed cost to decode and validate a request.
    pub request_handle: SimDuration,
    /// Per-byte cost of a `ramfs` read (page-cache lookup + `sendfile`
    /// descriptor setup; the wire transmission is charged by the stack).
    pub read_ps_per_byte: u64,
    /// Per-byte cost of a `ramfs` write (memory copy into the page
    /// cache).
    pub write_ps_per_byte: u64,
}

impl Default for IodParams {
    fn default() -> Self {
        IodParams {
            request_handle: SimDuration::from_micros(12),
            read_ps_per_byte: 120,
            write_ps_per_byte: 800,
        }
    }
}

impl IodParams {
    /// Daemon CPU cost to serve a read of `len` bytes.
    pub fn read_cost(&self, len: u64) -> SimDuration {
        self.request_handle + SimDuration::from_nanos(len * self.read_ps_per_byte / 1000)
    }

    /// Daemon CPU cost to commit a write of `len` bytes.
    pub fn write_cost(&self, len: u64) -> SimDuration {
        self.request_handle + SimDuration::from_nanos(len * self.write_ps_per_byte / 1000)
    }
}

/// Installs an I/O daemon on the server endpoint of a connection and
/// returns the client-side request sender; `on_reply` fires at the client
/// for each data/ack message.
pub fn serve<F>(
    client_sock: Socket,
    server_sock: Socket,
    params: IodParams,
    on_reply: F,
) -> MsgSender<IodRequest>
where
    F: FnMut(&mut Sim, IodReply) + 'static,
{
    serve_with_faults(
        client_sock,
        server_sock,
        params,
        FaultInjector::inert(),
        0,
        on_reply,
    )
}

/// [`serve`] under a fault injector: while the daemon's crash window
/// (service id `service`) is open, incoming requests are dropped on the
/// floor — the bytes were already delivered (message framing stays
/// intact), only the handler goes dark. The client's deadline/failover
/// machinery is responsible for recovery.
pub fn serve_with_faults<F>(
    client_sock: Socket,
    server_sock: Socket,
    params: IodParams,
    faults: FaultInjector,
    service: u32,
    on_reply: F,
) -> MsgSender<IodRequest>
where
    F: FnMut(&mut Sim, IodReply) + 'static,
{
    // Replies daemon → client.
    let reply = Rc::new(msg::channel(
        server_sock.clone(),
        client_sock.clone(),
        on_reply,
    ));
    // Requests client → daemon.
    let server2 = server_sock.clone();
    msg::channel(client_sock, server_sock, move |sim, req: IodRequest| {
        if faults.service_down(service, sim.now()) {
            faults.note_daemon_drop();
            return;
        }
        let reply2 = Rc::clone(&reply);
        match req {
            IodRequest::Read { op, len } => {
                server2.compute(sim, params.read_cost(len), move |sim| {
                    reply2.send(sim, len, IodReply::Data { op, len });
                });
            }
            IodRequest::Write { op, len } => {
                server2.compute(sim, params.write_cost(len), move |sim| {
                    reply2.send(sim, WRITE_ACK_BYTES, IodReply::Ack { op });
                });
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_netsim::config::{IoatConfig, SocketOpts, StackParams};
    use ioat_netsim::socket::socket_pair;
    use ioat_netsim::stack::HostStack;
    use ioat_netsim::ConnId;
    use ioat_simcore::time::Bandwidth;
    use std::cell::RefCell;

    #[test]
    fn read_returns_data_write_returns_ack() {
        let mut sim = ioat_simcore::Sim::new();
        let c = HostStack::new("cn", 4, StackParams::default(), IoatConfig::disabled());
        let s = HostStack::new("iod", 4, StackParams::default(), IoatConfig::disabled());
        let (cs, ss) = socket_pair(
            &c,
            &s,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(25),
            SocketOpts::tuned(),
            ConnId(1),
        );
        let replies = Rc::new(RefCell::new(Vec::new()));
        let r = Rc::clone(&replies);
        let sender = serve(cs, ss, IodParams::default(), move |_sim, reply| {
            r.borrow_mut().push(reply);
        });
        sender.send(
            &mut sim,
            READ_REQ_BYTES,
            IodRequest::Read { op: 1, len: 65_536 },
        );
        sender.send(&mut sim, 65_536, IodRequest::Write { op: 2, len: 65_536 });
        sim.run();
        let replies = replies.borrow();
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0], IodReply::Data { op: 1, len: 65_536 });
        assert_eq!(replies[1], IodReply::Ack { op: 2 });
    }

    #[test]
    fn write_costs_more_than_read_per_byte() {
        let p = IodParams::default();
        assert!(p.write_cost(65_536) > p.read_cost(65_536));
        assert_eq!(p.read_cost(0), p.request_handle);
    }
}
