//! Single-threaded process CPU serialization.
//!
//! The 2007 testbed ran PVFS as ordinary single-threaded Unix processes:
//! one `iod` per I/O server and one `pvfs-test` process per client. Each
//! does its rx-copy, request handling and buffer management on one CPU at
//! a time — work arriving while the process is busy waits in program
//! order, it does not fan out across the node's cores. [`ProcessCpu`]
//! models exactly that: a FIFO queue of compute jobs with at most one
//! outstanding [`Socket::compute`] call, so a process can never occupy
//! more than one core at any instant (it may migrate between cores across
//! jobs, as the scheduler would).
//!
//! Charging still flows through [`Socket::compute`], so node-level core
//! accounting, CPU-utilization reporting and `app_compute` telemetry
//! spans are identical to the unserialized path — only the ordering
//! constraint is new.

use ioat_netsim::Socket;
use ioat_simcore::{Sim, SimDuration};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

type Job = (SimDuration, Box<dyn FnOnce(&mut Sim)>);

struct Inner {
    sock: Socket,
    busy: RefCell<bool>,
    queue: RefCell<VecDeque<Job>>,
}

/// A serial virtual thread: compute jobs run one at a time in FIFO order.
///
/// Clones share the same queue (`Rc`), so every connection served by one
/// daemon can hold a clone and all their work serializes.
pub struct ProcessCpu {
    inner: Rc<Inner>,
}

impl Clone for ProcessCpu {
    fn clone(&self) -> Self {
        ProcessCpu {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for ProcessCpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessCpu")
            .field("busy", &*self.inner.busy.borrow())
            .field("queued", &self.inner.queue.borrow().len())
            .finish()
    }
}

impl ProcessCpu {
    /// Creates a process thread charging its CPU through `sock`'s node.
    pub fn new(sock: Socket) -> Self {
        ProcessCpu {
            inner: Rc::new(Inner {
                sock,
                busy: RefCell::new(false),
                queue: RefCell::new(VecDeque::new()),
            }),
        }
    }

    /// Jobs waiting behind the one currently running.
    pub fn queued(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    /// Runs `then` after `cost` of process CPU time. If the process is
    /// busy the job waits its turn; completion order equals submission
    /// order (deterministic).
    pub fn run<F>(&self, sim: &mut Sim, cost: SimDuration, then: F)
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        if *self.inner.busy.borrow() {
            self.inner
                .queue
                .borrow_mut()
                .push_back((cost, Box::new(then)));
            return;
        }
        *self.inner.busy.borrow_mut() = true;
        self.dispatch(sim, cost, Box::new(then));
    }

    fn dispatch(&self, sim: &mut Sim, cost: SimDuration, then: Box<dyn FnOnce(&mut Sim)>) {
        let this = self.clone();
        self.inner.sock.compute(sim, cost, move |sim| {
            then(sim);
            // `then` may have enqueued follow-up work (busy is still set,
            // so re-entrant `run` calls land in the queue, keeping FIFO
            // order); drain one job or go idle.
            let next = this.inner.queue.borrow_mut().pop_front();
            match next {
                Some((c, f)) => this.dispatch(sim, c, f),
                None => *this.inner.busy.borrow_mut() = false,
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_netsim::config::{IoatConfig, SocketOpts, StackParams};
    use ioat_netsim::socket::socket_pair;
    use ioat_netsim::stack::HostStack;
    use ioat_netsim::ConnId;
    use ioat_simcore::time::Bandwidth;
    use ioat_simcore::SimTime;

    fn sock_on_4core_node() -> (Sim, Socket) {
        let sim = Sim::new();
        let a = HostStack::new("a", 4, StackParams::default(), IoatConfig::disabled());
        let b = HostStack::new("b", 4, StackParams::default(), IoatConfig::disabled());
        let (sa, _sb) = socket_pair(
            &a,
            &b,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(10),
            SocketOpts::tuned(),
            ConnId(1),
        );
        (sim, sa)
    }

    #[test]
    fn jobs_serialize_even_with_idle_cores() {
        // Four 100 µs jobs on a 4-core node: unserialized they would all
        // finish at ~100 µs; through one process they take ~400 µs.
        let (mut sim, sock) = sock_on_4core_node();
        let cpu = ProcessCpu::new(sock);
        let ends: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let e = Rc::clone(&ends);
            cpu.run(&mut sim, SimDuration::from_micros(100), move |sim| {
                e.borrow_mut().push(sim.now());
            });
        }
        sim.run();
        let ends = ends.borrow();
        assert_eq!(ends.len(), 4);
        let last = ends[3] - SimTime::ZERO;
        assert!(
            last >= SimDuration::from_micros(400),
            "serial jobs must not overlap: last ended at {last:?}"
        );
    }

    #[test]
    fn completion_order_is_submission_order() {
        let (mut sim, sock) = sock_on_4core_node();
        let cpu = ProcessCpu::new(sock);
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        // Decreasing costs: a parallel pool would finish them reversed.
        for (i, us) in [(0u32, 300u64), (1, 200), (2, 100), (3, 50)] {
            let o = Rc::clone(&order);
            cpu.run(&mut sim, SimDuration::from_micros(us), move |_sim| {
                o.borrow_mut().push(i);
            });
        }
        assert_eq!(cpu.queued(), 3);
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(cpu.queued(), 0);
    }

    #[test]
    fn reentrant_submission_from_a_job_keeps_fifo() {
        let (mut sim, sock) = sock_on_4core_node();
        let cpu = ProcessCpu::new(sock);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let o1 = Rc::clone(&order);
        let cpu2 = cpu.clone();
        cpu.run(&mut sim, SimDuration::from_micros(10), move |sim| {
            o1.borrow_mut().push("first");
            let o = Rc::clone(&o1);
            cpu2.run(sim, SimDuration::from_micros(10), move |_sim| {
                o.borrow_mut().push("chained");
            });
        });
        let o2 = Rc::clone(&order);
        cpu.run(&mut sim, SimDuration::from_micros(10), move |_sim| {
            o2.borrow_mut().push("second");
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "chained"]);
    }
}
