//! The metadata manager daemon.
//!
//! §3.2: "A manager daemon runs on a meta-data manager node. It handles
//! meta-data operations involving file permissions, truncation, file
//! stripe characteristics, and so on... the meta-data manager does not
//! participate in read/write operations." Clients perform one `open`
//! round trip before streaming I/O.

use crate::process::ProcessCpu;
use ioat_netsim::msg::{self, MsgSender};
use ioat_netsim::Socket;
use ioat_simcore::{Sim, SimDuration};
use std::rc::Rc;

/// Wire size of a metadata request.
pub const META_REQ_BYTES: u64 = 256;
/// Wire size of a metadata reply (layout descriptor).
pub const META_REPLY_BYTES: u64 = 512;

/// Metadata operation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MetaParams {
    /// CPU cost of an `open` (permission check, layout lookup).
    pub open_cost: SimDuration,
}

impl Default for MetaParams {
    fn default() -> Self {
        MetaParams {
            open_cost: SimDuration::from_micros(80),
        }
    }
}

/// Installs the manager daemon on the server endpoint of a metadata
/// connection and returns the client-side request sender; `on_open`
/// fires at the client when the reply arrives.
pub fn serve_meta<F>(
    client_sock: Socket,
    manager_sock: Socket,
    params: MetaParams,
    on_open: F,
) -> MsgSender<()>
where
    F: FnMut(&mut Sim, ()) + 'static,
{
    // Replies manager → client.
    let reply = Rc::new(msg::channel(
        manager_sock.clone(),
        client_sock.clone(),
        on_open,
    ));
    // Requests client → manager.
    let manager2 = manager_sock.clone();
    msg::channel(client_sock, manager_sock, move |sim: &mut Sim, _req: ()| {
        let reply2 = Rc::clone(&reply);
        manager2.compute(sim, params.open_cost, move |sim| {
            reply2.send(sim, META_REPLY_BYTES, ());
        });
    })
}

/// [`serve_meta`] with the manager running as a single-threaded process:
/// every connection to the manager passes the same [`ProcessCpu`], so
/// concurrent opens from many clients queue behind one serial daemon —
/// the §3.2 "manager daemon" is one process, and the
/// metadata-contention scenario measures exactly that queue.
pub fn serve_meta_shared<F>(
    client_sock: Socket,
    manager_sock: Socket,
    params: MetaParams,
    cpu: ProcessCpu,
    on_open: F,
) -> MsgSender<()>
where
    F: FnMut(&mut Sim, ()) + 'static,
{
    // Replies manager → client.
    let reply = Rc::new(msg::channel(
        manager_sock.clone(),
        client_sock.clone(),
        on_open,
    ));
    // Requests client → manager, serialized on the manager's thread.
    msg::channel(client_sock, manager_sock, move |sim: &mut Sim, _req: ()| {
        let reply2 = Rc::clone(&reply);
        cpu.run(sim, params.open_cost, move |sim| {
            reply2.send(sim, META_REPLY_BYTES, ());
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_netsim::config::{IoatConfig, SocketOpts, StackParams};
    use ioat_netsim::socket::socket_pair;
    use ioat_netsim::stack::HostStack;
    use ioat_netsim::ConnId;
    use ioat_simcore::time::Bandwidth;
    use std::cell::RefCell;

    #[test]
    fn open_round_trip_completes() {
        let mut sim = Sim::new();
        let c = HostStack::new("client", 4, StackParams::default(), IoatConfig::disabled());
        let s = HostStack::new("server", 4, StackParams::default(), IoatConfig::disabled());
        let (cs, ss) = socket_pair(
            &c,
            &s,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(25),
            SocketOpts::tuned(),
            ConnId(1),
        );
        let opened = Rc::new(RefCell::new(0u32));
        let o = Rc::clone(&opened);
        let sender = serve_meta(cs, ss, MetaParams::default(), move |_sim, ()| {
            *o.borrow_mut() += 1;
        });
        sender.send(&mut sim, META_REQ_BYTES, ());
        sender.send(&mut sim, META_REQ_BYTES, ());
        sim.run();
        assert_eq!(*opened.borrow(), 2, "both opens must complete");
    }
}
