//! Compute-node clients.
//!
//! A client opens the file through the metadata manager, then reads or
//! writes its region as striped pieces with a bounded pipeline of
//! outstanding requests per process — PVFS flows data in chunks rather
//! than issuing the whole region at once. Completed bytes feed the
//! aggregate-bandwidth counter the `pvfs-test` harness reports.

use crate::iod::{IodReply, IodRequest, READ_REQ_BYTES, WRITE_ACK_BYTES};
use crate::layout::{Layout, StripePiece};
use crate::process::ProcessCpu;
use ioat_faults::{FaultInjector, RetryPolicy};
use ioat_netsim::msg::MsgSender;
use ioat_netsim::Socket;
use ioat_simcore::{Counter, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Direction of the concurrent test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IoMode {
    /// `pvfs-test` read phase: servers stream to clients.
    Read,
    /// `pvfs-test` write phase: clients stream to servers.
    Write,
}

/// Per-client driving parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClientParams {
    /// Outstanding piece requests per client process.
    pub pipeline: usize,
    /// Fixed client CPU cost to post-process one completed piece.
    pub piece_base: SimDuration,
    /// Per-byte client CPU cost (aggregation/validation), picoseconds.
    pub piece_ps_per_byte: u64,
    /// Per-byte process-context cost to touch received payload when the
    /// CPU performs the kernel→user copy (no DMA engine): the copy plus
    /// the cache pollution it leaves in the process's working set. For
    /// reads this applies to every data piece; for writes only to the
    /// small ack. Single-threaded model only.
    pub rx_copy_ps_per_byte: u64,
    /// Residual per-byte cost when the I/OAT DMA engine performs the
    /// copy (descriptor posting + completion reaping).
    pub rx_offload_ps_per_byte: u64,
}

impl Default for ClientParams {
    fn default() -> Self {
        ClientParams {
            pipeline: 4,
            piece_base: SimDuration::from_micros(8),
            piece_ps_per_byte: 400,
            rx_copy_ps_per_byte: 3430,
            rx_offload_ps_per_byte: 2000,
        }
    }
}

impl ClientParams {
    /// Client CPU cost to consume a completed piece of `len` bytes.
    pub fn piece_cost(&self, len: u64) -> SimDuration {
        self.piece_base + SimDuration::from_nanos(len * self.piece_ps_per_byte / 1000)
    }

    /// The effective per-byte receive-copy cost under `dma_engine`.
    pub fn rx_ps_per_byte(&self, dma_engine: bool) -> u64 {
        if dma_engine {
            self.rx_offload_ps_per_byte
        } else {
            self.rx_copy_ps_per_byte
        }
    }

    /// Single-threaded-model cost to consume a reply whose wire payload
    /// was `rx_bytes` for a piece of `len` bytes: piece bookkeeping plus
    /// the process-context copy of what actually arrived.
    pub fn consume_cost(&self, len: u64, rx_bytes: u64, rx_ps_per_byte: u64) -> SimDuration {
        self.piece_cost(len) + SimDuration::from_nanos(rx_bytes * rx_ps_per_byte / 1000)
    }
}

/// Fault/recovery activity of one client process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClientFaultStats {
    /// Per-op deadlines that expired.
    pub timeouts: u64,
    /// Requests reissued after a timeout.
    pub retries: u64,
    /// Reissues that moved the op to a different I/O server.
    pub failovers: u64,
    /// Ops abandoned after exhausting retries.
    pub failed_ops: u64,
    /// Replies that arrived for an op already retried or abandoned.
    pub stale_replies: u64,
}

/// One outstanding attempt: which piece, which server it was sent to,
/// how many times it has already been reissued.
struct OpState {
    piece: StripePiece,
    server: usize,
    attempts: u32,
}

struct State {
    pieces: Vec<StripePiece>,
    next: usize,
    outstanding: usize,
    mode: IoMode,
    params: ClientParams,
    /// Outstanding ops keyed by attempt id. A retry mints a fresh id, so
    /// a late reply to a superseded attempt is recognizably stale.
    ops: BTreeMap<u64, OpState>,
    next_op: u64,
    done: Rc<RefCell<Counter>>,
    started: bool,
    faults: FaultInjector,
    retry: RetryPolicy,
    stats: ClientFaultStats,
    /// Ops whose reply arrived in time (lifecycle audit bookkeeping).
    completed_ops: u64,
    /// Single-threaded process model: when set, reply processing runs
    /// through this serial thread with the rx-copy term at `rx_ps`.
    proc: Option<ProcessCpu>,
    rx_ps: u64,
}

/// One compute-node client process.
pub struct ClientProcess {
    state: Rc<RefCell<State>>,
    senders: Rc<RefCell<Vec<MsgSender<IodRequest>>>>,
    socket_for_compute: Socket,
}

impl std::fmt::Debug for ClientProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("ClientProcess")
            .field("pieces", &s.pieces.len())
            .field("outstanding", &s.outstanding)
            .finish()
    }
}

impl ClientProcess {
    /// Creates a client that will cycle over `[0, region)` of a file with
    /// the given layout. `done` accumulates completed bytes.
    /// `socket_for_compute` is any of the client's sockets (used to charge
    /// processing to the client node).
    pub fn new(
        layout: Layout,
        region: u64,
        mode: IoMode,
        params: ClientParams,
        done: Rc<RefCell<Counter>>,
        socket_for_compute: Socket,
    ) -> Self {
        assert!(params.pipeline > 0, "pipeline must be at least 1");
        let pieces = layout.pieces(0, region);
        assert!(!pieces.is_empty(), "region must contain at least one piece");
        ClientProcess {
            state: Rc::new(RefCell::new(State {
                pieces,
                next: 0,
                outstanding: 0,
                mode,
                params,
                ops: BTreeMap::new(),
                next_op: 0,
                done,
                started: false,
                faults: FaultInjector::inert(),
                retry: RetryPolicy::default(),
                stats: ClientFaultStats::default(),
                completed_ops: 0,
                proc: None,
                rx_ps: 0,
            })),
            senders: Rc::new(RefCell::new(Vec::new())),
            socket_for_compute,
        }
    }

    /// Arms the client's recovery machinery: per-op deadlines, bounded
    /// retries and failover to surviving servers. With an inert injector
    /// (the default) no deadline events are ever scheduled.
    pub fn set_faults(&self, faults: FaultInjector, retry: RetryPolicy) {
        let mut st = self.state.borrow_mut();
        st.faults = faults;
        st.retry = retry;
    }

    /// Switches the client to the single-threaded process model: reply
    /// processing serializes on `proc` and each reply is charged the
    /// process-context rx copy of its wire payload at `rx_ps_per_byte`
    /// picoseconds per byte. Without this call the client keeps the
    /// legacy behavior (each reply computes on the least-loaded core,
    /// no rx-copy term).
    pub fn set_process_cpu(&self, proc: ProcessCpu, rx_ps_per_byte: u64) {
        let mut st = self.state.borrow_mut();
        st.proc = Some(proc);
        st.rx_ps = rx_ps_per_byte;
    }

    /// Fault/recovery counters accumulated so far.
    pub fn fault_stats(&self) -> ClientFaultStats {
        self.state.borrow().stats
    }

    /// Request-lifecycle audit: every minted op id leaves the outstanding
    /// map exactly one way — answered in time, expired at its deadline
    /// (then retried or abandoned), or still pending. Exact identities,
    /// valid at any event boundary.
    pub fn audit(&self, now: SimTime) {
        let st = self.state.borrow();
        let component = "pvfs/client";
        ioat_guard::check(
            component,
            "ops minted = completed + timed-out + pending",
            now,
            st.next_op == st.completed_ops + st.stats.timeouts + st.ops.len() as u64,
            || {
                format!(
                    "next_op={} but completed={} + timeouts={} + pending={}",
                    st.next_op,
                    st.completed_ops,
                    st.stats.timeouts,
                    st.ops.len()
                )
            },
        );
        ioat_guard::check(
            component,
            "timeouts = retries + abandoned",
            now,
            st.stats.timeouts == st.stats.retries + st.stats.failed_ops,
            || {
                format!(
                    "timeouts={} but retries={} + failed_ops={}",
                    st.stats.timeouts, st.stats.retries, st.stats.failed_ops
                )
            },
        );
        ioat_guard::check(
            component,
            "failovers ≤ retries",
            now,
            st.stats.failovers <= st.stats.retries,
            || {
                format!(
                    "failovers={} > retries={}",
                    st.stats.failovers, st.stats.retries
                )
            },
        );
        ioat_guard::check(
            component,
            "stale replies ≤ timeouts",
            now,
            st.stats.stale_replies <= st.stats.timeouts,
            || {
                format!(
                    "stale_replies={} > timeouts={}",
                    st.stats.stale_replies, st.stats.timeouts
                )
            },
        );
        ioat_guard::check(
            component,
            "outstanding mirror = pending map size",
            now,
            st.outstanding == st.ops.len(),
            || {
                format!(
                    "cached outstanding={} but ops map holds {}",
                    st.outstanding,
                    st.ops.len()
                )
            },
        );
    }

    /// Registers the request sender for server `index` (must be called
    /// for every server before [`ClientProcess::start`]).
    pub fn add_server_sender(&self, sender: MsgSender<IodRequest>) {
        self.senders.borrow_mut().push(sender);
    }

    /// The reply handler for one server connection; pass to
    /// [`crate::iod::serve`]. Replies are matched to outstanding ops by
    /// the echoed op id (not arrival order), so the same handler works
    /// under retries and failover. `conn_sock` is the client endpoint of
    /// that connection — the handler re-posts its read after processing,
    /// so a credit-limited connection exerts backpressure while the
    /// client thread is busy.
    pub fn reply_handler(&self, conn_sock: Socket) -> impl FnMut(&mut Sim, IodReply) + 'static {
        let state = Rc::clone(&self.state);
        let senders = Rc::clone(&self.senders);
        let sock = self.socket_for_compute.clone();
        move |sim, reply| {
            let (cost, proc) = {
                let mut st = state.borrow_mut();
                let Some(opst) = st.ops.remove(&reply.op()) else {
                    // The op was already retried or abandoned; discard the
                    // late answer but keep the credit-limited connection
                    // receiving. Stale replies cost no client CPU.
                    st.stats.stale_replies += 1;
                    drop(st);
                    conn_sock.post_recv(sim);
                    return;
                };
                let len = opst.piece.len;
                st.outstanding -= 1;
                st.completed_ops += 1;
                st.done.borrow_mut().add_at(sim.now(), len);
                let cost = match st.proc {
                    // Single-threaded model: charge the rx copy of what
                    // came over the wire — the data piece for reads, the
                    // 64-byte ack for writes.
                    Some(_) => {
                        let rx_bytes = match reply {
                            IodReply::Data { len, .. } => len,
                            IodReply::Ack { .. } => WRITE_ACK_BYTES,
                        };
                        st.params.consume_cost(len, rx_bytes, st.rx_ps)
                    }
                    None => st.params.piece_cost(len),
                };
                (cost, st.proc.clone())
            };
            let state2 = Rc::clone(&state);
            let senders2 = Rc::clone(&senders);
            let conn2 = conn_sock.clone();
            let then = move |sim: &mut Sim| {
                conn2.post_recv(sim);
                issue(&state2, &senders2, sim);
            };
            match proc {
                Some(p) => p.run(sim, cost, then),
                None => sock.compute(sim, cost, then),
            }
        }
    }

    /// Starts the pipeline (typically from the metadata-open completion).
    pub fn start(&self, sim: &mut Sim) {
        {
            let mut st = self.state.borrow_mut();
            if st.started {
                return;
            }
            st.started = true;
        }
        issue(&self.state, &self.senders, sim);
    }
}

type Senders = Rc<RefCell<Vec<MsgSender<IodRequest>>>>;

fn issue(state: &Rc<RefCell<State>>, senders: &Senders, sim: &mut Sim) {
    loop {
        let action = {
            let mut st = state.borrow_mut();
            if st.outstanding >= st.params.pipeline {
                None
            } else {
                let idx = st.next % st.pieces.len();
                let piece = st.pieces[idx];
                st.next += 1;
                st.outstanding += 1;
                let op = st.next_op;
                st.next_op += 1;
                st.ops.insert(
                    op,
                    OpState {
                        piece,
                        server: piece.server,
                        attempts: 0,
                    },
                );
                Some((op, piece, st.mode, st.faults.is_active()))
            }
        };
        let Some((op, piece, mode, faulty)) = action else {
            return;
        };
        send_request(senders, sim, piece.server, op, piece.len, mode);
        if faulty {
            arm_deadline(state, senders, sim, op, 0);
        }
    }
}

fn send_request(senders: &Senders, sim: &mut Sim, server: usize, op: u64, len: u64, mode: IoMode) {
    let senders = senders.borrow();
    let sender = &senders[server];
    match mode {
        IoMode::Read => sender.send(sim, READ_REQ_BYTES, IodRequest::Read { op, len }),
        IoMode::Write => sender.send(sim, len, IodRequest::Write { op, len }),
    }
}

/// Schedules the per-op deadline (only called when faults are active).
fn arm_deadline(
    state: &Rc<RefCell<State>>,
    senders: &Senders,
    sim: &mut Sim,
    op: u64,
    attempt: u32,
) {
    let deadline = state.borrow().retry.deadline(attempt);
    let state2 = Rc::clone(state);
    let senders2 = Rc::clone(senders);
    sim.schedule(deadline, move |sim| {
        deadline_fired(&state2, &senders2, sim, op);
    });
}

fn deadline_fired(state: &Rc<RefCell<State>>, senders: &Senders, sim: &mut Sim, op: u64) {
    let mut refill = false;
    let action = {
        let mut st = state.borrow_mut();
        match st.ops.remove(&op) {
            None => None, // answered in time; the timer is a no-op
            Some(opst) => {
                st.stats.timeouts += 1;
                if opst.attempts < st.retry.max_retries {
                    let n = senders.borrow().len();
                    let now = sim.now();
                    // Retry in place if the daemon looks alive (the loss
                    // was in the network); otherwise fail over to the
                    // next surviving server, advancing cyclically if
                    // every daemon looks down.
                    let target = if !st.faults.service_down(opst.server as u32, now) {
                        opst.server
                    } else {
                        let mut t = (opst.server + 1) % n;
                        for step in 1..=n {
                            let cand = (opst.server + step) % n;
                            if !st.faults.service_down(cand as u32, now) {
                                t = cand;
                                break;
                            }
                        }
                        t
                    };
                    st.stats.retries += 1;
                    if target != opst.server {
                        st.stats.failovers += 1;
                    }
                    let new_op = st.next_op;
                    st.next_op += 1;
                    let attempts = opst.attempts + 1;
                    st.ops.insert(
                        new_op,
                        OpState {
                            piece: opst.piece,
                            server: target,
                            attempts,
                        },
                    );
                    Some((new_op, opst.piece, target, st.mode, attempts))
                } else {
                    st.stats.failed_ops += 1;
                    st.outstanding -= 1;
                    refill = true;
                    None
                }
            }
        }
    };
    if let Some((new_op, piece, server, mode, attempts)) = action {
        send_request(senders, sim, server, new_op, piece.len, mode);
        arm_deadline(state, senders, sim, new_op, attempts);
    } else if refill {
        issue(state, senders, sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piece_cost_scales() {
        let p = ClientParams::default();
        assert!(p.piece_cost(65_536) > p.piece_cost(1_024));
        assert_eq!(p.piece_cost(0), p.piece_base);
    }

    #[test]
    #[should_panic(expected = "pipeline")]
    fn zero_pipeline_rejected() {
        let done = Rc::new(RefCell::new(Counter::new()));
        // A throwaway socket is needed; build a minimal pair.
        let a = ioat_netsim::stack::HostStack::new(
            "a",
            2,
            ioat_netsim::StackParams::default(),
            ioat_netsim::IoatConfig::disabled(),
        );
        let b = ioat_netsim::stack::HostStack::new(
            "b",
            2,
            ioat_netsim::StackParams::default(),
            ioat_netsim::IoatConfig::disabled(),
        );
        let (sock, _) = ioat_netsim::socket::socket_pair(
            &a,
            &b,
            ioat_simcore::time::Bandwidth::from_gbps(1),
            ioat_simcore::SimDuration::ZERO,
            ioat_netsim::SocketOpts::tuned(),
            ioat_netsim::ConnId(1),
        );
        let params = ClientParams {
            pipeline: 0,
            ..ClientParams::default()
        };
        ClientProcess::new(
            Layout::default_over(2),
            1 << 20,
            IoMode::Read,
            params,
            done,
            sock,
        );
    }
}
