//! Compute-node clients.
//!
//! A client opens the file through the metadata manager, then reads or
//! writes its region as striped pieces with a bounded pipeline of
//! outstanding requests per process — PVFS flows data in chunks rather
//! than issuing the whole region at once. Completed bytes feed the
//! aggregate-bandwidth counter the `pvfs-test` harness reports.

use crate::iod::{IodReply, IodRequest, READ_REQ_BYTES};
use crate::layout::{Layout, StripePiece};
use ioat_netsim::msg::MsgSender;
use ioat_netsim::Socket;
use ioat_simcore::{Counter, Sim, SimDuration};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Direction of the concurrent test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IoMode {
    /// `pvfs-test` read phase: servers stream to clients.
    Read,
    /// `pvfs-test` write phase: clients stream to servers.
    Write,
}

/// Per-client driving parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClientParams {
    /// Outstanding piece requests per client process.
    pub pipeline: usize,
    /// Fixed client CPU cost to post-process one completed piece.
    pub piece_base: SimDuration,
    /// Per-byte client CPU cost (aggregation/validation), picoseconds.
    pub piece_ps_per_byte: u64,
}

impl Default for ClientParams {
    fn default() -> Self {
        ClientParams {
            pipeline: 4,
            piece_base: SimDuration::from_micros(8),
            piece_ps_per_byte: 400,
        }
    }
}

impl ClientParams {
    /// Client CPU cost to consume a completed piece of `len` bytes.
    pub fn piece_cost(&self, len: u64) -> SimDuration {
        self.piece_base + SimDuration::from_nanos(len * self.piece_ps_per_byte / 1000)
    }
}

struct State {
    pieces: Vec<StripePiece>,
    next: usize,
    outstanding: usize,
    mode: IoMode,
    params: ClientParams,
    /// FIFO of issued piece lengths per server (acks return in order).
    in_flight: Vec<VecDeque<u64>>,
    done: Rc<RefCell<Counter>>,
    started: bool,
}

/// One compute-node client process.
pub struct ClientProcess {
    state: Rc<RefCell<State>>,
    senders: Rc<RefCell<Vec<MsgSender<IodRequest>>>>,
    socket_for_compute: Socket,
}

impl std::fmt::Debug for ClientProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("ClientProcess")
            .field("pieces", &s.pieces.len())
            .field("outstanding", &s.outstanding)
            .finish()
    }
}

impl ClientProcess {
    /// Creates a client that will cycle over `[0, region)` of a file with
    /// the given layout. `done` accumulates completed bytes.
    /// `socket_for_compute` is any of the client's sockets (used to charge
    /// processing to the client node).
    pub fn new(
        layout: Layout,
        region: u64,
        mode: IoMode,
        params: ClientParams,
        done: Rc<RefCell<Counter>>,
        socket_for_compute: Socket,
    ) -> Self {
        assert!(params.pipeline > 0, "pipeline must be at least 1");
        let pieces = layout.pieces(0, region);
        assert!(!pieces.is_empty(), "region must contain at least one piece");
        ClientProcess {
            state: Rc::new(RefCell::new(State {
                pieces,
                next: 0,
                outstanding: 0,
                mode,
                params,
                in_flight: vec![VecDeque::new(); layout.servers],
                done,
                started: false,
            })),
            senders: Rc::new(RefCell::new(Vec::new())),
            socket_for_compute,
        }
    }

    /// Registers the request sender for server `index` (must be called
    /// for every server before [`ClientProcess::start`]).
    pub fn add_server_sender(&self, sender: MsgSender<IodRequest>) {
        self.senders.borrow_mut().push(sender);
    }

    /// The reply handler for server `server`'s connection; pass to
    /// [`crate::iod::serve`]. `conn_sock` is the client endpoint of that
    /// connection — the handler re-posts its read after processing, so a
    /// credit-limited connection exerts backpressure while the client
    /// thread is busy.
    pub fn reply_handler(
        &self,
        server: usize,
        conn_sock: Socket,
    ) -> impl FnMut(&mut Sim, IodReply) + 'static {
        let state = Rc::clone(&self.state);
        let senders = Rc::clone(&self.senders);
        let sock = self.socket_for_compute.clone();
        move |sim, reply| {
            let (len, cost) = {
                let mut st = state.borrow_mut();
                let len = match reply {
                    IodReply::Data { len } => {
                        st.in_flight[server].pop_front();
                        len
                    }
                    IodReply::Ack => st.in_flight[server]
                        .pop_front()
                        .expect("ack without an in-flight write"),
                };
                st.outstanding -= 1;
                st.done.borrow_mut().add_at(sim.now(), len);
                (len, st.params.piece_cost(len))
            };
            let _ = len;
            let state2 = Rc::clone(&state);
            let senders2 = Rc::clone(&senders);
            let conn2 = conn_sock.clone();
            sock.compute(sim, cost, move |sim| {
                conn2.post_recv(sim);
                issue(&state2, &senders2, sim);
            });
        }
    }

    /// Starts the pipeline (typically from the metadata-open completion).
    pub fn start(&self, sim: &mut Sim) {
        {
            let mut st = self.state.borrow_mut();
            if st.started {
                return;
            }
            st.started = true;
        }
        issue(&self.state, &self.senders, sim);
    }
}

fn issue(
    state: &Rc<RefCell<State>>,
    senders: &Rc<RefCell<Vec<MsgSender<IodRequest>>>>,
    sim: &mut Sim,
) {
    loop {
        let action = {
            let mut st = state.borrow_mut();
            if st.outstanding >= st.params.pipeline {
                None
            } else {
                let idx = st.next % st.pieces.len();
                let piece = st.pieces[idx];
                st.next += 1;
                st.outstanding += 1;
                st.in_flight[piece.server].push_back(piece.len);
                Some((piece, st.mode))
            }
        };
        let Some((piece, mode)) = action else { return };
        let senders = senders.borrow();
        let sender = &senders[piece.server];
        match mode {
            IoMode::Read => sender.send(sim, READ_REQ_BYTES, IodRequest::Read { len: piece.len }),
            IoMode::Write => sender.send(sim, piece.len, IodRequest::Write { len: piece.len }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piece_cost_scales() {
        let p = ClientParams::default();
        assert!(p.piece_cost(65_536) > p.piece_cost(1_024));
        assert_eq!(p.piece_cost(0), p.piece_base);
    }

    #[test]
    #[should_panic(expected = "pipeline")]
    fn zero_pipeline_rejected() {
        let done = Rc::new(RefCell::new(Counter::new()));
        // A throwaway socket is needed; build a minimal pair.
        let a = ioat_netsim::stack::HostStack::new(
            "a",
            2,
            ioat_netsim::StackParams::default(),
            ioat_netsim::IoatConfig::disabled(),
        );
        let b = ioat_netsim::stack::HostStack::new(
            "b",
            2,
            ioat_netsim::StackParams::default(),
            ioat_netsim::IoatConfig::disabled(),
        );
        let (sock, _) = ioat_netsim::socket::socket_pair(
            &a,
            &b,
            ioat_simcore::time::Bandwidth::from_gbps(1),
            ioat_simcore::SimDuration::ZERO,
            ioat_netsim::SocketOpts::tuned(),
            ioat_netsim::ConnId(1),
        );
        let params = ClientParams {
            pipeline: 0,
            ..ClientParams::default()
        };
        ClientProcess::new(
            Layout::default_over(2),
            1 << 20,
            IoMode::Read,
            params,
            done,
            sock,
        );
    }
}
