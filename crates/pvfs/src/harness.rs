//! The `pvfs-test`-equivalent experiment drivers (§6).
//!
//! §6.2.1: "each compute node simultaneously reads or writes a single
//! contiguous region of size 2N Mbytes, where N is the number of I/O
//! nodes in use" — 2 MB per I/O server per client. The two-node testbed
//! hosts one I/O daemon per GigE port ("six I/O servers") on the server
//! node and the compute processes on the other node. For steady-state
//! bandwidth the harness cycles each client's region until the
//! measurement window closes.
//!
//! CPU is reported where the paper reports it: the *client* node for
//! reads ("since I/OAT is a receiver-side optimization, we report the
//! average CPU utilization at the client-side while performing a read
//! operation"), the *server* node for writes.

use crate::client::{ClientFaultStats, ClientParams, ClientProcess, IoMode};
use crate::iod::{self, IodParams};
use crate::layout::{Layout, DEFAULT_STRIPE};
use crate::meta::{self, MetaParams, META_REQ_BYTES};
use crate::process::ProcessCpu;
use ioat_core::cluster::{Cluster, NodeConfig};
use ioat_core::metrics::ExperimentWindow;
use ioat_core::{IoatConfig, SocketOpts};
use ioat_faults::{FaultInjector, FaultPlan, RetryPolicy};
use ioat_simcore::{Counter, SimDuration, SimTime};
use ioat_telemetry::{Category, Tracer, TrackId};
use std::cell::RefCell;
use std::rc::Rc;

/// Pseudo node id for per-client I/O-operation lanes in exported traces
/// (real nodes are 0 = compute, 1 = io-server).
pub const IO_LANES_NODE: u32 = 2;

/// Configuration of a PVFS experiment.
#[derive(Debug, Clone)]
pub struct PvfsConfig {
    /// Number of I/O daemons (one per GigE port pair).
    pub io_servers: usize,
    /// Number of compute-node client processes.
    pub clients: usize,
    /// Per-client region bytes per server (2 MB in the paper).
    pub region_per_server: u64,
    /// Stripe unit in bytes (PVFS 1.x default: 64 KB). The
    /// `fig_pvfs_extended` stripe-size sweep varies this; every paper
    /// figure keeps the default.
    pub stripe: u64,
    /// I/OAT features on both nodes.
    pub ioat: IoatConfig,
    /// Daemon cost model.
    pub iod: IodParams,
    /// Metadata cost model.
    pub meta: MetaParams,
    /// Client driving parameters.
    pub client: ClientParams,
    /// Measurement window.
    pub window: ExperimentWindow,
    /// Fault plan. Service id `s` in a crash window is I/O daemon `s`;
    /// [`FaultPlan::none()`] keeps runs bit-identical to fault-free
    /// builds (no deadline events are scheduled at all).
    pub faults: FaultPlan,
    /// Per-op deadline/retry/failover policy, consulted only when
    /// `faults` is active.
    pub retry: RetryPolicy,
    /// Single-threaded process model (the corrected default): one serial
    /// `iod` thread per I/O server shared by every client connection,
    /// one serial thread per client process, one serial metadata
    /// manager, with process-context rx-copy charged on the receiving
    /// side. `false` restores the legacy per-connection model in which
    /// every connection had its own daemon handler and all work spread
    /// over the node's least-loaded cores — kept for differential
    /// testing ([`PvfsConfig::legacy_threading`]).
    pub single_threaded: bool,
    /// Per-port line rate (the paper's testbed: 1 GbE).
    pub link: ioat_simcore::time::Bandwidth,
    /// Hardware era both nodes are calibrated against.
    pub profile: ioat_core::calibration::NodeProfile,
}

impl PvfsConfig {
    /// The paper's setup at a given server/client count.
    pub fn paper(io_servers: usize, clients: usize, ioat: IoatConfig) -> Self {
        PvfsConfig {
            io_servers,
            clients,
            region_per_server: 2 * 1024 * 1024,
            stripe: DEFAULT_STRIPE,
            ioat,
            iod: IodParams::default(),
            meta: MetaParams::default(),
            client: ClientParams::default(),
            window: ExperimentWindow::standard(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            single_threaded: true,
            link: ioat_core::calibration::port_bandwidth(),
            profile: ioat_core::calibration::NodeProfile::Testbed2007,
        }
    }

    /// Small fast configuration for unit tests (a shallow pipeline and
    /// the serial client thread keep one client below the 2-port wire so
    /// scaling is observable).
    pub fn quick_test(io_servers: usize, clients: usize, ioat: IoatConfig) -> Self {
        PvfsConfig {
            io_servers,
            clients,
            region_per_server: 512 * 1024,
            stripe: DEFAULT_STRIPE,
            ioat,
            iod: IodParams::default(),
            meta: MetaParams::default(),
            client: ClientParams {
                pipeline: 2,
                ..ClientParams::default()
            },
            window: ExperimentWindow::quick(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            single_threaded: true,
            link: ioat_core::calibration::port_bandwidth(),
            profile: ioat_core::calibration::NodeProfile::Testbed2007,
        }
    }

    /// The same run shape at a different line rate and hardware era —
    /// the PVFS cell of the modern-offload ablation.
    pub fn with_link(
        mut self,
        link: ioat_simcore::time::Bandwidth,
        profile: ioat_core::calibration::NodeProfile,
    ) -> Self {
        self.link = link;
        self.profile = profile;
        self
    }

    /// Switches to the legacy per-connection threading model (the
    /// pre-fix behavior whose throughput was wire-bound): no serial
    /// process threads, no rx-copy terms. Differential tests pin this
    /// path bit-for-bit against the recorded wire-bound rows.
    pub fn legacy_threading(mut self) -> Self {
        self.single_threaded = false;
        self
    }
}

/// Outcome of a PVFS experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PvfsResult {
    /// Aggregate bandwidth in MB/s (10^6 bytes/s), the paper's unit.
    pub mbytes_per_sec: f64,
    /// Compute-node overall CPU utilization.
    pub client_cpu: f64,
    /// I/O-server-node overall CPU utilization.
    pub server_cpu: f64,
    /// Completed metadata opens (one per client).
    pub opens: u64,
    /// Per-op deadlines that expired, summed over clients.
    pub timeouts: u64,
    /// Requests reissued after a timeout, summed over clients.
    pub retries: u64,
    /// Reissues redirected to a different I/O server.
    pub failovers: u64,
    /// Ops abandoned after exhausting retries.
    pub failed_ops: u64,
    /// Replies discarded because their op was already retried/abandoned.
    pub stale_replies: u64,
    /// Requests dropped by crashed I/O daemons.
    pub daemon_drops: u64,
    /// When the last client's metadata open completed, in µs of
    /// simulation time. With the single-threaded manager every open
    /// queues behind one serial daemon, so this is the direct measure of
    /// metadata-manager contention (`fig_pvfs_extended`).
    pub last_open_us: f64,
}

fn run(cfg: &PvfsConfig, mode: IoMode) -> PvfsResult {
    run_traced(cfg, mode, &Tracer::disabled())
}

fn run_traced(cfg: &PvfsConfig, mode: IoMode, tracer: &Tracer) -> PvfsResult {
    run_traced_modes(cfg, &|_| mode, tracer)
}

fn run_traced_modes(
    cfg: &PvfsConfig,
    mode_of: &dyn Fn(usize) -> IoMode,
    tracer: &Tracer,
) -> PvfsResult {
    assert!(cfg.io_servers > 0 && cfg.clients > 0);
    let mut cluster = Cluster::new(0xF5);
    cluster.set_tracer(tracer.clone());
    cluster.set_faults(&cfg.faults);
    if tracer.is_enabled() {
        tracer.set_process_name(IO_LANES_NODE, "pvfs-ops");
    }
    // App-level views of the plan: daemon crash windows on the server
    // node (1), the clients' own failover view on the compute node (0).
    let server_faults = FaultInjector::new(&cfg.faults, 1);
    let client_faults = FaultInjector::new(&cfg.faults, 0);
    cluster.set_bandwidth(cfg.link);
    let compute = cluster.add_node(NodeConfig::profiled("compute", cfg.ioat, cfg.profile));
    let server = cluster.add_node(NodeConfig::profiled("io-server", cfg.ioat, cfg.profile));
    let opts = SocketOpts::tuned();
    let pairs = cluster.connect_ports(compute, server, cfg.io_servers, opts.coalescing);

    let done = Rc::new(RefCell::new({
        let mut c = Counter::new();
        c.begin_window(cfg.window.from());
        c
    }));
    let opens = Rc::new(RefCell::new(0u64));
    let last_open = Rc::new(RefCell::new(SimTime::ZERO));
    let layout = Layout::new(cfg.stripe, cfg.io_servers, 0);
    let region = cfg.region_per_server * cfg.io_servers as u64;
    let mut processes = Vec::new();
    // Single-threaded model: one serial daemon thread per I/O server
    // (shared by every client's connection to it) and one manager
    // thread, created lazily from the first connection's server socket.
    let rx_iod = cfg.iod.rx_ps_per_byte(cfg.ioat.dma_engine);
    let rx_client = cfg.client.rx_ps_per_byte(cfg.ioat.dma_engine);
    let mut daemon_cpus: Vec<ProcessCpu> = Vec::new();
    let mut manager_cpu: Option<ProcessCpu> = None;

    for c in 0..cfg.clients {
        // Data connections: one per I/O server, over that server's port.
        let mut client_socks = Vec::new();
        let mut server_socks = Vec::new();
        for (s, pair) in pairs.iter().enumerate() {
            let _ = s;
            let (cs, ss) = cluster.open(compute, server, *pair, opts);
            client_socks.push(cs);
            server_socks.push(ss);
        }
        let process = Rc::new(ClientProcess::new(
            layout,
            region,
            mode_of(c),
            cfg.client,
            Rc::clone(&done),
            client_socks[0].clone(),
        ));
        process.set_faults(client_faults.clone(), cfg.retry);
        if cfg.single_threaded {
            process.set_process_cpu(ProcessCpu::new(client_socks[0].clone()), rx_client);
        }
        processes.push(Rc::clone(&process));
        let lane = TrackId::new(IO_LANES_NODE, c as u32);
        tracer.set_track_name(lane, &format!("client{c}"));
        for s in 0..cfg.io_servers {
            // One read posted at a time per connection: while the client
            // thread processes a piece, further data backs up in the
            // kernel (real recv-loop backpressure).
            client_socks[s].set_recv_credits(1);
            let mut on_reply = process.reply_handler(client_socks[s].clone());
            let trc = tracer.clone();
            let on_reply = move |sim: &mut ioat_simcore::Sim, reply| {
                trc.instant("io_reply", Category::Io, lane, sim.now());
                on_reply(sim, reply);
            };
            let sender = if cfg.single_threaded {
                if daemon_cpus.len() == s {
                    daemon_cpus.push(ProcessCpu::new(server_socks[s].clone()));
                }
                iod::serve_shared(
                    client_socks[s].clone(),
                    server_socks[s].clone(),
                    cfg.iod,
                    daemon_cpus[s].clone(),
                    rx_iod,
                    server_faults.clone(),
                    s as u32,
                    on_reply,
                )
            } else {
                iod::serve_with_faults(
                    client_socks[s].clone(),
                    server_socks[s].clone(),
                    cfg.iod,
                    server_faults.clone(),
                    s as u32,
                    on_reply,
                )
            };
            process.add_server_sender(sender);
        }

        // Metadata connection over the first port; the client starts its
        // pipeline when the open completes.
        let (mc, ms) = cluster.open(compute, server, pairs[0], opts);
        let proc2 = Rc::clone(&process);
        let opens2 = Rc::clone(&opens);
        let last_open2 = Rc::clone(&last_open);
        let issued_at = SimTime::ZERO + SimDuration::from_micros(10 * c as u64);
        let trc = tracer.clone();
        let on_open = move |sim: &mut ioat_simcore::Sim, ()| {
            trc.span("meta_open", Category::Io, lane, issued_at, sim.now());
            *opens2.borrow_mut() += 1;
            let mut last = last_open2.borrow_mut();
            if sim.now() > *last {
                *last = sim.now();
            }
            drop(last);
            proc2.start(sim);
        };
        let meta_sender = if cfg.single_threaded {
            let cpu = manager_cpu
                .get_or_insert_with(|| ProcessCpu::new(ms.clone()))
                .clone();
            meta::serve_meta_shared(mc, ms, cfg.meta, cpu, on_open)
        } else {
            meta::serve_meta(mc, ms, cfg.meta, on_open)
        };
        cluster
            .sim_mut()
            .schedule(SimDuration::from_micros(10 * c as u64), move |sim| {
                meta_sender.send(sim, META_REQ_BYTES, ());
            });
    }

    let (from, to) = cfg.window.execute(&mut cluster, &[compute, server]);
    if ioat_guard::enabled() {
        for p in &processes {
            p.audit(to);
        }
    }
    let elapsed = (to - from).as_secs_f64();
    let result = {
        let cs = cluster.stack(compute).borrow();
        let ss = cluster.stack(server).borrow();
        let mut fs = ClientFaultStats::default();
        for p in &processes {
            let s = p.fault_stats();
            fs.timeouts += s.timeouts;
            fs.retries += s.retries;
            fs.failovers += s.failovers;
            fs.failed_ops += s.failed_ops;
            fs.stale_replies += s.stale_replies;
        }
        PvfsResult {
            mbytes_per_sec: done.borrow().window_total() as f64 / 1e6 / elapsed,
            client_cpu: cs.cpu_utilization(from, to),
            server_cpu: ss.cpu_utilization(from, to),
            opens: *opens.borrow(),
            timeouts: fs.timeouts,
            retries: fs.retries,
            failovers: fs.failovers,
            failed_ops: fs.failed_ops,
            stale_replies: fs.stale_replies,
            daemon_drops: server_faults.daemon_drops(),
            last_open_us: (*last_open.borrow() - SimTime::ZERO).as_micros_f64(),
        }
    };
    result
}

/// Fig. 10 — concurrent read: servers stream to clients.
pub fn concurrent_read(cfg: &PvfsConfig) -> PvfsResult {
    run(cfg, IoMode::Read)
}

/// [`concurrent_read`] with a tracer attached: stack-level spans on both
/// nodes plus per-client I/O-operation lanes (`meta_open` spans,
/// `io_reply` instants).
pub fn concurrent_read_traced(cfg: &PvfsConfig, tracer: &Tracer) -> PvfsResult {
    run_traced(cfg, IoMode::Read, tracer)
}

/// Fig. 11 — concurrent write: clients stream to servers.
pub fn concurrent_write(cfg: &PvfsConfig) -> PvfsResult {
    run(cfg, IoMode::Write)
}

/// [`concurrent_write`] with a tracer attached.
pub fn concurrent_write_traced(cfg: &PvfsConfig, tracer: &Tracer) -> PvfsResult {
    run_traced(cfg, IoMode::Write, tracer)
}

/// Fig. 12 — multi-stream read with `threads` emulated clients on the
/// compute node.
pub fn multi_stream_read(cfg: &PvfsConfig, threads: usize) -> PvfsResult {
    let mut cfg = cfg.clone();
    cfg.clients = threads;
    run(&cfg, IoMode::Read)
}

/// Mixed read/write streams (`fig_pvfs_extended`): the first `readers`
/// clients read while the rest write, all against the same daemons. The
/// aggregate bandwidth counts both directions; reads load the compute
/// node's receive path, writes the I/O-server node's.
pub fn mixed_streams(cfg: &PvfsConfig, readers: usize) -> PvfsResult {
    assert!(readers <= cfg.clients, "more readers than clients");
    run_traced_modes(
        cfg,
        &|c| {
            if c < readers {
                IoMode::Read
            } else {
                IoMode::Write
            }
        },
        &Tracer::disabled(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_moves_data_and_opens_complete() {
        let cfg = PvfsConfig::quick_test(2, 2, IoatConfig::disabled());
        let r = concurrent_read(&cfg);
        assert!(r.mbytes_per_sec > 50.0, "read bw {}", r.mbytes_per_sec);
        assert_eq!(r.opens, 2);
        assert!(r.client_cpu > 0.0 && r.server_cpu > 0.0);
    }

    #[test]
    fn tracing_records_io_lanes_without_perturbing() {
        let cfg = PvfsConfig::quick_test(2, 2, IoatConfig::full());
        let off = concurrent_read(&cfg);
        let tracer = Tracer::enabled();
        let on = concurrent_read_traced(&cfg, &tracer);
        assert_eq!(off.mbytes_per_sec.to_bits(), on.mbytes_per_sec.to_bits());
        assert_eq!(off.client_cpu.to_bits(), on.client_cpu.to_bits());
        assert_eq!(off.opens, on.opens);
        let events = tracer.events();
        let opens = events
            .iter()
            .filter(|e| e.name == "meta_open" && e.cat == Category::Io)
            .count() as u64;
        assert_eq!(opens, on.opens, "one meta_open span per client open");
        assert!(events.iter().any(|e| e.name == "io_reply"));
    }

    #[test]
    fn write_moves_data() {
        let cfg = PvfsConfig::quick_test(2, 2, IoatConfig::disabled());
        let r = concurrent_write(&cfg);
        assert!(r.mbytes_per_sec > 50.0, "write bw {}", r.mbytes_per_sec);
    }

    #[test]
    fn bandwidth_scales_with_clients() {
        let one = concurrent_read(&PvfsConfig::quick_test(2, 1, IoatConfig::disabled()));
        let four = concurrent_read(&PvfsConfig::quick_test(2, 4, IoatConfig::disabled()));
        assert!(
            four.mbytes_per_sec > 1.3 * one.mbytes_per_sec,
            "4 clients {} vs 1 client {}",
            four.mbytes_per_sec,
            one.mbytes_per_sec
        );
    }

    #[test]
    fn read_cpu_is_reported_on_the_right_side() {
        // Reads: the client node receives the data, so with many clients
        // its CPU exceeds the server node's.
        let r = concurrent_read(&PvfsConfig::quick_test(2, 4, IoatConfig::disabled()));
        let w = concurrent_write(&PvfsConfig::quick_test(2, 4, IoatConfig::disabled()));
        assert!(
            r.client_cpu > r.server_cpu * 0.5,
            "read: client {} server {}",
            r.client_cpu,
            r.server_cpu
        );
        assert!(
            w.server_cpu > w.client_cpu * 0.5,
            "write: client {} server {}",
            w.client_cpu,
            w.server_cpu
        );
    }

    #[test]
    fn quick_test_single_client_stays_below_the_two_port_wire() {
        // Two GigE ports carry ≈ 241 MB/s of goodput. The quick_test doc
        // promises one client cannot saturate them (shallow pipeline +
        // serial client thread), so client scaling stays observable —
        // pinned here with margin, on the faster I/OAT configuration.
        let r = concurrent_read(&PvfsConfig::quick_test(2, 1, IoatConfig::full()));
        assert!(
            r.mbytes_per_sec < 0.9 * 241.0,
            "one quick-test client saturates the 2-port wire: {} MB/s",
            r.mbytes_per_sec
        );
        assert!(r.mbytes_per_sec > 50.0, "still moves data");
    }

    #[test]
    fn mixed_streams_split_modes_and_move_data() {
        let cfg = PvfsConfig::quick_test(2, 4, IoatConfig::disabled());
        let m = mixed_streams(&cfg, 2);
        assert!(m.mbytes_per_sec > 50.0, "mixed bw {}", m.mbytes_per_sec);
        assert_eq!(m.opens, 4);
        // Both nodes carry receive-path load: neither CPU collapses the
        // way a pure read (server ≈ idle daemons) or write would.
        assert!(m.client_cpu > 0.0 && m.server_cpu > 0.0);
        // All readers and all writers are legal edge cases.
        assert!(mixed_streams(&cfg, 4).mbytes_per_sec > 50.0);
        assert!(mixed_streams(&cfg, 0).mbytes_per_sec > 50.0);
    }

    #[test]
    fn last_open_reflects_manager_serialization() {
        // 8 clients against the serial manager (80 µs per open, issues
        // staggered 10 µs apart): the last open queues behind most of the
        // others, so it completes well after 8 service times alone would
        // predict from its own issue time.
        let many = concurrent_read(&PvfsConfig::quick_test(2, 8, IoatConfig::disabled()));
        let one = concurrent_read(&PvfsConfig::quick_test(2, 1, IoatConfig::disabled()));
        assert!(
            many.last_open_us > one.last_open_us + 5.0 * 80.0,
            "8 opens must queue behind the serial manager: {} vs {}",
            many.last_open_us,
            one.last_open_us
        );
    }

    #[test]
    fn multi_stream_uses_thread_count() {
        let cfg = PvfsConfig::quick_test(2, 1, IoatConfig::disabled());
        let r = multi_stream_read(&cfg, 3);
        assert_eq!(r.opens, 3);
    }

    #[test]
    fn inert_fault_plan_leaves_counters_at_zero() {
        let r = concurrent_read(&PvfsConfig::quick_test(2, 2, IoatConfig::disabled()));
        assert_eq!(
            (r.timeouts, r.retries, r.failovers, r.failed_ops),
            (0, 0, 0, 0)
        );
        assert_eq!((r.stale_replies, r.daemon_drops), (0, 0));
    }

    fn crash_cfg() -> PvfsConfig {
        use ioat_simcore::SimTime;
        let mut cfg = PvfsConfig::quick_test(2, 2, IoatConfig::disabled());
        // Daemon 0 dark from 0.5 ms to 12 ms of the 30 ms quick run;
        // short deadlines so ops fail over to daemon 1 and keep flowing.
        cfg.faults.crashes.push(ioat_faults::CrashWindow {
            service: 0,
            window: ioat_faults::TimeWindow::new(
                SimTime::from_nanos(500_000),
                SimTime::from_nanos(12_000_000),
            ),
        });
        cfg.retry.timeout = SimDuration::from_millis(1);
        cfg
    }

    #[test]
    fn daemon_crash_triggers_failover_to_surviving_server() {
        let r = concurrent_read(&crash_cfg());
        assert!(r.daemon_drops > 0, "crashed daemon must drop requests");
        assert!(r.timeouts > 0, "dropped ops must hit their deadline");
        assert!(
            r.failovers > 0,
            "retries must move to the surviving daemon: {r:?}"
        );
        assert!(
            r.mbytes_per_sec > 0.0,
            "reads must keep completing via the surviving daemon"
        );
        let clean = concurrent_read(&PvfsConfig::quick_test(2, 2, IoatConfig::disabled()));
        assert!(
            r.mbytes_per_sec < clean.mbytes_per_sec,
            "an 11.5 ms outage must cost bandwidth: {} vs {}",
            r.mbytes_per_sec,
            clean.mbytes_per_sec
        );
    }

    #[test]
    fn crash_runs_are_reproducible() {
        let a = concurrent_read(&crash_cfg());
        let b = concurrent_read(&crash_cfg());
        assert_eq!(a, b);
    }
}
