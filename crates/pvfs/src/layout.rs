//! File striping.
//!
//! PVFS "achieves high performance by striping files across a set of I/O
//! server nodes allowing parallel accesses to the data" (§3.2). The
//! default stripe size is 64 KB, round-robin across servers.

/// PVFS 1.x default stripe size.
pub const DEFAULT_STRIPE: u64 = 64 * 1024;

/// A file's striping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Layout {
    /// Stripe unit in bytes.
    pub stripe_size: u64,
    /// Number of I/O servers the file spans.
    pub servers: usize,
    /// First server for stripe 0 (files start on different servers to
    /// spread load).
    pub base_server: usize,
}

/// One contiguous piece of a request, mapped to a single server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StripePiece {
    /// The I/O server holding the piece.
    pub server: usize,
    /// Offset within the file.
    pub file_offset: u64,
    /// Piece length in bytes.
    pub len: u64,
}

impl Layout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_size` is zero or `servers` is zero.
    pub fn new(stripe_size: u64, servers: usize, base_server: usize) -> Self {
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(servers > 0, "need at least one server");
        Layout {
            stripe_size,
            servers,
            base_server: base_server % servers,
        }
    }

    /// The default PVFS layout over `servers` servers.
    pub fn default_over(servers: usize) -> Self {
        Layout::new(DEFAULT_STRIPE, servers, 0)
    }

    /// The server holding the stripe that contains `file_offset`.
    pub fn server_of(&self, file_offset: u64) -> usize {
        let stripe_index = (file_offset / self.stripe_size) as usize;
        (self.base_server + stripe_index) % self.servers
    }

    /// Splits `[offset, offset + len)` into per-stripe pieces in file
    /// order.
    pub fn pieces(&self, offset: u64, len: u64) -> Vec<StripePiece> {
        let mut out = Vec::new();
        let mut cursor = offset;
        let end = offset + len;
        while cursor < end {
            let stripe_end = (cursor / self.stripe_size + 1) * self.stripe_size;
            let piece_end = stripe_end.min(end);
            out.push(StripePiece {
                server: self.server_of(cursor),
                file_offset: cursor,
                len: piece_end - cursor,
            });
            cursor = piece_end;
        }
        out
    }

    /// Bytes of `[offset, offset+len)` that land on `server`.
    pub fn bytes_on_server(&self, offset: u64, len: u64, server: usize) -> u64 {
        self.pieces(offset, len)
            .iter()
            .filter(|p| p.server == server)
            .map(|p| p.len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pieces_tile_the_request() {
        let l = Layout::new(64 * 1024, 4, 0);
        let pieces = l.pieces(10_000, 1_000_000);
        let total: u64 = pieces.iter().map(|p| p.len).sum();
        assert_eq!(total, 1_000_000);
        let mut cursor = 10_000;
        for p in &pieces {
            assert_eq!(p.file_offset, cursor);
            assert!(p.len <= 64 * 1024);
            cursor += p.len;
        }
    }

    #[test]
    fn round_robin_across_servers() {
        let l = Layout::new(1024, 3, 0);
        assert_eq!(l.server_of(0), 0);
        assert_eq!(l.server_of(1024), 1);
        assert_eq!(l.server_of(2048), 2);
        assert_eq!(l.server_of(3072), 0);
        // Base-server rotation shifts everything.
        let l2 = Layout::new(1024, 3, 2);
        assert_eq!(l2.server_of(0), 2);
        assert_eq!(l2.server_of(1024), 0);
    }

    #[test]
    fn aligned_request_spreads_evenly() {
        let l = Layout::default_over(4);
        // 2 MB per server, as the paper's pvfs-test does with N=4.
        let total = 4 * 2 * 1024 * 1024;
        for s in 0..4 {
            assert_eq!(l.bytes_on_server(0, total, s), 2 * 1024 * 1024);
        }
    }

    #[test]
    fn unaligned_first_piece_is_short() {
        let l = Layout::new(1000, 2, 0);
        let pieces = l.pieces(900, 300);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].len, 100);
        assert_eq!(pieces[0].server, 0);
        assert_eq!(pieces[1].len, 200);
        assert_eq!(pieces[1].server, 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        Layout::new(1024, 0, 0);
    }
}
