//! Parallel Virtual File System (PVFS) application domain (§3.2, §6).
//!
//! Rebuilds the paper's PVFS deployment on the simulated testbed: a set
//! of I/O server daemons (one per GigE port, which is how a two-node
//! testbed hosts "six I/O servers"), a metadata manager, and compute-node
//! clients that stripe files across the servers. Storage is
//! memory-resident (`ramfs`), exactly as §6.1 configures it, so the
//! experiments stress the network path rather than disks.
//!
//! Reproduces:
//!
//! * Fig. 10a/10b — concurrent-read bandwidth, 6 and 5 I/O servers,
//!   1–6 compute clients, with client-side CPU benefit.
//! * Fig. 11a/11b — concurrent-write bandwidth, server-side CPU benefit.
//! * Fig. 12 — multi-stream read with 1–64 emulated clients.
//!
//! Modules:
//!
//! * [`layout`] — file striping (64 KB stripes, round-robin).
//! * [`meta`] — the metadata manager daemon.
//! * [`iod`] — per-server I/O daemons and the `ramfs` cost model.
//! * [`client`] — compute-node clients with pipelined stripe requests.
//! * [`process`] — single-threaded process CPU serialization (one
//!   serial thread per daemon/client, as the 2007 testbed ran them).
//! * [`harness`] — the `pvfs-test`-equivalent experiment drivers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod harness;
pub mod iod;
pub mod layout;
pub mod meta;
pub mod process;

pub use harness::{
    concurrent_read, concurrent_write, mixed_streams, multi_stream_read, PvfsConfig, PvfsResult,
};
pub use layout::{Layout, StripePiece, DEFAULT_STRIPE};
pub use process::ProcessCpu;

#[cfg(test)]
mod send_contract {
    //! Parallel figure sweeps move these configs across worker threads;
    //! see the matching module in `ioat-core`. Daemons and clients stay
    //! `Rc`-based and single-threaded — only configs must be `Send`.
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn config_types_are_send() {
        assert_send::<PvfsConfig>();
        assert_send::<PvfsResult>();
        assert_send::<Layout>();
        assert_send::<iod::IodParams>();
        assert_send::<meta::MetaParams>();
        assert_send::<client::ClientParams>();
    }
}
