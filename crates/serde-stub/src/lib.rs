//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no registry access, so the workspace cannot
//! depend on crates.io `serde`. Model types instead gate their derives behind
//! an off-by-default `serde` cargo feature:
//!
//! ```ignore
//! #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
//! pub struct SimTime(u64);
//! ```
//!
//! This crate satisfies those attributes with no-op derive macros and empty
//! marker traits, keeping `--features serde` compilable offline. Replacing the
//! workspace `serde` entry with the real crates.io package (same major API
//! surface for plain derives — none of our types use `#[serde(...)]` field
//! attributes) upgrades every gated type to real serialization without source
//! changes.

pub use ioat_serde_stub_derive::{Deserialize, Serialize};

/// Marker trait emitted-for by the no-op [`Serialize`] derive.
pub trait Serialize {}

/// Marker trait emitted-for by the no-op [`Deserialize`] derive.
pub trait Deserialize<'de> {}

#[cfg(test)]
mod tests {
    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    struct Probe {
        a: u64,
        b: Vec<f64>,
    }

    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    enum ProbeEnum {
        Unit,
        Tuple(u8, u8),
        Struct { x: i32 },
    }

    #[test]
    fn derives_are_inert() {
        // The derives must not interfere with other derives or the type's
        // normal behaviour.
        let p = Probe { a: 7, b: vec![1.0] };
        assert_eq!(p, Probe { a: 7, b: vec![1.0] });
        assert_ne!(ProbeEnum::Unit, ProbeEnum::Tuple(0, 1));
        assert_eq!(ProbeEnum::Struct { x: 3 }, ProbeEnum::Struct { x: 3 });
    }
}
