//! Calibration probe: prints paper-scale micro-benchmark numbers next to
//! the paper's targets so parameter changes can be judged quickly.

use ioat_core::microbench::{bandwidth, bidirectional, multistream, splitup};

fn probe_backlog() {
    use ioat_core::cluster::{Cluster, NodeConfig};
    use ioat_core::metrics::ExperimentWindow;
    use ioat_core::microbench::splitup::{opts_for, SERVER_PROCESS_NS_PER_BYTE};
    use ioat_core::IoatConfig;
    let msg = 1u64 << 20;
    let opts = opts_for(msg);
    let mut cluster = Cluster::new(1);
    let c = cluster.add_node(NodeConfig::testbed("c", IoatConfig::dma_only()));
    let srv = cluster.add_node(NodeConfig::testbed("s", IoatConfig::dma_only()));
    let pairs = cluster.connect_ports(c, srv, 4, opts.coalescing);
    for pair in pairs {
        let (tx, rx) = cluster.open(c, srv, pair, opts);
        ioat_core::microbench::message_paced(&tx, cluster.sim_mut(), msg);
        rx.set_recv_credits(1);
        let rx2 = rx.clone();
        let mut pending = 0u64;
        rx.set_handler(move |sim, ev| {
            if let ioat_netsim::SocketEvent::Delivered(b) = ev {
                pending += b;
                if pending >= msg {
                    pending -= msg;
                    let work = ioat_simcore::SimDuration::from_nanos(
                        (msg as f64 * SERVER_PROCESS_NS_PER_BYTE) as u64,
                    );
                    let rx3 = rx2.clone();
                    rx2.compute(sim, work, move |sim| rx3.post_recv(sim));
                } else {
                    rx2.post_recv(sim);
                }
            }
        });
    }
    ExperimentWindow::standard().execute(&mut cluster, &[c, srv]);
    let st = cluster.stack(srv).borrow().stats();
    println!(
        "backlog probe (dma_only, 1M): peak_backlog={} stalled={} frames={} deliveries={}",
        st.peak_backlog, st.stalled_frames, st.frames_processed, st.deliveries
    );
}

fn main() {
    probe_backlog();
    println!("--- Fig 3a: bandwidth vs ports (paper: 5635 Mbps @6; CPU 37% vs 29%, rel 21%) ---");
    for ports in [1, 3, 6] {
        let c = bandwidth::compare(&bandwidth::BandwidthConfig::paper(ports));
        println!(
            "ports={ports}: non {:5.0} Mbps cpu {:4.1}% | ioat {:5.0} Mbps cpu {:4.1}% | rel {:4.1}%",
            c.non_ioat.mbps,
            c.non_ioat.rx_cpu * 100.0,
            c.ioat.mbps,
            c.ioat.rx_cpu * 100.0,
            c.relative_cpu_benefit() * 100.0
        );
    }

    println!("--- Fig 3b: bidir (paper: ~9600 Mbps @6; CPU 90% vs 70%, rel 22%) ---");
    for ports in [2, 6] {
        let c = bidirectional::compare(&bidirectional::BidirConfig::paper(ports));
        println!(
            "ports={ports}: non {:5.0} Mbps cpu {:4.1}% | ioat {:5.0} Mbps cpu {:4.1}% | rel {:4.1}%",
            c.non_ioat.mbps,
            c.non_ioat.rx_cpu * 100.0,
            c.ioat.mbps,
            c.ioat.rx_cpu * 100.0,
            c.relative_cpu_benefit() * 100.0
        );
    }

    println!("--- Fig 4: multistream (paper @12: non 76% vs ioat 52%, rel 32%, bw dip) ---");
    for threads in [2, 6, 12] {
        let c = multistream::compare(&multistream::MultiStreamConfig::paper(threads));
        println!(
            "threads={threads:2}: non {:5.0} Mbps cpu {:4.1}% | ioat {:5.0} Mbps cpu {:4.1}% | rel {:4.1}%",
            c.non_ioat.mbps,
            c.non_ioat.rx_cpu * 100.0,
            c.ioat.mbps,
            c.ioat.rx_cpu * 100.0,
            c.relative_cpu_benefit() * 100.0
        );
    }

    println!("--- Fig 7a (paper: DMA ~16% CPU benefit, split ~0, no tput change) ---");
    let cfg = splitup::SplitupConfig::paper();
    for size in splitup::small_sizes() {
        let r = splitup::row(&cfg, size);
        println!(
            "msg={:>8}: tput {:5.0}/{:5.0}/{:5.0} Mbps | cpu {:4.1}/{:4.1}/{:4.1}% | dma-cpu {:5.1}% split-cpu {:5.1}%",
            size,
            r.non_ioat.mbps,
            r.ioat_dma.mbps,
            r.ioat_split.mbps,
            r.non_ioat.rx_cpu * 100.0,
            r.ioat_dma.rx_cpu * 100.0,
            r.ioat_split.rx_cpu * 100.0,
            r.dma_cpu_benefit() * 100.0,
            r.split_cpu_benefit() * 100.0
        );
    }
    println!("--- Fig 7b (paper: split +26% tput @1M, decreasing) ---");
    for size in splitup::large_sizes() {
        let r = splitup::row(&cfg, size);
        println!(
            "msg={:>8}: tput {:5.0}/{:5.0}/{:5.0} Mbps | split-tput {:5.1}% dma-tput {:5.1}%",
            size,
            r.non_ioat.mbps,
            r.ioat_dma.mbps,
            r.ioat_split.mbps,
            r.split_throughput_benefit() * 100.0,
            r.dma_throughput_benefit() * 100.0
        );
    }
}
