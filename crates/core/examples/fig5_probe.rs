use ioat_core::microbench::sockopts::{sweep_bandwidth, SweepConfig};
fn main() {
    for row in sweep_bandwidth(&SweepConfig::paper()) {
        let c = row.comparison;
        println!(
            "{}: non {:5.0} Mbps cpu {:4.1}% | ioat {:5.0} Mbps cpu {:4.1}% | rel {:4.1}%",
            row.case,
            c.non_ioat.mbps,
            c.non_ioat.rx_cpu * 100.0,
            c.ioat.mbps,
            c.ioat.rx_cpu * 100.0,
            c.relative_cpu_benefit() * 100.0
        );
    }
}
