//! Fig. 3a — bandwidth vs number of network ports.
//!
//! The `ttcp` bandwidth test: one node streams to the other over 1–6
//! dedicated GigE port pairs, one connection per port. The receiver's
//! overall CPU utilization is the paper's headline comparison.

use crate::calibration;
use crate::cluster::{Cluster, NodeConfig};
use crate::metrics::{Comparison, ExperimentWindow, ThroughputResult};
use crate::microbench::stream;
use ioat_netsim::{IoatConfig, SocketOpts};

/// Configuration of a bandwidth run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BandwidthConfig {
    /// Number of dedicated port pairs (the paper sweeps 1–6).
    pub ports: usize,
    /// Socket options (the paper's Fig. 3 uses the tuned configuration).
    pub opts: SocketOpts,
    /// Measurement window.
    pub window: ExperimentWindow,
}

impl BandwidthConfig {
    /// The paper's configuration at a given port count.
    pub fn paper(ports: usize) -> Self {
        assert!(
            (1..=calibration::TESTBED_PORTS).contains(&ports),
            "the testbed has 1..=6 ports"
        );
        BandwidthConfig {
            ports,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::standard(),
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn quick_test() -> Self {
        BandwidthConfig {
            ports: 1,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::quick(),
        }
    }
}

/// Runs the bandwidth test with the given feature set on both nodes.
pub fn run(cfg: &BandwidthConfig, ioat: IoatConfig) -> ThroughputResult {
    let mut cluster = Cluster::new(0xB0);
    let tx = cluster.add_node(NodeConfig::testbed("sender", ioat));
    let rx = cluster.add_node(NodeConfig::testbed("receiver", ioat));
    let pairs = cluster.connect_ports(tx, rx, cfg.ports, cfg.opts.coalescing);

    let hint = cfg.window.to().as_nanos();
    for pair in pairs {
        let (s_tx, _s_rx) = cluster.open(tx, rx, pair, cfg.opts);
        stream(&s_tx, cluster.sim_mut(), hint, 1_000.0);
    }

    let (from, to) = cfg.window.execute(&mut cluster, &[tx, rx]);
    let rxs = cluster.stack(rx).borrow();
    let txs = cluster.stack(tx).borrow();
    ThroughputResult {
        mbps: rxs.rx_meter().mbps(to),
        rx_cpu: rxs.cpu_utilization(from, to),
        tx_cpu: txs.cpu_utilization(from, to),
    }
}

/// Runs both configurations and pairs them.
pub fn compare(cfg: &BandwidthConfig) -> Comparison {
    Comparison {
        non_ioat: run(cfg, IoatConfig::disabled()),
        ioat: run(cfg, IoatConfig::full()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_reaches_near_line_rate() {
        let r = run(&BandwidthConfig::quick_test(), IoatConfig::disabled());
        assert!(
            (800.0..980.0).contains(&r.mbps),
            "1-port bandwidth {:.0} Mbps",
            r.mbps
        );
        assert!(r.rx_cpu > 0.0 && r.rx_cpu < 1.0);
    }

    #[test]
    fn bandwidth_scales_with_ports() {
        let one = run(&BandwidthConfig::quick_test(), IoatConfig::disabled());
        let mut cfg = BandwidthConfig::quick_test();
        cfg.ports = 2;
        let two = run(&cfg, IoatConfig::disabled());
        assert!(
            two.mbps > 1.7 * one.mbps,
            "2 ports {:.0} vs 1 port {:.0}",
            two.mbps,
            one.mbps
        );
    }

    #[test]
    fn ioat_reduces_receiver_cpu() {
        let mut cfg = BandwidthConfig::quick_test();
        cfg.ports = 2;
        let c = compare(&cfg);
        assert!(
            c.relative_cpu_benefit() > 0.0,
            "expected positive CPU benefit, got {:.3} ({:.3} vs {:.3})",
            c.relative_cpu_benefit(),
            c.ioat.rx_cpu,
            c.non_ioat.rx_cpu
        );
        // Throughput is wire-bound at 2 ports: roughly equal.
        assert!((c.ioat.mbps - c.non_ioat.mbps).abs() / c.non_ioat.mbps < 0.1);
    }

    #[test]
    #[should_panic(expected = "1..=6 ports")]
    fn port_count_is_validated() {
        BandwidthConfig::paper(7);
    }
}
