//! Fig. 3a — bandwidth vs number of network ports.
//!
//! The `ttcp` bandwidth test: one node streams to the other over 1–6
//! dedicated GigE port pairs, one connection per port. The receiver's
//! overall CPU utilization is the paper's headline comparison.

use crate::calibration;
use crate::cluster::{Cluster, NodeConfig};
use crate::metrics::{Comparison, ExperimentWindow, ThroughputResult};
use crate::microbench::stream;
use ioat_faults::FaultPlan;
use ioat_netsim::{IoatConfig, SocketOpts};

/// Configuration of a bandwidth run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BandwidthConfig {
    /// Number of dedicated port pairs (the paper sweeps 1–6).
    pub ports: usize,
    /// Socket options (the paper's Fig. 3 uses the tuned configuration).
    pub opts: SocketOpts,
    /// Measurement window.
    pub window: ExperimentWindow,
}

impl BandwidthConfig {
    /// The paper's configuration at a given port count.
    pub fn paper(ports: usize) -> Self {
        assert!(
            (1..=calibration::TESTBED_PORTS).contains(&ports),
            "the testbed has 1..=6 ports"
        );
        BandwidthConfig {
            ports,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::standard(),
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn quick_test() -> Self {
        BandwidthConfig {
            ports: 1,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::quick(),
        }
    }
}

/// A [`ThroughputResult`] plus the fault/recovery activity of the run,
/// summed over both endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultedThroughputResult {
    /// Throughput and CPU utilization, as in the fault-free test.
    pub throughput: ThroughputResult,
    /// Frames dropped at egress by the loss model.
    pub frames_dropped: u64,
    /// Retransmission rounds (fast retransmit + RTO).
    pub retransmits: u64,
    /// Bytes rewound for retransmission.
    pub retransmitted_bytes: u64,
    /// Retransmission-timer expiries.
    pub rto_timeouts: u64,
    /// Deliveries forced off the DMA engine onto the CPU.
    pub dma_fallbacks: u64,
}

/// Runs the bandwidth test with the given feature set on both nodes.
pub fn run(cfg: &BandwidthConfig, ioat: IoatConfig) -> ThroughputResult {
    run_with_faults(cfg, ioat, &FaultPlan::none()).throughput
}

/// The bandwidth test under a fault plan. With [`FaultPlan::none()`]
/// this is exactly [`run`] (bit-identical; `run` is defined in terms of
/// it); with loss configured the recovery counters report how hard the
/// stack worked to keep the stream flowing.
pub fn run_with_faults(
    cfg: &BandwidthConfig,
    ioat: IoatConfig,
    faults: &FaultPlan,
) -> FaultedThroughputResult {
    let mut cluster = Cluster::new(0xB0);
    cluster.set_faults(faults);
    let tx = cluster.add_node(NodeConfig::testbed("sender", ioat));
    let rx = cluster.add_node(NodeConfig::testbed("receiver", ioat));
    let pairs = cluster.connect_ports(tx, rx, cfg.ports, cfg.opts.coalescing);

    let hint = cfg.window.to().as_nanos();
    for pair in pairs {
        let (s_tx, _s_rx) = cluster.open(tx, rx, pair, cfg.opts);
        stream(&s_tx, cluster.sim_mut(), hint, 1_000.0);
    }

    let (from, to) = cfg.window.execute(&mut cluster, &[tx, rx]);
    let rxs = cluster.stack(rx).borrow();
    let txs = cluster.stack(tx).borrow();
    let (st, sr) = (txs.stats(), rxs.stats());
    FaultedThroughputResult {
        throughput: ThroughputResult {
            mbps: rxs.rx_meter().mbps(to),
            rx_cpu: rxs.cpu_utilization(from, to),
            tx_cpu: txs.cpu_utilization(from, to),
            rx_occupancy: rxs.cpu_occupancy(from, to),
        },
        frames_dropped: st.frames_dropped + sr.frames_dropped,
        retransmits: st.retransmits + sr.retransmits,
        retransmitted_bytes: st.retransmitted_bytes + sr.retransmitted_bytes,
        rto_timeouts: st.rto_timeouts + sr.rto_timeouts,
        dma_fallbacks: st.dma_fallbacks + sr.dma_fallbacks,
    }
}

/// Runs both configurations and pairs them.
pub fn compare(cfg: &BandwidthConfig) -> Comparison {
    Comparison {
        non_ioat: run(cfg, IoatConfig::disabled()),
        ioat: run(cfg, IoatConfig::full()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_reaches_near_line_rate() {
        let r = run(&BandwidthConfig::quick_test(), IoatConfig::disabled());
        assert!(
            (800.0..980.0).contains(&r.mbps),
            "1-port bandwidth {:.0} Mbps",
            r.mbps
        );
        assert!(r.rx_cpu > 0.0 && r.rx_cpu < 1.0);
    }

    #[test]
    fn bandwidth_scales_with_ports() {
        let one = run(&BandwidthConfig::quick_test(), IoatConfig::disabled());
        let mut cfg = BandwidthConfig::quick_test();
        cfg.ports = 2;
        let two = run(&cfg, IoatConfig::disabled());
        assert!(
            two.mbps > 1.7 * one.mbps,
            "2 ports {:.0} vs 1 port {:.0}",
            two.mbps,
            one.mbps
        );
    }

    #[test]
    fn ioat_reduces_receiver_cpu() {
        let mut cfg = BandwidthConfig::quick_test();
        cfg.ports = 2;
        let c = compare(&cfg);
        assert!(
            c.relative_cpu_benefit() > 0.0,
            "expected positive CPU benefit, got {:.3} ({:.3} vs {:.3})",
            c.relative_cpu_benefit(),
            c.ioat.rx_cpu,
            c.non_ioat.rx_cpu
        );
        // Throughput is genuinely wire-bound at 2 ports for this
        // *micro-benchmark*: the ttcp-style sink processes frames in
        // kernel context across all cores, so CPU never saturates first
        // (re-verified for PR 8 — unlike PVFS, where the serial
        // single-threaded daemons make CPU the binding constraint).
        assert!((c.ioat.mbps - c.non_ioat.mbps).abs() / c.non_ioat.mbps < 0.1);
    }

    #[test]
    #[should_panic(expected = "1..=6 ports")]
    fn port_count_is_validated() {
        BandwidthConfig::paper(7);
    }

    #[test]
    fn loss_degrades_throughput_but_keeps_ioat_cpu_advantage() {
        let cfg = BandwidthConfig::quick_test();
        let clean = run_with_faults(&cfg, IoatConfig::disabled(), &FaultPlan::none());
        let lossy = run_with_faults(
            &cfg,
            IoatConfig::disabled(),
            &FaultPlan::bernoulli_loss(1, 1e-3),
        );
        assert!(lossy.frames_dropped > 0);
        assert!(lossy.retransmits > 0);
        assert!(
            lossy.throughput.mbps < clean.throughput.mbps,
            "loss must cost throughput: {:.0} vs {:.0}",
            lossy.throughput.mbps,
            clean.throughput.mbps
        );
        let lossy_ioat = run_with_faults(
            &cfg,
            IoatConfig::full(),
            &FaultPlan::bernoulli_loss(1, 1e-3),
        );
        assert!(
            lossy_ioat.throughput.rx_cpu < lossy.throughput.rx_cpu,
            "I/OAT CPU advantage must persist under loss"
        );
    }
}
