//! Fig. 7 — per-feature benefit split-up.
//!
//! Three configurations over four port pairs with four streaming clients:
//! non-I/OAT, I/OAT-DMA (copy engine only) and I/OAT-SPLIT (copy engine +
//! split headers). Fig. 7a sweeps 16 K–128 K messages and attributes CPU
//! benefit to the DMA engine; Fig. 7b sweeps 1 M–8 M messages — with four
//! clients the server's in-flight application data exceeds the 2 MB L2,
//! and split headers avoid the cache pollution that otherwise slows the
//! receive path (§4.5).
//!
//! Message pacing matters here: each client keeps one message of the given
//! size outstanding, so the in-flight footprint scales with message size
//! (socket buffers are sized `clamp(msg, 64 K, 1 M)`, as a benchmark tool
//! would).

use crate::cluster::{Cluster, NodeConfig};
use crate::metrics::{ExperimentWindow, ThroughputResult};
use crate::microbench::message_paced;
use ioat_netsim::{IoatConfig, SocketOpts};
use ioat_simcore::stats::{relative_benefit, relative_improvement};

/// One row of the Fig. 7 split-up.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SplitupRow {
    /// Message size in bytes.
    pub msg_size: u64,
    /// Baseline (non-I/OAT).
    pub non_ioat: ThroughputResult,
    /// DMA engine only.
    pub ioat_dma: ThroughputResult,
    /// DMA engine + split headers.
    pub ioat_split: ThroughputResult,
}

impl SplitupRow {
    /// CPU benefit attributed to the DMA engine (Fig. 7a):
    /// non-I/OAT → I/OAT-DMA.
    pub fn dma_cpu_benefit(&self) -> f64 {
        relative_benefit(self.ioat_dma.rx_cpu, self.non_ioat.rx_cpu)
    }

    /// CPU benefit attributed to split headers: I/OAT-DMA → I/OAT-SPLIT.
    pub fn split_cpu_benefit(&self) -> f64 {
        relative_benefit(self.ioat_split.rx_cpu, self.ioat_dma.rx_cpu)
    }

    /// Throughput benefit attributed to the DMA engine (Fig. 7b).
    pub fn dma_throughput_benefit(&self) -> f64 {
        relative_improvement(self.ioat_dma.mbps, self.non_ioat.mbps)
    }

    /// Throughput benefit attributed to split headers (Fig. 7b).
    pub fn split_throughput_benefit(&self) -> f64 {
        relative_improvement(self.ioat_split.mbps, self.ioat_dma.mbps)
    }
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SplitupConfig {
    /// Port pairs / client count (the paper uses four).
    pub ports: usize,
    /// Measurement window.
    pub window: ExperimentWindow,
}

impl SplitupConfig {
    /// The paper's setup: two dual-port adapters per node.
    pub fn paper() -> Self {
        SplitupConfig {
            ports: 4,
            window: ExperimentWindow::standard(),
        }
    }

    /// Small fast configuration for unit tests.
    pub fn quick_test() -> Self {
        SplitupConfig {
            ports: 2,
            window: ExperimentWindow::quick(),
        }
    }
}

/// Socket options used for a given message size: buffers track the
/// message size the way a benchmark client configures them.
pub fn opts_for(msg_size: u64) -> SocketOpts {
    let buf = msg_size.clamp(64 * 1024, 1024 * 1024);
    SocketOpts {
        sndbuf: buf,
        rcvbuf: buf,
        read_size: 64 * 1024,
        ..SocketOpts::tuned()
    }
}

/// Per-byte application processing cost on the server: each received
/// message is validated/consumed before the next read is posted (5.5 ns/B ≈
/// a validate-and-transform pass over cold data at this era's memory
/// bandwidth). While the
/// server thread processes, arriving data backs up in the kernel — which
/// is exactly how multi-megabyte messages overflow the L2 (§4.5).
pub const SERVER_PROCESS_NS_PER_BYTE: f64 = 5.5;

/// Runs one configuration at one message size.
pub fn run_one(cfg: &SplitupConfig, ioat: IoatConfig, msg_size: u64) -> ThroughputResult {
    run_one_traced(cfg, ioat, msg_size, &ioat_telemetry::Tracer::disabled()).0
}

/// [`run_one`] with a tracer attached to every node; also returns the
/// measurement window so callers can build a
/// [`ioat_telemetry::SplitupReport`] over exactly the measured interval.
pub fn run_one_traced(
    cfg: &SplitupConfig,
    ioat: IoatConfig,
    msg_size: u64,
    tracer: &ioat_telemetry::Tracer,
) -> (
    ThroughputResult,
    (ioat_simcore::SimTime, ioat_simcore::SimTime),
) {
    let opts = opts_for(msg_size);
    let mut cluster = Cluster::new(0xB7);
    cluster.set_tracer(tracer.clone());
    let clients = cluster.add_node(NodeConfig::testbed("clients", ioat));
    let server = cluster.add_node(NodeConfig::testbed("server", ioat));
    let pairs = cluster.connect_ports(clients, server, cfg.ports, opts.coalescing);
    for pair in pairs {
        let (s_tx, s_rx) = cluster.open(clients, server, pair, opts);
        message_paced(&s_tx, cluster.sim_mut(), msg_size);
        // Server side: the receive loop reads until a whole message has
        // arrived, then processes it before reading again — while it
        // processes, arriving data backs up in the kernel.
        s_rx.set_recv_credits(1);
        let rx = s_rx.clone();
        let mut pending = 0u64;
        s_rx.set_handler(move |sim, ev| {
            if let ioat_netsim::SocketEvent::Delivered(bytes) = ev {
                pending += bytes;
                if pending >= msg_size {
                    pending -= msg_size;
                    let work = ioat_simcore::SimDuration::from_nanos(
                        (msg_size as f64 * SERVER_PROCESS_NS_PER_BYTE) as u64,
                    );
                    let rx2 = rx.clone();
                    rx.compute(sim, work, move |sim| rx2.post_recv(sim));
                } else {
                    rx.post_recv(sim);
                }
            }
        });
    }
    let (from, to) = cfg.window.execute(&mut cluster, &[clients, server]);
    let rxs = cluster.stack(server).borrow();
    let txs = cluster.stack(clients).borrow();
    audit_cycle_sum(&rxs, tracer, from, to);
    let result = ThroughputResult {
        mbps: rxs.rx_meter().mbps(to),
        rx_cpu: rxs.cpu_utilization(from, to),
        tx_cpu: txs.cpu_utilization(from, to),
        rx_occupancy: rxs.cpu_occupancy(from, to),
    };
    (result, (from, to))
}

/// Fig. 7 accounting audit: the per-category CPU spans the tracer recorded
/// for the receiver, clipped to the measurement window, must sum to the
/// receiver cores' measured busy time *exactly* (integer nanoseconds, not
/// within a tolerance). This holds because spans are emitted at job
/// submission — in-flight jobs at window close already have their spans —
/// and every `run_job` partitions its busy interval into spans with no gap
/// or overlap. Only runs when the tracer records every CPU category (a
/// filtered tracer would undercount by construction).
fn audit_cycle_sum(
    rx: &ioat_netsim::stack::HostStack,
    tracer: &ioat_telemetry::Tracer,
    from: ioat_simcore::SimTime,
    to: ioat_simcore::SimTime,
) {
    use ioat_telemetry::{Category, EventKind};
    let cpu_cats = [
        Category::Interrupt,
        Category::Protocol,
        Category::Copy,
        Category::Dma,
        Category::App,
    ];
    if !ioat_guard::enabled() || !cpu_cats.iter().all(|&c| tracer.records(c)) {
        return;
    }
    let node = rx.node_id();
    let cores = rx.cores().len() as u32;
    let mut span_ns = 0u64;
    for ev in tracer.events() {
        if let EventKind::Span { start, end } = ev.kind {
            // CPU tracks only: the DMA channel's pseudo-track (core index
            // == core count) carries engine busy time, not CPU cycles.
            if ev.track.node == node && ev.track.core < cores {
                let s = start.max(from);
                let e = end.min(to);
                if e > s {
                    span_ns += e.as_nanos() - s.as_nanos();
                }
            }
        }
    }
    let busy_ns = rx.cores().busy_between(from, to).as_nanos();
    ioat_guard::check(
        "core/splitup",
        "Fig. 7 category cycles sum to measured busy time",
        to,
        span_ns == busy_ns,
        || {
            format!(
                "receiver spans sum to {span_ns} ns but cores were busy {busy_ns} ns \
                 over the window (delta {})",
                span_ns as i128 - busy_ns as i128
            )
        },
    );
}

/// Runs all three configurations at one message size.
pub fn row(cfg: &SplitupConfig, msg_size: u64) -> SplitupRow {
    SplitupRow {
        msg_size,
        non_ioat: run_one(cfg, IoatConfig::disabled(), msg_size),
        ioat_dma: run_one(cfg, IoatConfig::dma_only(), msg_size),
        ioat_split: run_one(cfg, IoatConfig::full(), msg_size),
    }
}

/// The Fig. 7a sizes (16 K – 128 K).
pub fn small_sizes() -> Vec<u64> {
    vec![16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
}

/// The Fig. 7b sizes (1 M – 8 M).
pub fn large_sizes() -> Vec<u64> {
    vec![1 << 20, 2 << 20, 4 << 20, 8 << 20]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_engine_provides_cpu_benefit_for_medium_messages() {
        let r = row(&SplitupConfig::quick_test(), 64 * 1024);
        assert!(
            r.dma_cpu_benefit() > 0.02,
            "DMA CPU benefit {:.3}",
            r.dma_cpu_benefit()
        );
        // Throughput is genuinely wire-bound for this *micro-benchmark*
        // (kernel-context receive, CPU head-room to spare; re-verified
        // for PR 8): the DMA engine moves cycles, not bytes/s. The PVFS
        // figures are the app-level case where CPU binds instead.
        assert!(r.dma_throughput_benefit().abs() < 0.08);
    }

    #[test]
    fn split_header_helps_large_messages_most() {
        let cfg = SplitupConfig::quick_test();
        let small = row(&cfg, 64 * 1024);
        let large = row(&cfg, 2 << 20);
        assert!(
            large.split_cpu_benefit() + large.split_throughput_benefit()
                > small.split_cpu_benefit() + small.split_throughput_benefit() - 0.02,
            "split benefit should not shrink at large sizes: small {:.3}/{:.3} large {:.3}/{:.3}",
            small.split_cpu_benefit(),
            small.split_throughput_benefit(),
            large.split_cpu_benefit(),
            large.split_throughput_benefit()
        );
    }

    #[test]
    fn traced_run_passes_the_cycle_sum_audit_exactly() {
        let (r, v) = ioat_guard::with_audit(|| {
            let tracer = ioat_telemetry::Tracer::enabled();
            let (res, _) = run_one_traced(
                &SplitupConfig::quick_test(),
                IoatConfig::full(),
                64 * 1024,
                &tracer,
            );
            res
        });
        assert!(r.unwrap().mbps > 0.0);
        assert!(v.is_empty(), "cycle-sum audit must hold exactly: {v:?}");
    }

    #[test]
    fn buffer_sizing_tracks_messages() {
        assert_eq!(opts_for(16 * 1024).rcvbuf, 64 * 1024);
        assert_eq!(opts_for(256 * 1024).rcvbuf, 256 * 1024);
        assert_eq!(opts_for(8 << 20).rcvbuf, 1 << 20);
    }
}
