//! Fig. 6 — CPU-based copy vs DMA-based copy.
//!
//! Replays the paper's §4.4 standalone experiment: for message sizes
//! 1 KB – 64 KB, compare
//!
//! * `copy-cache` — CPU `memcpy`, source and destination resident,
//! * `copy-nocache` — CPU `memcpy`, both cold,
//! * `DMA-copy` — total engine copy cost (startup + pinning + transfer +
//!   completion),
//! * `DMA-overhead` — the synchronous part only,
//! * `Overlap` — the fraction of `DMA-copy` the CPU can spend elsewhere.
//!
//! This path uses the *user-level* engine costs ([`DmaConfig::default`]),
//! which include channel acquisition and full source+destination page
//! pinning — the usage the paper's Fig. 6 micro-benchmark exercises.

use ioat_memsim::{AddressAllocator, CpuCopier, DmaConfig, DmaEngine, DmaRequest};
use ioat_netsim::StackParams;

/// One row of the Fig. 6 table.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CopyRow {
    /// Copied bytes.
    pub size: u64,
    /// CPU copy with both buffers resident, in µs.
    pub copy_cache_us: f64,
    /// CPU copy with both buffers cold, in µs.
    pub copy_nocache_us: f64,
    /// Total DMA-engine copy cost, in µs.
    pub dma_copy_us: f64,
    /// Synchronous (non-overlappable) DMA cost, in µs.
    pub dma_overhead_us: f64,
    /// Fraction of the DMA copy overlappable with computation, `[0, 1)`.
    pub overlap: f64,
}

/// The paper's swept sizes: 1 K – 64 K.
pub fn paper_sizes() -> Vec<u64> {
    (0..=6).map(|i| 1024u64 << i).collect()
}

/// Computes the comparison for one size.
pub fn row(size: u64) -> CopyRow {
    let params = StackParams::default();
    let copier = CpuCopier::new(params.copy);
    let engine = DmaEngine::new(DmaConfig::default(), None);
    let line = 64;

    let mut alloc = AddressAllocator::new();
    let req = DmaRequest::new(alloc.alloc(size), alloc.alloc(size));

    let total = engine.total_cost(&req);
    let overhead = engine.cpu_overhead(&req) + engine.config().completion;
    CopyRow {
        size,
        copy_cache_us: copier.warm_cost(size, line).as_micros_f64(),
        copy_nocache_us: copier.cold_cost(size, line).as_micros_f64(),
        dma_copy_us: total.as_micros_f64(),
        dma_overhead_us: overhead.as_micros_f64(),
        overlap: engine.overlap_fraction(&req),
    }
}

/// The full Fig. 6 table.
pub fn table() -> Vec<CopyRow> {
    paper_sizes().into_iter().map(row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_paper_sizes() {
        let t = table();
        assert_eq!(t.len(), 7);
        assert_eq!(t[0].size, 1024);
        assert_eq!(t[6].size, 64 * 1024);
    }

    #[test]
    fn fig6_dma_beats_cold_copy_above_8k() {
        for r in table() {
            if r.size > 8 * 1024 {
                assert!(
                    r.dma_copy_us < r.copy_nocache_us,
                    "at {} DMA {:.1}us should beat cold copy {:.1}us",
                    r.size,
                    r.dma_copy_us,
                    r.copy_nocache_us
                );
            }
            if r.size < 4 * 1024 {
                assert!(
                    r.dma_copy_us > r.copy_nocache_us,
                    "at {} the CPU should win",
                    r.size
                );
            }
        }
    }

    #[test]
    fn fig6_overlap_reaches_93_percent_at_64k() {
        let r = row(64 * 1024);
        assert!(
            (0.88..0.97).contains(&r.overlap),
            "overlap at 64K = {:.3}",
            r.overlap
        );
        // Overlap grows monotonically with size.
        let t = table();
        for w in t.windows(2) {
            assert!(w[1].overlap >= w[0].overlap);
        }
    }

    #[test]
    fn fig6_cached_copy_beats_dma_but_not_its_overhead() {
        // §4.4: with hot caches the CPU copy wins outright, yet the DMA
        // *startup* alone is cheaper than the cached copy for larger
        // sizes — so offloading still pays when overlap is possible.
        let r = row(64 * 1024);
        assert!(r.copy_cache_us < r.dma_copy_us);
        assert!(r.dma_overhead_us < r.copy_cache_us);
    }
}
