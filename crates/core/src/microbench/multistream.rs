//! Fig. 4 — multi-stream bandwidth.
//!
//! Like the bi-directional test but one machine is purely a server: N
//! client threads stream to N server threads, connections distributed
//! round-robin over the six ports. The paper sweeps N up to 12 and
//! observes non-I/OAT's CPU climbing to 76 % (vs 52 % with I/OAT) with a
//! bandwidth dip at 12 threads.

use crate::calibration;
use crate::cluster::{Cluster, NodeConfig};
use crate::metrics::{Comparison, ExperimentWindow, ThroughputResult};
use crate::microbench::stream;
use ioat_netsim::{IoatConfig, SocketOpts};

/// Configuration of a multi-stream run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiStreamConfig {
    /// Number of streaming threads (connections).
    pub threads: usize,
    /// Ports available (connections are spread round-robin).
    pub ports: usize,
    /// Socket options.
    pub opts: SocketOpts,
    /// Measurement window.
    pub window: ExperimentWindow,
}

impl MultiStreamConfig {
    /// The paper's configuration at a given thread count.
    pub fn paper(threads: usize) -> Self {
        MultiStreamConfig {
            threads,
            ports: calibration::TESTBED_PORTS,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::standard(),
        }
    }

    /// Small fast configuration for unit tests.
    pub fn quick_test(threads: usize) -> Self {
        MultiStreamConfig {
            threads,
            ports: 2,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::quick(),
        }
    }
}

/// Runs the multi-stream test; CPU is reported on the receiving server.
pub fn run(cfg: &MultiStreamConfig, ioat: IoatConfig) -> ThroughputResult {
    assert!(cfg.threads > 0, "at least one stream required");
    let mut cluster = Cluster::new(0xB2);
    let client = cluster.add_node(NodeConfig::testbed("client", ioat));
    let server = cluster.add_node(NodeConfig::testbed("server", ioat));
    let pairs = cluster.connect_ports(client, server, cfg.ports, cfg.opts.coalescing);

    let hint = cfg.window.to().as_nanos();
    for t in 0..cfg.threads {
        let pair = pairs[t % pairs.len()];
        let (s_tx, _) = cluster.open(client, server, pair, cfg.opts);
        stream(&s_tx, cluster.sim_mut(), hint, 1_000.0);
    }

    let (from, to) = cfg.window.execute(&mut cluster, &[client, server]);
    let rxs = cluster.stack(server).borrow();
    let txs = cluster.stack(client).borrow();
    ThroughputResult {
        mbps: rxs.rx_meter().mbps(to),
        rx_cpu: rxs.cpu_utilization(from, to),
        tx_cpu: txs.cpu_utilization(from, to),
    }
}

/// Runs both configurations and pairs them.
pub fn compare(cfg: &MultiStreamConfig) -> Comparison {
    Comparison {
        non_ioat: run(cfg, IoatConfig::disabled()),
        ioat: run(cfg, IoatConfig::full()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_threads_than_ports_share_bandwidth() {
        let r = run(&MultiStreamConfig::quick_test(4), IoatConfig::disabled());
        // 4 threads over 2 ports: aggregate is bounded by 2 ports' rates.
        assert!(
            (1_500.0..2_000.0).contains(&r.mbps),
            "aggregate {:.0} Mbps",
            r.mbps
        );
    }

    #[test]
    fn cpu_grows_with_thread_count() {
        let few = run(&MultiStreamConfig::quick_test(2), IoatConfig::disabled());
        let many = run(&MultiStreamConfig::quick_test(8), IoatConfig::disabled());
        assert!(
            many.rx_cpu > few.rx_cpu,
            "8 threads {:.3} should cost more CPU than 2 {:.3}",
            many.rx_cpu,
            few.rx_cpu
        );
    }

    #[test]
    fn ioat_saves_cpu_under_many_streams() {
        let c = compare(&MultiStreamConfig::quick_test(8));
        assert!(
            c.relative_cpu_benefit() > 0.05,
            "benefit {:.3}",
            c.relative_cpu_benefit()
        );
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_threads_is_rejected() {
        run(&MultiStreamConfig::quick_test(0), IoatConfig::disabled());
    }
}
