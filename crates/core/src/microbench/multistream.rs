//! Fig. 4 — multi-stream bandwidth.
//!
//! Like the bi-directional test but one machine is purely a server: N
//! client threads stream to N server threads, connections distributed
//! round-robin over the six ports. The paper sweeps N up to 12 and
//! observes non-I/OAT's CPU climbing to 76 % (vs 52 % with I/OAT) with a
//! bandwidth dip at 12 threads.

use crate::calibration::{self, NodeProfile};
use crate::cluster::{Cluster, NodeConfig};
use crate::metrics::{Comparison, ExperimentWindow, ThroughputResult};
use crate::microbench::stream;
use ioat_netsim::{IoatConfig, SocketOpts};
use ioat_simcore::time::Bandwidth;

/// Configuration of a multi-stream run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiStreamConfig {
    /// Number of streaming threads (connections).
    pub threads: usize,
    /// Ports available (connections are spread round-robin).
    pub ports: usize,
    /// Socket options.
    pub opts: SocketOpts,
    /// Measurement window.
    pub window: ExperimentWindow,
    /// Per-port line rate (the paper's testbed: 1 GbE).
    pub link: Bandwidth,
    /// Hardware era both endpoints are calibrated against.
    pub profile: NodeProfile,
}

impl MultiStreamConfig {
    /// The paper's configuration at a given thread count.
    pub fn paper(threads: usize) -> Self {
        MultiStreamConfig {
            threads,
            ports: calibration::TESTBED_PORTS,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::standard(),
            link: calibration::port_bandwidth(),
            profile: NodeProfile::Testbed2007,
        }
    }

    /// Small fast configuration for unit tests.
    pub fn quick_test(threads: usize) -> Self {
        MultiStreamConfig {
            ports: 2,
            window: ExperimentWindow::quick(),
            ..Self::paper(threads)
        }
    }

    /// The same run shape at a different line rate and hardware era —
    /// the multistream cell of the modern-offload ablation.
    pub fn with_link(mut self, link: Bandwidth, profile: NodeProfile) -> Self {
        self.link = link;
        self.profile = profile;
        self
    }
}

/// Runs the multi-stream test; CPU is reported on the receiving server.
pub fn run(cfg: &MultiStreamConfig, ioat: IoatConfig) -> ThroughputResult {
    assert!(cfg.threads > 0, "at least one stream required");
    let mut cluster = Cluster::new(0xB2);
    cluster.set_bandwidth(cfg.link);
    let client = cluster.add_node(NodeConfig::profiled("client", ioat, cfg.profile));
    let server = cluster.add_node(NodeConfig::profiled("server", ioat, cfg.profile));
    let pairs = cluster.connect_ports(client, server, cfg.ports, cfg.opts.coalescing);

    let hint = cfg.window.to().as_nanos();
    // Offered load per stream tracks the line rate so faster links stay
    // busy through the window (at 1 GbE this is the paper's 1000 Mbps).
    let rate_mbps = cfg.link.as_bps() as f64 / 1e6;
    for t in 0..cfg.threads {
        let pair = pairs[t % pairs.len()];
        let (s_tx, _) = cluster.open(client, server, pair, cfg.opts);
        stream(&s_tx, cluster.sim_mut(), hint, rate_mbps);
    }

    let (from, to) = cfg.window.execute(&mut cluster, &[client, server]);
    let rxs = cluster.stack(server).borrow();
    let txs = cluster.stack(client).borrow();
    ThroughputResult {
        mbps: rxs.rx_meter().mbps(to),
        rx_cpu: rxs.cpu_utilization(from, to),
        tx_cpu: txs.cpu_utilization(from, to),
        rx_occupancy: rxs.cpu_occupancy(from, to),
    }
}

/// Runs both configurations and pairs them.
pub fn compare(cfg: &MultiStreamConfig) -> Comparison {
    Comparison {
        non_ioat: run(cfg, IoatConfig::disabled()),
        ioat: run(cfg, IoatConfig::full()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_threads_than_ports_share_bandwidth() {
        let r = run(&MultiStreamConfig::quick_test(4), IoatConfig::disabled());
        // 4 threads over 2 ports: aggregate is bounded by 2 ports' rates.
        assert!(
            (1_500.0..2_000.0).contains(&r.mbps),
            "aggregate {:.0} Mbps",
            r.mbps
        );
    }

    #[test]
    fn cpu_grows_with_thread_count() {
        let few = run(&MultiStreamConfig::quick_test(2), IoatConfig::disabled());
        let many = run(&MultiStreamConfig::quick_test(8), IoatConfig::disabled());
        assert!(
            many.rx_cpu > few.rx_cpu,
            "8 threads {:.3} should cost more CPU than 2 {:.3}",
            many.rx_cpu,
            few.rx_cpu
        );
    }

    #[test]
    fn ioat_saves_cpu_under_many_streams() {
        let c = compare(&MultiStreamConfig::quick_test(8));
        assert!(
            c.relative_cpu_benefit() > 0.05,
            "benefit {:.3}",
            c.relative_cpu_benefit()
        );
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_threads_is_rejected() {
        run(&MultiStreamConfig::quick_test(0), IoatConfig::disabled());
    }
}
