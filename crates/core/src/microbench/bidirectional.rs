//! Fig. 3b — bi-directional bandwidth.
//!
//! 2·N threads per machine, N acting as servers and N as clients, one
//! connection per thread pair; each connection runs the basic bandwidth
//! test, N in each direction (§4.1). The aggregate of both directions is
//! the bi-directional bandwidth.

use crate::cluster::{Cluster, NodeConfig};
use crate::metrics::{Comparison, ExperimentWindow, ThroughputResult};
use crate::microbench::stream;
use ioat_netsim::{IoatConfig, SocketOpts};

/// Configuration of a bi-directional bandwidth run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BidirConfig {
    /// Number of port pairs; N connections flow in each direction.
    pub ports: usize,
    /// Socket options.
    pub opts: SocketOpts,
    /// Measurement window.
    pub window: ExperimentWindow,
}

impl BidirConfig {
    /// The paper's configuration at a given port count.
    pub fn paper(ports: usize) -> Self {
        BidirConfig {
            ports,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::standard(),
        }
    }

    /// Small fast configuration for unit tests.
    pub fn quick_test() -> Self {
        BidirConfig {
            ports: 1,
            opts: SocketOpts::tuned(),
            window: ExperimentWindow::quick(),
        }
    }
}

/// Runs the bi-directional test. `mbps` is the aggregate of both
/// directions; `rx_cpu`/`tx_cpu` are the two nodes' utilizations (both
/// nodes send *and* receive, so they are near-symmetric).
pub fn run(cfg: &BidirConfig, ioat: IoatConfig) -> ThroughputResult {
    let mut cluster = Cluster::new(0xB1);
    let a = cluster.add_node(NodeConfig::testbed("node-a", ioat));
    let b = cluster.add_node(NodeConfig::testbed("node-b", ioat));
    let pairs = cluster.connect_ports(a, b, cfg.ports, cfg.opts.coalescing);

    let hint = cfg.window.to().as_nanos();
    for pair in pairs {
        // One connection per direction on each port pair.
        let (sa, _) = cluster.open(a, b, pair, cfg.opts);
        stream(&sa, cluster.sim_mut(), hint, 1_000.0);
        let (_, sb) = cluster.open(a, b, pair, cfg.opts);
        stream(&sb, cluster.sim_mut(), hint, 1_000.0);
    }

    let (from, to) = cfg.window.execute(&mut cluster, &[a, b]);
    let sa = cluster.stack(a).borrow();
    let sb = cluster.stack(b).borrow();
    ThroughputResult {
        mbps: sa.rx_meter().mbps(to) + sb.rx_meter().mbps(to),
        rx_cpu: sb.cpu_utilization(from, to),
        tx_cpu: sa.cpu_utilization(from, to),
        rx_occupancy: sb.cpu_occupancy(from, to),
    }
}

/// Runs both configurations and pairs them.
pub fn compare(cfg: &BidirConfig) -> Comparison {
    Comparison {
        non_ioat: run(cfg, IoatConfig::disabled()),
        ioat: run(cfg, IoatConfig::full()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_carry_traffic() {
        let r = run(&BidirConfig::quick_test(), IoatConfig::disabled());
        // One duplex port pair: aggregate approaches 2× one-way goodput.
        assert!(
            (1_500.0..2_000.0).contains(&r.mbps),
            "bidir bandwidth {:.0} Mbps",
            r.mbps
        );
    }

    #[test]
    fn node_utilizations_are_symmetric() {
        let r = run(&BidirConfig::quick_test(), IoatConfig::disabled());
        let ratio = r.rx_cpu / r.tx_cpu;
        assert!(
            (0.7..1.4).contains(&ratio),
            "asymmetric utils: {:.3} vs {:.3}",
            r.rx_cpu,
            r.tx_cpu
        );
    }

    #[test]
    fn bidir_cpu_exceeds_unidirectional() {
        use crate::microbench::bandwidth::{self, BandwidthConfig};
        let uni = bandwidth::run(&BandwidthConfig::quick_test(), IoatConfig::disabled());
        let bid = run(&BidirConfig::quick_test(), IoatConfig::disabled());
        assert!(
            bid.rx_cpu > uni.rx_cpu,
            "bidir rx cpu {:.3} should exceed unidirectional {:.3}",
            bid.rx_cpu,
            uni.rx_cpu
        );
    }

    #[test]
    fn ioat_benefit_appears_bidirectionally() {
        let c = compare(&BidirConfig::quick_test());
        assert!(c.relative_cpu_benefit() > 0.0);
    }
}
