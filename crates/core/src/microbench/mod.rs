//! The paper's §4 micro-benchmark suite.
//!
//! Each submodule reproduces one figure:
//!
//! | Module | Figure | What it measures |
//! |---|---|---|
//! | [`bandwidth`] | Fig. 3a | `ttcp` bandwidth vs port count + receiver CPU |
//! | [`bidirectional`] | Fig. 3b | 2·N-thread bi-directional bandwidth |
//! | [`multistream`] | Fig. 4 | N receive threads on one server |
//! | [`sockopts`] | Fig. 5 | optimization Cases 1–5 sweep |
//! | [`copybench`] | Fig. 6 | CPU copy vs DMA-engine copy + overlap |
//! | [`splitup`] | Fig. 7 | per-feature benefit split-up |

pub mod bandwidth;
pub mod bidirectional;
pub mod copybench;
pub mod multistream;
pub mod sockopts;
pub mod splitup;

use ioat_netsim::{Socket, SocketEvent};
use ioat_simcore::Sim;

/// Posts a continuous `ttcp`-style stream on `socket`: enough pending
/// bytes that the connection stays busy past the measurement window.
///
/// `duration_hint_ns` should cover warm-up + measurement; the driver
/// over-provisions by 2× so the stream never drains early.
pub fn stream(socket: &Socket, sim: &mut Sim, duration_hint_ns: u64, line_rate_mbps: f64) {
    let bytes = (line_rate_mbps * 1e6 / 8.0 * (duration_hint_ns as f64 / 1e9) * 2.0) as u64;
    socket.send(sim, bytes.max(1_000_000));
}

/// Drives message-paced traffic: sends one `msg_size` message, then the
/// next each time the previous drains (the `write(); write(); ...` loop
/// of a benchmark client). Runs forever; experiments stop at the window
/// edge.
pub fn message_paced(socket: &Socket, sim: &mut Sim, msg_size: u64) {
    let s = socket.clone();
    socket.set_handler(move |sim, ev| {
        if matches!(ev, SocketEvent::SendReady) {
            s.send(sim, msg_size);
        }
    });
    socket.send(sim, msg_size);
}
