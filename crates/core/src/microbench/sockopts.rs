//! Fig. 5 — bandwidth and bi-directional bandwidth under the socket
//! optimization Cases 1–5.
//!
//! Case 1: defaults. Case 2: +1 MB socket buffers. Case 3: +TSO.
//! Case 4: +jumbo (2048-byte) frames. Case 5: +interrupt coalescing.
//! Each case runs with I/OAT and non-I/OAT at the full six ports; the
//! paper's derived metric is the relative CPU benefit per case.

use crate::calibration;
use crate::metrics::{Comparison, ExperimentWindow};
use crate::microbench::bandwidth::{self, BandwidthConfig};
use crate::microbench::bidirectional::{self, BidirConfig};
use ioat_netsim::SocketOpts;

/// One row of the Fig. 5 sweep.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CaseRow {
    /// Case label ("Case 1" … "Case 5").
    pub case: String,
    /// Paired I/OAT vs non-I/OAT result.
    pub comparison: Comparison,
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepConfig {
    /// Port pairs to drive (the paper uses all six).
    pub ports: usize,
    /// Measurement window.
    pub window: ExperimentWindow,
}

impl SweepConfig {
    /// The paper's sweep.
    pub fn paper() -> Self {
        SweepConfig {
            ports: calibration::TESTBED_PORTS,
            window: ExperimentWindow::standard(),
        }
    }

    /// Small fast sweep for unit tests.
    pub fn quick_test() -> Self {
        SweepConfig {
            ports: 2,
            window: ExperimentWindow::quick(),
        }
    }
}

/// Runs one Fig. 5a case (uni-directional bandwidth). The per-case entry
/// point lets sweep executors fan the cases out as independent jobs.
pub fn case_bandwidth(cfg: &SweepConfig, label: &str, opts: SocketOpts) -> CaseRow {
    let bw = BandwidthConfig {
        ports: cfg.ports,
        opts,
        window: cfg.window,
    };
    CaseRow {
        case: label.to_string(),
        comparison: bandwidth::compare(&bw),
    }
}

/// Runs one Fig. 5b case (bi-directional bandwidth).
pub fn case_bidirectional(cfg: &SweepConfig, label: &str, opts: SocketOpts) -> CaseRow {
    let bd = BidirConfig {
        ports: cfg.ports,
        opts,
        window: cfg.window,
    };
    CaseRow {
        case: label.to_string(),
        comparison: bidirectional::compare(&bd),
    }
}

/// Runs the Fig. 5a sweep (uni-directional bandwidth).
pub fn sweep_bandwidth(cfg: &SweepConfig) -> Vec<CaseRow> {
    SocketOpts::all_cases()
        .into_iter()
        .map(|(label, opts)| case_bandwidth(cfg, label, opts))
        .collect()
}

/// Runs the Fig. 5b sweep (bi-directional bandwidth).
pub fn sweep_bidirectional(cfg: &SweepConfig) -> Vec<CaseRow> {
    SocketOpts::all_cases()
        .into_iter()
        .map(|(label, opts)| case_bidirectional(cfg, label, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizations_do_not_hurt_throughput() {
        let rows = sweep_bandwidth(&SweepConfig::quick_test());
        assert_eq!(rows.len(), 5);
        let first = rows.first().unwrap().comparison.non_ioat.mbps;
        let last = rows.last().unwrap().comparison.non_ioat.mbps;
        assert!(
            last >= first * 0.95,
            "Case 5 ({last:.0} Mbps) should not fall below Case 1 ({first:.0} Mbps)"
        );
    }

    #[test]
    fn optimizations_reduce_cpu_cost() {
        let rows = sweep_bandwidth(&SweepConfig::quick_test());
        let case1 = rows[0].comparison.non_ioat.rx_cpu;
        let case5 = rows[4].comparison.non_ioat.rx_cpu;
        assert!(
            case5 < case1,
            "Case 5 CPU {case5:.3} should be below Case 1 {case1:.3}"
        );
    }
}
