//! `ioat-core` — the I/OAT cluster model and micro-benchmark suite.
//!
//! This crate is the reproduction's subject: it assembles the substrates
//! (`ioat-simcore`, `ioat-memsim`, `ioat-netsim`) into the paper's
//! two-node testbed and implements §4's micro-benchmarks:
//!
//! * [`cluster`] — build nodes and multi-port GigE fabrics
//!   ([`Cluster`], [`NodeConfig`]).
//! * [`metrics`] — warm-up/measure experiment windows and result types.
//! * [`calibration`] — the paper-testbed parameter set and the provenance
//!   of every constant.
//! * [`microbench`] — bandwidth (Fig. 3a), bi-directional bandwidth
//!   (Fig. 3b), multi-stream bandwidth (Fig. 4), the socket-optimization
//!   sweep (Fig. 5), the CPU-vs-DMA copy comparison (Fig. 6) and the
//!   feature split-up (Fig. 7).
//!
//! # Quickstart
//!
//! ```rust
//! use ioat_core::microbench::bandwidth::{self, BandwidthConfig};
//! use ioat_netsim::IoatConfig;
//!
//! let mut cfg = BandwidthConfig::quick_test();
//! cfg.ports = 2;
//! let non = bandwidth::run(&cfg, IoatConfig::disabled());
//! let ioat = bandwidth::run(&cfg, IoatConfig::full());
//! assert!(ioat.rx_cpu <= non.rx_cpu + 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibration;
pub mod cluster;
pub mod metrics;
pub mod microbench;

pub use cluster::{Cluster, NodeConfig, NodeHandle};
pub use metrics::{ExperimentWindow, ThroughputResult};

// Re-export the configuration types callers need.
pub use ioat_netsim::{IoatConfig, SocketOpts, StackParams};
