//! `ioat-core` — the I/OAT cluster model and micro-benchmark suite.
//!
//! This crate is the reproduction's subject: it assembles the substrates
//! (`ioat-simcore`, `ioat-memsim`, `ioat-netsim`) into the paper's
//! two-node testbed and implements §4's micro-benchmarks:
//!
//! * [`cluster`] — build nodes and multi-port GigE fabrics
//!   ([`Cluster`], [`NodeConfig`]).
//! * [`metrics`] — warm-up/measure experiment windows and result types.
//! * [`calibration`] — the paper-testbed parameter set and the provenance
//!   of every constant.
//! * [`microbench`] — bandwidth (Fig. 3a), bi-directional bandwidth
//!   (Fig. 3b), multi-stream bandwidth (Fig. 4), the socket-optimization
//!   sweep (Fig. 5), the CPU-vs-DMA copy comparison (Fig. 6) and the
//!   feature split-up (Fig. 7).
//!
//! # Quickstart
//!
//! ```rust
//! use ioat_core::microbench::bandwidth::{self, BandwidthConfig};
//! use ioat_netsim::IoatConfig;
//!
//! let mut cfg = BandwidthConfig::quick_test();
//! cfg.ports = 2;
//! let non = bandwidth::run(&cfg, IoatConfig::disabled());
//! let ioat = bandwidth::run(&cfg, IoatConfig::full());
//! assert!(ioat.rx_cpu <= non.rx_cpu + 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibration;
pub mod cluster;
pub mod metrics;
pub mod microbench;

pub use cluster::{Cluster, NodeConfig, NodeHandle};
pub use metrics::{ExperimentWindow, ThroughputResult};

// Re-export the configuration types callers need.
pub use ioat_netsim::{IoatConfig, SocketOpts, StackParams};

#[cfg(test)]
mod send_contract {
    //! The sweep executor (`ioat-bench::sweep`) moves figure-point jobs —
    //! and the configs they capture — onto worker threads. Simulations
    //! stay single-threaded (`Sim` is `Rc`-based and never crosses a
    //! thread); only the plain-data *configuration* types must be `Send`.
    //! These assertions turn an accidental `Rc`/`RefCell` field added to
    //! a config into a compile error instead of a distant bench failure.
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn config_types_are_send() {
        assert_send::<IoatConfig>();
        assert_send::<SocketOpts>();
        assert_send::<StackParams>();
        assert_send::<ExperimentWindow>();
        assert_send::<ThroughputResult>();
        assert_send::<NodeConfig>();
        assert_send::<microbench::bandwidth::BandwidthConfig>();
        assert_send::<microbench::bidirectional::BidirConfig>();
        assert_send::<microbench::multistream::MultiStreamConfig>();
        assert_send::<microbench::sockopts::SweepConfig>();
        assert_send::<microbench::splitup::SplitupConfig>();
        assert_send::<microbench::copybench::CopyRow>();
    }
}
