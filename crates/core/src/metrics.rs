//! Experiment measurement: warm-up + window handling and result types.

use crate::cluster::{Cluster, NodeHandle};
use ioat_simcore::stats::{relative_benefit, relative_improvement};
use ioat_simcore::{SimDuration, SimTime};

/// A warm-up + measurement window pair.
///
/// Experiments run the workload for `warmup` of simulated time (caches
/// fill, windows open, queues reach steady state), then measure for
/// `measure`. Throughput and CPU utilization are reported over the
/// measurement window only, the way the paper's `ttcp` runs report
/// steady-state numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentWindow {
    /// Warm-up length (excluded from all metrics).
    pub warmup: SimDuration,
    /// Measurement length.
    pub measure: SimDuration,
}

impl ExperimentWindow {
    /// The standard window used by the figure harnesses.
    pub fn standard() -> Self {
        ExperimentWindow {
            warmup: SimDuration::from_millis(30),
            measure: SimDuration::from_millis(150),
        }
    }

    /// A short window for unit tests (keeps debug-mode tests fast).
    pub fn quick() -> Self {
        ExperimentWindow {
            warmup: SimDuration::from_millis(5),
            measure: SimDuration::from_millis(25),
        }
    }

    /// Measurement start time.
    pub fn from(&self) -> SimTime {
        SimTime::ZERO + self.warmup
    }

    /// Measurement end time.
    pub fn to(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.measure
    }

    /// Runs `cluster` through warm-up, starts the byte meters on the given
    /// nodes, runs the measurement window and returns `(from, to)`.
    pub fn execute(&self, cluster: &mut Cluster, nodes: &[NodeHandle]) -> (SimTime, SimTime) {
        cluster.run_until(self.from());
        for &n in nodes {
            cluster.stack(n).borrow_mut().begin_measurement(self.from());
        }
        cluster.run_until(self.to());
        // Every figure harness funnels through here, so this one call
        // gives the whole suite end-of-window invariant coverage. Gated:
        // release sweeps without `--audit` skip even the cheap reads.
        if ioat_guard::enabled() {
            cluster.run_audits();
        }
        (self.from(), self.to())
    }
}

/// Throughput + CPU result for one configuration of one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThroughputResult {
    /// Application-level goodput in Mbps (10^6 bits/s).
    pub mbps: f64,
    /// Receiver-node overall CPU utilization in `[0, 1]` — time spent
    /// doing *work* (a busy-poll spin loop does not count).
    pub rx_cpu: f64,
    /// Sender-node overall CPU utilization in `[0, 1]`.
    pub tx_cpu: f64,
    /// Receiver-node core *occupancy* in `[0, 1]`: like `rx_cpu`, but a
    /// core pinned to a busy-poll receive loop counts as fully occupied
    /// for the whole window. Equals `rx_cpu` for interrupt-driven modes;
    /// the gap times the core count is the cores polling burns — the
    /// cores you could reclaim by switching to interrupts or I/OAT.
    pub rx_occupancy: f64,
}

impl ThroughputResult {
    /// Throughput in MB/s (10^6 bytes/s), the PVFS unit.
    pub fn mbytes_per_sec(&self) -> f64 {
        self.mbps / 8.0
    }

    /// The fraction of receiver capacity burned spinning: occupancy
    /// minus useful utilization, clamped at zero.
    pub fn rx_spin_overhead(&self) -> f64 {
        (self.rx_occupancy - self.rx_cpu).max(0.0)
    }
}

/// An I/OAT vs non-I/OAT comparison row, with the paper's derived
/// metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Comparison {
    /// The non-I/OAT result.
    pub non_ioat: ThroughputResult,
    /// The I/OAT result.
    pub ioat: ThroughputResult,
}

impl Comparison {
    /// The paper's "relative CPU benefit": `(b - a) / b` on receiver CPU.
    pub fn relative_cpu_benefit(&self) -> f64 {
        relative_benefit(self.ioat.rx_cpu, self.non_ioat.rx_cpu)
    }

    /// Relative throughput improvement of I/OAT.
    pub fn throughput_improvement(&self) -> f64 {
        relative_improvement(self.ioat.mbps, self.non_ioat.mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bounds() {
        let w = ExperimentWindow::standard();
        assert_eq!(w.from(), SimTime::from_millis(30));
        assert_eq!(w.to(), SimTime::from_millis(180));
    }

    #[test]
    fn comparison_metrics_match_paper_formulas() {
        let c = Comparison {
            non_ioat: ThroughputResult {
                mbps: 5514.0,
                rx_cpu: 0.37,
                tx_cpu: 0.2,
                rx_occupancy: 0.37,
            },
            ioat: ThroughputResult {
                mbps: 5586.0,
                rx_cpu: 0.29,
                tx_cpu: 0.2,
                rx_occupancy: 0.29,
            },
        };
        // §4.1: 37% vs 29% is "close to 21%" relative benefit.
        assert!((c.relative_cpu_benefit() - 0.216).abs() < 0.01);
        assert!(c.throughput_improvement() > 0.0);
        assert!((c.ioat.mbytes_per_sec() - 698.25).abs() < 0.01);
    }
}
