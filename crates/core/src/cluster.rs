//! Cluster assembly: nodes, fabrics and connections.
//!
//! A [`Cluster`] owns the simulator and the nodes; experiments build one,
//! wire ports, open connections and run. Nodes are [`HostStack`]s under
//! the hood — this module only adds the testbed-shaped conveniences.

use crate::calibration;
use ioat_fabric::{Fabric, FabricParams, FabricRef, TopologySpec};
use ioat_faults::{FaultInjector, FaultPlan};
use ioat_netsim::stack::{self, HostStack, StackRef};
use ioat_netsim::{ConnId, IoatConfig, Link, Socket, SocketOpts, StackParams};
use ioat_simcore::time::Bandwidth;
use ioat_simcore::{Sim, SimDuration};
use ioat_telemetry::{Category, MetricsRegistry, Tracer, TrackId};
use std::collections::HashMap;
use std::rc::Rc;

/// Pseudo node id used for simulator-engine events in exported traces
/// (kept far away from real node indices).
pub const SIM_TRACK_NODE: u32 = 9_999;

/// Configuration of one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Diagnostic name.
    pub name: String,
    /// Number of CPU cores.
    pub cores: usize,
    /// I/OAT feature set.
    pub ioat: IoatConfig,
    /// Stack cost parameters.
    pub params: StackParams,
    /// Cache geometry.
    pub cache: ioat_memsim::CacheConfig,
}

impl NodeConfig {
    /// A paper-testbed node (4 cores, calibrated parameters) with the
    /// given feature set.
    pub fn testbed(name: &str, ioat: IoatConfig) -> Self {
        Self::profiled(name, ioat, calibration::NodeProfile::Testbed2007)
    }

    /// A node calibrated to the given hardware era with the given feature
    /// set — [`NodeConfig::testbed`] generalized over
    /// [`calibration::NodeProfile`].
    pub fn profiled(name: &str, ioat: IoatConfig, profile: calibration::NodeProfile) -> Self {
        NodeConfig {
            name: name.to_string(),
            cores: profile.cores(),
            ioat,
            params: profile.params(),
            cache: profile.cache(),
        }
    }
}

/// Handle to a node in a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeHandle(usize);

/// A set of simulated nodes plus the simulator driving them.
///
/// ```rust
/// use ioat_core::{Cluster, NodeConfig};
/// use ioat_netsim::{IoatConfig, SocketOpts};
///
/// let mut cluster = Cluster::new(42);
/// let a = cluster.add_node(NodeConfig::testbed("a", IoatConfig::full()));
/// let b = cluster.add_node(NodeConfig::testbed("b", IoatConfig::full()));
/// let ports = cluster.connect_ports(a, b, 2, true);
/// let (sa, _sb) = cluster.open(a, b, ports[0], SocketOpts::tuned());
/// sa.send(cluster.sim_mut(), 100_000);
/// cluster.run();
/// ```
pub struct Cluster {
    sim: Sim,
    nodes: Vec<StackRef>,
    names: HashMap<String, NodeHandle>,
    next_conn: u64,
    bandwidth: Bandwidth,
    latency: SimDuration,
    tracer: Tracer,
    faults: FaultPlan,
    fabric: Option<FabricRef>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl Cluster {
    /// Creates an empty cluster. `seed` is reserved for stochastic
    /// workloads layered on top; the substrate itself is deterministic.
    pub fn new(seed: u64) -> Self {
        let _ = seed;
        let mut sim = Sim::new();
        // Generous runaway guard; experiments run millions of events. An
        // active audit scope may impose a tighter deterministic watchdog
        // so a wedged figure job dies after a fixed event count instead
        // of spinning for the full runaway allowance.
        let limit = match ioat_guard::event_budget() {
            Some(budget) => budget.min(2_000_000_000),
            None => 2_000_000_000,
        };
        sim.set_event_limit(limit);
        Cluster {
            sim,
            nodes: Vec::new(),
            names: HashMap::new(),
            next_conn: 1,
            bandwidth: calibration::port_bandwidth(),
            latency: calibration::switch_latency(),
            tracer: Tracer::disabled(),
            faults: FaultPlan::none(),
            fabric: None,
        }
    }

    /// Compiles and installs a switch fabric: nodes can then attach to
    /// leaf ports with [`Cluster::attach_fabric_host`] and connect through
    /// it with [`Cluster::open_on_fabric`], as an alternative to the
    /// point-to-point [`Cluster::connect_ports`]. Fabric tail-drops are
    /// folded into [`Cluster::run_audits`]' conservation identity and
    /// [`Cluster::metrics`].
    ///
    /// # Panics
    ///
    /// Panics if a fabric is already installed.
    pub fn install_fabric(&mut self, spec: TopologySpec, params: FabricParams) -> FabricRef {
        assert!(self.fabric.is_none(), "fabric already installed");
        assert!(
            !self.faults.has_fabric_faults(),
            "install the fabric before the fault plan: the installed plan \
             has fabric faults the new fabric would silently miss"
        );
        let fabric = Fabric::new(spec, params);
        self.fabric = Some(Rc::clone(&fabric));
        fabric
    }

    /// The installed fabric, if any.
    pub fn fabric(&self) -> Option<&FabricRef> {
        self.fabric.as_ref()
    }

    /// Attaches `node` to the installed fabric at topology host index
    /// `host`; returns the node's new NIC port index.
    ///
    /// # Panics
    ///
    /// Panics if no fabric is installed, or the attachment point is taken.
    pub fn attach_fabric_host(&mut self, node: NodeHandle, host: usize) -> usize {
        let fabric = self.fabric.as_ref().expect("no fabric installed");
        fabric.attach(&self.nodes[node.0], host)
    }

    /// Attaches `node` to an arbitrary [`FrameRouter`] at attachment index
    /// `attachment` with an access link cut from `params` — the partition
    ///-local counterpart of [`Cluster::attach_fabric_host`] for parallel
    /// runs, where the real fabric lives in another partition and `router`
    /// is the partition's cross-boundary proxy. Returns the node's new NIC
    /// port index.
    pub fn attach_router_host(
        &mut self,
        node: NodeHandle,
        router: Rc<dyn stack::FrameRouter>,
        attachment: usize,
        params: &FabricParams,
    ) -> usize {
        let access = Link::new(
            &format!("host{attachment}->router"),
            params.host_bandwidth,
            params.switch_latency,
        );
        stack::attach_router(
            &self.nodes[node.0],
            access,
            params.coalescing,
            router,
            attachment,
        )
    }

    /// Opens a connection between two local nodes over already-created
    /// ports with a caller-chosen [`ConnId`]. Parallel runs use this to
    /// assign globally deterministic connection ids independent of the
    /// per-partition open order; the id must not collide with the
    /// auto-assigned sequence of [`Cluster::open`]/
    /// [`Cluster::open_on_fabric`] on the same cluster.
    pub fn open_with_id(
        &mut self,
        a: NodeHandle,
        port_a: usize,
        b: NodeHandle,
        port_b: usize,
        opts: SocketOpts,
        id: ConnId,
    ) -> (Socket, Socket) {
        stack::open_connection(&self.nodes[a.0], &self.nodes[b.0], port_a, port_b, opts, id);
        (
            Socket::new(Rc::clone(&self.nodes[a.0]), id),
            Socket::new(Rc::clone(&self.nodes[b.0]), id),
        )
    }

    /// Opens a connection routed through the fabric between the nodes
    /// attached at `att_a` and `att_b`; returns the two socket endpoints
    /// `(on_a, on_b)`.
    pub fn open_on_fabric(
        &mut self,
        a: NodeHandle,
        att_a: usize,
        b: NodeHandle,
        att_b: usize,
        opts: SocketOpts,
    ) -> (Socket, Socket) {
        let fabric = self.fabric.as_ref().expect("no fabric installed");
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        fabric.open(att_a, att_b, opts, id);
        (
            Socket::new(Rc::clone(&self.nodes[a.0]), id),
            Socket::new(Rc::clone(&self.nodes[b.0]), id),
        )
    }

    /// Installs a fault plan: every node already added (and every node
    /// added afterwards) gets a [`FaultInjector`] for it, keyed by the
    /// node's index, and an installed fabric receives the plan's
    /// link-flap and switch-crash entries. Installing [`FaultPlan::none()`]
    /// (the default) keeps every hook inert and runs bit-identical to a
    /// fault-free build.
    ///
    /// Install the fabric before the plan — a fabric installed afterwards
    /// would silently miss the fabric-facing entries, so that order is
    /// rejected by [`Cluster::install_fabric`].
    pub fn set_faults(&mut self, plan: &FaultPlan) {
        for (i, node) in self.nodes.iter().enumerate() {
            node.borrow_mut()
                .set_fault_injector(FaultInjector::new(plan, i as u32));
        }
        if let Some(fabric) = &self.fabric {
            fabric.set_faults(plan);
        }
        self.faults = plan.clone();
    }

    /// The installed fault plan (inert by default).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Attaches a tracer to the cluster: every node already added (and
    /// every node added afterwards) gets it, with the node's index as the
    /// Chrome-trace pid. When the tracer records [`Category::Sim`], the
    /// simulator's event hook also emits one instant per executed event
    /// on a dedicated pseudo process.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for (i, node) in self.nodes.iter().enumerate() {
            node.borrow_mut().set_tracer(tracer.clone(), i as u32);
        }
        if tracer.records(Category::Sim) {
            tracer.set_process_name(SIM_TRACK_NODE, "sim-engine");
            let tr = tracer.clone();
            self.sim.set_event_hook(move |at, _seq| {
                tr.instant("event", Category::Sim, TrackId::new(SIM_TRACK_NODE, 0), at);
            });
        }
        self.tracer = tracer;
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshots every node's stack and DMA-engine statistics into a
    /// metrics registry, keys prefixed with the node name.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for node in &self.nodes {
            let st = node.borrow();
            let name = st.name().to_string();
            let s = st.stats();
            reg.add(&format!("{name}.frames_processed"), s.frames_processed);
            reg.add(&format!("{name}.interrupts"), s.interrupts);
            reg.add(&format!("{name}.deliveries"), s.deliveries);
            reg.add(&format!("{name}.dma_deliveries"), s.dma_deliveries);
            reg.add(&format!("{name}.acks"), s.acks);
            reg.add(&format!("{name}.stalled_frames"), s.stalled_frames);
            reg.set_gauge(&format!("{name}.peak_backlog_bytes"), s.peak_backlog as f64);
            reg.add(&format!("{name}.frames_dropped"), s.frames_dropped);
            reg.add(&format!("{name}.rx_ring_drops"), s.rx_ring_drops);
            reg.add(&format!("{name}.ooo_frames"), s.ooo_frames);
            reg.add(&format!("{name}.retransmits"), s.retransmits);
            reg.add(
                &format!("{name}.retransmitted_bytes"),
                s.retransmitted_bytes,
            );
            reg.add(&format!("{name}.rto_timeouts"), s.rto_timeouts);
            reg.add(&format!("{name}.dma_fallbacks"), s.dma_fallbacks);
            if let Some(dma) = st.dma() {
                let d = dma.borrow().stats();
                reg.add(&format!("{name}.dma.requests"), d.requests);
                reg.add(&format!("{name}.dma.bytes"), d.bytes);
                reg.add(&format!("{name}.dma.pages_pinned"), d.pages_pinned);
                reg.add(&format!("{name}.dma.cpu_fallbacks"), d.cpu_fallbacks);
            }
        }
        if let Some(fabric) = &self.fabric {
            reg.add("fabric.forwarded", fabric.forwarded());
            reg.add("fabric.tail_drops", fabric.tail_drops());
            reg.add("fabric.route_blackholes", fabric.blackholes());
            reg.set_gauge("fabric.peak_buffer_bytes", fabric.peak_occupancy() as f64);
        }
        reg
    }

    /// Overrides the fabric line rate for subsequently wired ports.
    pub fn set_bandwidth(&mut self, bw: Bandwidth) {
        self.bandwidth = bw;
    }

    /// Overrides the fabric latency for subsequently wired ports.
    pub fn set_latency(&mut self, latency: SimDuration) {
        self.latency = latency;
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics on duplicate node names.
    pub fn add_node(&mut self, cfg: NodeConfig) -> NodeHandle {
        assert!(
            !self.names.contains_key(&cfg.name),
            "duplicate node name {}",
            cfg.name
        );
        let stack = HostStack::with_cache(&cfg.name, cfg.cores, cfg.params, cfg.ioat, cfg.cache);
        let h = NodeHandle(self.nodes.len());
        if self.tracer.is_enabled() {
            stack
                .borrow_mut()
                .set_tracer(self.tracer.clone(), h.0 as u32);
        }
        if self.faults.is_active() {
            stack
                .borrow_mut()
                .set_fault_injector(FaultInjector::new(&self.faults, h.0 as u32));
        }
        self.names.insert(cfg.name, h);
        self.nodes.push(stack);
        h
    }

    /// The stack behind a handle.
    pub fn stack(&self, node: NodeHandle) -> &StackRef {
        &self.nodes[node.0]
    }

    /// Immutable access to the simulator.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Mutable access to the simulator (for scheduling and running).
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// Wires `n` dedicated port pairs between two nodes (the testbed's
    /// per-VLAN port pairing). Returns the port-pair indices, usable with
    /// [`Cluster::open`].
    pub fn connect_ports(
        &mut self,
        a: NodeHandle,
        b: NodeHandle,
        n: usize,
        coalescing: bool,
    ) -> Vec<PortPair> {
        (0..n)
            .map(|_| {
                let (pa, pb) = stack::wire(
                    &self.nodes[a.0],
                    &self.nodes[b.0],
                    self.bandwidth,
                    self.latency,
                    coalescing,
                );
                PortPair { a: pa, b: pb }
            })
            .collect()
    }

    /// Opens a connection over a wired port pair; returns the two socket
    /// endpoints `(on_a, on_b)`.
    pub fn open(
        &mut self,
        a: NodeHandle,
        b: NodeHandle,
        ports: PortPair,
        opts: SocketOpts,
    ) -> (Socket, Socket) {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        stack::open_connection(
            &self.nodes[a.0],
            &self.nodes[b.0],
            ports.a,
            ports.b,
            opts,
            id,
        );
        (
            Socket::new(Rc::clone(&self.nodes[a.0]), id),
            Socket::new(Rc::clone(&self.nodes[b.0]), id),
        )
    }

    /// Runs the simulation to completion, returning the final instant.
    pub fn run(&mut self) -> ioat_simcore::SimTime {
        self.sim.run()
    }

    /// Runs until `limit`.
    pub fn run_until(&mut self, limit: ioat_simcore::SimTime) -> ioat_simcore::SimTime {
        self.sim.run_until(limit)
    }

    /// Runs the full audit suite over the cluster at the current instant:
    /// engine queue health, every node's conservation identities (plus its
    /// DMA engine, when present) and the cross-node frame/byte
    /// conservation check. Violations produced by this pass are also
    /// surfaced as [`Category::Audit`] trace instants so they land next to
    /// the activity that caused them in exported traces.
    ///
    /// Audits are pure reads — calling this cannot perturb the run.
    pub fn run_audits(&self) {
        let before = ioat_guard::violation_count();
        let now = self.sim.now();
        ioat_guard::audit_sim(&self.sim);
        for node in &self.nodes {
            node.borrow().audit(now);
        }
        let quiescent = self.sim.events_pending() == 0;
        let (switch_dropped, route_blackholed) = if let Some(fabric) = &self.fabric {
            fabric.audit(now, quiescent);
            (fabric.tail_drops(), fabric.blackholes())
        } else {
            (0, 0)
        };
        stack::audit_cluster_conservation_ext(
            &self.nodes,
            switch_dropped,
            route_blackholed,
            now,
            quiescent,
        );
        if self.tracer.records(Category::Audit) {
            for v in ioat_guard::violations_since(before) {
                // Event names must be `'static`; the invariant name is,
                // and it identifies the failed check unambiguously.
                self.tracer.instant(
                    v.invariant,
                    Category::Audit,
                    TrackId::new(SIM_TRACK_NODE, 0),
                    v.at,
                );
            }
        }
    }

    /// Runs only the partition-local audits: engine queue health and every
    /// node's own conservation identities. Skips the cluster-wide frame
    /// conservation check — in a parallel run, frames legitimately leave
    /// this partition, so that identity only holds on totals summed
    /// across *all* partitions (collect them with
    /// [`Cluster::frame_totals`] and check with
    /// [`stack::audit_cluster_conservation_sums`] after the merge).
    pub fn run_local_audits(&self) {
        let now = self.sim.now();
        ioat_guard::audit_sim(&self.sim);
        for node in &self.nodes {
            node.borrow().audit(now);
        }
    }

    /// This cluster's terms of the cross-partition frame-conservation
    /// identity, as plain data safe to move across threads.
    pub fn frame_totals(&self) -> stack::ClusterFrameTotals {
        stack::frame_totals(&self.nodes)
    }
}

/// A wired pair of port indices: `a`'s port and `b`'s port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortPair {
    /// Port index on the first node.
    pub a: usize,
    /// Port index on the second node.
    pub b: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_netsim::SocketEvent;
    use std::cell::RefCell;

    #[test]
    fn cluster_builds_and_transfers() {
        let mut cluster = Cluster::new(1);
        let a = cluster.add_node(NodeConfig::testbed("a", IoatConfig::disabled()));
        let b = cluster.add_node(NodeConfig::testbed("b", IoatConfig::full()));
        let ports = cluster.connect_ports(a, b, 3, true);
        assert_eq!(ports.len(), 3);
        let (sa, sb) = cluster.open(a, b, ports[1], SocketOpts::tuned());
        let got = Rc::new(RefCell::new(0u64));
        let g = Rc::clone(&got);
        sb.set_handler(move |_s, ev| {
            if let SocketEvent::Delivered(n) = ev {
                *g.borrow_mut() += n;
            }
        });
        sa.send(cluster.sim_mut(), 300_000);
        cluster.run();
        assert_eq!(*got.borrow(), 300_000);
        assert_eq!(cluster.stack(b).borrow().port_count(), 3);
    }

    #[test]
    fn tracer_and_metrics_cover_all_nodes() {
        let mut cluster = Cluster::new(1);
        let tracer = Tracer::enabled();
        cluster.set_tracer(tracer.clone());
        let a = cluster.add_node(NodeConfig::testbed("a", IoatConfig::disabled()));
        let b = cluster.add_node(NodeConfig::testbed("b", IoatConfig::full()));
        let ports = cluster.connect_ports(a, b, 1, true);
        let (sa, _sb) = cluster.open(a, b, ports[0], SocketOpts::tuned());
        sa.send(cluster.sim_mut(), 200_000);
        cluster.run();
        assert!(!tracer.is_empty());
        assert_eq!(tracer.process_names()[&1], "b");
        let reg = cluster.metrics();
        assert!(reg.counter("b.deliveries") > 0);
        assert!(reg.counter("b.dma.bytes") > 0);
        assert!(reg.gauge("b.peak_backlog_bytes").is_some());
        assert_eq!(
            reg.counter("a.dma.requests"),
            0,
            "non-I/OAT node has no engine"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        let mut cluster = Cluster::new(1);
        cluster.add_node(NodeConfig::testbed("x", IoatConfig::disabled()));
        cluster.add_node(NodeConfig::testbed("x", IoatConfig::disabled()));
    }

    #[test]
    fn fabric_backed_cluster_transfers_and_audits() {
        let mut cluster = Cluster::new(1);
        let fabric = cluster.install_fabric(
            ioat_fabric::TopologySpec::FatTree { k: 4 },
            ioat_fabric::FabricParams::gige(),
        );
        let a = cluster.add_node(NodeConfig::testbed("a", IoatConfig::disabled()));
        let b = cluster.add_node(NodeConfig::testbed("b", IoatConfig::full()));
        cluster.attach_fabric_host(a, 0);
        cluster.attach_fabric_host(b, 15);
        let (sa, sb) = cluster.open_on_fabric(a, 0, b, 15, SocketOpts::tuned());
        let got = Rc::new(RefCell::new(0u64));
        let g = Rc::clone(&got);
        sb.set_handler(move |_s, ev| {
            if let SocketEvent::Delivered(n) = ev {
                *g.borrow_mut() += n;
            }
        });
        sa.send(cluster.sim_mut(), 300_000);
        cluster.run();
        assert_eq!(*got.borrow(), 300_000);
        assert!(fabric.forwarded() > 0);
        cluster.run_audits();
        let reg = cluster.metrics();
        assert!(reg.counter("fabric.forwarded") > 0);
        assert_eq!(reg.counter("fabric.tail_drops"), 0);
    }

    #[test]
    fn connections_get_unique_ids() {
        let mut cluster = Cluster::new(1);
        let a = cluster.add_node(NodeConfig::testbed("a", IoatConfig::disabled()));
        let b = cluster.add_node(NodeConfig::testbed("b", IoatConfig::disabled()));
        let ports = cluster.connect_ports(a, b, 1, true);
        let (s1, _) = cluster.open(a, b, ports[0], SocketOpts::tuned());
        let (s2, _) = cluster.open(a, b, ports[0], SocketOpts::tuned());
        assert_ne!(s1.conn(), s2.conn());
    }
}
