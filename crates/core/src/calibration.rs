//! Calibration: every model constant, with its provenance.
//!
//! The simulator cannot reproduce the paper's absolute numbers (that would
//! require the authors' exact silicon); what it must reproduce is the
//! *shape* of every figure. The constants here are derived from three
//! sources:
//!
//! 1. **The paper's testbed description** (§4): dual-core dual 3.46 GHz
//!    Xeon (4 cores), 2 MB L2, Intel PRO/1000 adapters (six GigE ports),
//!    Linux 2.6 with the Intel I/OAT patch.
//! 2. **The paper's own measurements**: Fig. 6 pins the relative costs of
//!    cached copies, cold copies and DMA-engine copies (crossover ≈ 8 KB,
//!    overlap ≈ 93 % at 64 KB).
//! 3. **The TCP/IP processing studies the paper cites**: Clark et al.
//!    \[11], Makineni & Iyer \[15] and Regnier et al. \[16] put
//!    receive-side processing at a few microseconds per packet on this
//!    class of hardware, dominated by memory stalls.

use ioat_memsim::CacheConfig;
use ioat_netsim::StackParams;
use ioat_simcore::time::Bandwidth;
use ioat_simcore::SimDuration;

/// Cores per node on the paper's testbed (dual-socket, dual-core).
pub const TESTBED_CORES: usize = 4;

/// Number of GigE ports per node (three dual-port PRO/1000 adapters).
pub const TESTBED_PORTS: usize = 6;

/// Per-port line rate.
pub fn port_bandwidth() -> Bandwidth {
    Bandwidth::from_gbps(1)
}

/// One-way port-to-port latency through the Netgear GigE switch
/// (store-and-forward of a full frame plus fixed fabric delay; ~25 µs is
/// typical for this era of switch at 1500-byte frames).
pub fn switch_latency() -> SimDuration {
    SimDuration::from_micros(25)
}

/// The testbed's L2 cache (2 MB, 8-way, 64-byte lines).
pub fn testbed_cache() -> CacheConfig {
    CacheConfig::paper_l2()
}

/// The calibrated host-stack parameter set used by every experiment.
///
/// See [`StackParams`] for the meaning of each field; the defaults *are*
/// the calibrated values, so this is an alias kept for readability at call
/// sites.
pub fn testbed_params() -> StackParams {
    StackParams::default()
}

/// Cores per node on the 2026-class host profile (one mid-range server
/// socket's worth of cores given to network processing).
pub const MODERN_CORES: usize = 8;

/// A 2026-class node's last-level cache: 32 MB, 16-way, 64-byte lines.
pub fn modern_cache() -> CacheConfig {
    CacheConfig {
        capacity: 32 * 1024 * 1024,
        associativity: 16,
        line_size: 64,
    }
}

/// Hardware era a node is calibrated against — the host axis of the
/// modern-offload ablation (`repro abl-modern`).
///
/// [`NodeProfile::Testbed2007`] is the paper's machine and is the default
/// everywhere; every paper figure is pinned to it. [`NodeProfile::Modern2026`]
/// scales the per-packet software costs, copy bandwidth, DMA engine and
/// cache to a current-generation server so the ablation can ask whether
/// I/OAT's CPU advantage survives two decades of both hardware and stack
/// evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeProfile {
    /// The paper's testbed: 4 cores, 2 MB L2, 2007-era per-packet costs.
    #[default]
    Testbed2007,
    /// A 2026-class server: 8 cores, 32 MB LLC, ~3× cheaper per-packet
    /// software costs, DDR5 copy bandwidth, modern on-die DMA engine.
    Modern2026,
}

impl NodeProfile {
    /// Cores per node under this profile.
    pub fn cores(&self) -> usize {
        match self {
            NodeProfile::Testbed2007 => TESTBED_CORES,
            NodeProfile::Modern2026 => MODERN_CORES,
        }
    }

    /// Calibrated host-stack parameters under this profile.
    pub fn params(&self) -> StackParams {
        match self {
            NodeProfile::Testbed2007 => testbed_params(),
            NodeProfile::Modern2026 => StackParams::modern_2026(),
        }
    }

    /// Cache geometry under this profile.
    pub fn cache(&self) -> CacheConfig {
        match self {
            NodeProfile::Testbed2007 => testbed_cache(),
            NodeProfile::Modern2026 => modern_cache(),
        }
    }

    /// Short stable tag for dotted row IDs.
    pub fn tag(&self) -> &'static str {
        match self {
            NodeProfile::Testbed2007 => "2007",
            NodeProfile::Modern2026 => "2026",
        }
    }
}

/// Theoretical TCP goodput of one GigE port with standard frames:
/// 1460 / 1538 of the line rate ≈ 949 Mbps.
pub fn gige_goodput_mbps(mtu: u64) -> f64 {
    let mss = mtu - 40;
    let wire = mss + ioat_netsim::FRAME_OVERHEAD;
    1000.0 * mss as f64 / wire as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_bounds() {
        let std = gige_goodput_mbps(1500);
        assert!((948.0..951.0).contains(&std), "std goodput {std}");
        let jumbo = gige_goodput_mbps(2048);
        assert!(jumbo > std, "jumbo frames carry more payload per wire byte");
    }

    #[test]
    fn testbed_matches_paper() {
        assert_eq!(TESTBED_CORES, 4);
        assert_eq!(TESTBED_PORTS, 6);
        assert_eq!(testbed_cache().capacity, 2 * 1024 * 1024);
        assert_eq!(port_bandwidth().as_bps(), 1_000_000_000);
    }
}
