//! Calibration: every model constant, with its provenance.
//!
//! The simulator cannot reproduce the paper's absolute numbers (that would
//! require the authors' exact silicon); what it must reproduce is the
//! *shape* of every figure. The constants here are derived from three
//! sources:
//!
//! 1. **The paper's testbed description** (§4): dual-core dual 3.46 GHz
//!    Xeon (4 cores), 2 MB L2, Intel PRO/1000 adapters (six GigE ports),
//!    Linux 2.6 with the Intel I/OAT patch.
//! 2. **The paper's own measurements**: Fig. 6 pins the relative costs of
//!    cached copies, cold copies and DMA-engine copies (crossover ≈ 8 KB,
//!    overlap ≈ 93 % at 64 KB).
//! 3. **The TCP/IP processing studies the paper cites**: Clark et al.
//!    \[11], Makineni & Iyer \[15] and Regnier et al. \[16] put
//!    receive-side processing at a few microseconds per packet on this
//!    class of hardware, dominated by memory stalls.

use ioat_memsim::CacheConfig;
use ioat_netsim::StackParams;
use ioat_simcore::time::Bandwidth;
use ioat_simcore::SimDuration;

/// Cores per node on the paper's testbed (dual-socket, dual-core).
pub const TESTBED_CORES: usize = 4;

/// Number of GigE ports per node (three dual-port PRO/1000 adapters).
pub const TESTBED_PORTS: usize = 6;

/// Per-port line rate.
pub fn port_bandwidth() -> Bandwidth {
    Bandwidth::from_gbps(1)
}

/// One-way port-to-port latency through the Netgear GigE switch
/// (store-and-forward of a full frame plus fixed fabric delay; ~25 µs is
/// typical for this era of switch at 1500-byte frames).
pub fn switch_latency() -> SimDuration {
    SimDuration::from_micros(25)
}

/// The testbed's L2 cache (2 MB, 8-way, 64-byte lines).
pub fn testbed_cache() -> CacheConfig {
    CacheConfig::paper_l2()
}

/// The calibrated host-stack parameter set used by every experiment.
///
/// See [`StackParams`] for the meaning of each field; the defaults *are*
/// the calibrated values, so this is an alias kept for readability at call
/// sites.
pub fn testbed_params() -> StackParams {
    StackParams::default()
}

/// Theoretical TCP goodput of one GigE port with standard frames:
/// 1460 / 1538 of the line rate ≈ 949 Mbps.
pub fn gige_goodput_mbps(mtu: u64) -> f64 {
    let mss = mtu - 40;
    let wire = mss + ioat_netsim::FRAME_OVERHEAD;
    1000.0 * mss as f64 / wire as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_bounds() {
        let std = gige_goodput_mbps(1500);
        assert!((948.0..951.0).contains(&std), "std goodput {std}");
        let jumbo = gige_goodput_mbps(2048);
        assert!(jumbo > std, "jumbo frames carry more payload per wire byte");
    }

    #[test]
    fn testbed_matches_paper() {
        assert_eq!(TESTBED_CORES, 4);
        assert_eq!(TESTBED_PORTS, 6);
        assert_eq!(testbed_cache().capacity, 2 * 1024 * 1024);
        assert_eq!(port_bandwidth().as_bps(), 1_000_000_000);
    }
}
