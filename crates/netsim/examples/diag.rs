//! Diagnostic: where does receiver CPU time go, I/OAT vs non-I/OAT?

use ioat_netsim::config::{IoatConfig, SocketOpts, StackParams};
use ioat_netsim::stack::{self, HostStack};
use ioat_netsim::tcp::ConnId;
use ioat_simcore::time::Bandwidth;
use ioat_simcore::{Sim, SimDuration, SimTime};

fn run(ioat: IoatConfig) {
    let mut sim = Sim::new();
    sim.set_event_limit(50_000_000);
    let a = HostStack::new("a", 4, StackParams::default(), ioat);
    let b = HostStack::new("b", 4, StackParams::default(), ioat);
    let opts = SocketOpts::tuned();
    let (pa, pb) = wirepair(&a, &b, opts.coalescing);
    let conn = stack::open_connection(&a, &b, pa, pb, opts, ConnId(1));
    stack::app_send(&a, &mut sim, conn, 20_000_000);
    let end = sim.run();
    let bs = b.borrow();
    let stats = bs.stats();
    println!("== {} ==", ioat.label());
    println!("  end            : {}", end);
    println!("  events         : {}", sim.events_executed());
    println!(
        "  rx util        : {:.4}",
        bs.cpu_utilization(SimTime::ZERO, end)
    );
    for (i, core) in bs.cores().members().iter().enumerate() {
        let u = core
            .borrow()
            .meter()
            .utilization_between(SimTime::ZERO, end);
        println!("  core{i} util     : {u:.4}");
    }
    println!(
        "  interrupts {} frames {} deliveries {} (dma {}) acks {}",
        stats.interrupts,
        stats.frames_processed,
        stats.deliveries,
        stats.dma_deliveries,
        stats.acks
    );
    let cache = bs.cache().borrow();
    println!(
        "  cache: hits {} misses {} hit_rate {:.3}",
        cache.stats().hits,
        cache.stats().misses,
        cache.stats().hit_rate()
    );
    if let Some(dma) = bs.dma() {
        let d = dma.borrow();
        println!(
            "  dma: reqs {} bytes {} busy {}",
            d.stats().requests,
            d.stats().bytes,
            d.channel().borrow().meter().total_busy()
        );
    }
    // Sender-side util too.
    let asb = a.borrow();
    println!(
        "  tx util        : {:.4}",
        asb.cpu_utilization(SimTime::ZERO, end)
    );
}

fn wirepair(a: &stack::StackRef, b: &stack::StackRef, coalescing: bool) -> (usize, usize) {
    stack::wire(
        a,
        b,
        Bandwidth::from_gbps(1),
        SimDuration::from_micros(15),
        coalescing,
    )
}

fn main() {
    run(IoatConfig::disabled());
    run(IoatConfig::dma_only());
    run(IoatConfig::full());
}
