//! The host kernel network path — where the paper's receive-side costs
//! live.
//!
//! A [`HostStack`] owns a node's cores, cache, DMA engine, NIC ports and
//! connections, and charges every step of packet processing to the right
//! resource:
//!
//! * **Sender path** (`app_send` → `pump`): syscall, user→kernel copy
//!   (skipped with `sendfile`), segmentation (per-MSS on the CPU, or
//!   per-chunk with TSO), then frames serialize onto the port's link.
//! * **Receiver path** (`frame_arrived` → interrupt → protocol →
//!   delivery): the NIC DMAs frames into the kernel buffer for free; the
//!   interrupt handler pays per-interrupt and per-frame costs plus
//!   cache-dependent accesses to connection state and headers (the
//!   split-header feature keeps header accesses in a small hot ring and
//!   keeps payload lines out of the cache entirely); the kernel→user copy
//!   is either a CPU `memcpy` through the cache or an asynchronous DMA
//!   engine copy that leaves the CPU free.
//! * **ACKs**: cumulative, generated per interrupt batch and after
//!   deliveries (window updates), charged to the sender's interrupt core.
//!   ACK frames travel at link latency but are not serialized on the
//!   reverse link — a documented simplification (≈ 3 % of reverse
//!   bandwidth at full rate).
//! * **Faults** (off by default): a `FaultInjector` attached via
//!   [`HostStack::set_fault_injector`] can drop frames at egress (the
//!   dropped frame still occupies the wire; the receiver just never sees
//!   it), overflow a bounded rx ring before the interrupt fires, or take
//!   the DMA engine down so deliveries fall back to the CPU copy. The
//!   receiver then sees gaps — it discards out-of-order frames and emits
//!   duplicate ACKs (go-back-N) — and the sender recovers by fast
//!   retransmit or RTO, re-charging retransmitted bytes through the
//!   exact same receive-path cost model. With the default inert injector
//!   none of this code draws RNG or schedules timers, so fault-free runs
//!   stay bit-identical to the pre-fault simulator. ACK loss is not
//!   modeled: ACKs always arrive, so the window cannot deadlock and the
//!   RTO only covers lost data frames.

use crate::config::{IoatConfig, RxMode, SocketOpts, StackParams};
use crate::link::Link;
use crate::nic::{CoalesceAction, Frame, RxCoalescer};
use crate::socket::SocketEvent;
use crate::tcp::{ConnId, FrameClass, RecvState, SendState};
use ioat_faults::FaultInjector;
use ioat_memsim::dma::CacheRef;
use ioat_memsim::{
    AddressAllocator, Buffer, Cache, CacheConfig, CpuCopier, DmaEngine, DmaEngineRef, DmaRequest,
};
use ioat_simcore::resource::ResourcePool;
use ioat_simcore::{stable_mix, FastHashMap, RateMeter, Sim, SimDuration, SimTime};
use ioat_telemetry::{Category, Tracer, TrackId};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle to a [`HostStack`].
pub type StackRef = Rc<RefCell<HostStack>>;

/// A routed alternative to direct port-to-port wiring: a switch fabric (or
/// any other forwarding element) that accepts frames and ACKs at an
/// attachment point and delivers them to their destination itself.
///
/// A port attached to a router (see [`attach_router`]) serializes each
/// departing frame on its access link exactly like a wired port, but the
/// delivery callback hands the frame to [`FrameRouter::frame_ingress`]
/// instead of the peer's `frame_arrived` — the router then owns hop-by-hop
/// forwarding, buffering and drops. ACKs keep netsim's latency-only
/// simplification: they bypass serialization and buffers and go straight to
/// [`FrameRouter::ack_ingress`], which must deliver them after the
/// topology's reverse-path latency (ACK loss stays unmodeled, so windows
/// cannot deadlock).
///
/// Methods take `self: Rc<Self>` so implementations can re-capture
/// themselves in scheduled continuations without a `&self` lifetime.
pub trait FrameRouter {
    /// A data frame from attachment point `src` has finished serializing on
    /// its access link and enters the fabric.
    fn frame_ingress(self: Rc<Self>, sim: &mut Sim, src: usize, frame: Frame);
    /// An ACK (cumulative `seq`, advertised `window`, `dup` duplicate-ACK
    /// signals) leaves attachment point `src` toward the connection's other
    /// endpoint.
    fn ack_ingress(
        self: Rc<Self>,
        sim: &mut Sim,
        src: usize,
        conn: ConnId,
        seq: u64,
        window: u64,
        dup: u32,
    );
    /// How frames leave a port attached to this router; see [`EgressMode`].
    /// The default keeps every existing router on the in-queue path.
    fn egress_mode(&self) -> EgressMode {
        EgressMode::Deliver
    }
    /// A frame from attachment `src` finished serializing at
    /// `arrive - access latency` and would enter the fabric at `arrive`.
    /// Called synchronously (no event is scheduled) — only when
    /// [`FrameRouter::egress_mode`] returns [`EgressMode::Handoff`]; the
    /// implementation stages the frame for its owning partition.
    fn frame_departed(
        self: Rc<Self>,
        _sim: &mut Sim,
        _src: usize,
        _frame: Frame,
        _arrive: SimTime,
    ) {
        unreachable!("frame_departed requires EgressMode::Handoff");
    }
}

/// How a router-attached port moves departing frames into the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressMode {
    /// The fabric shares this simulation: schedule
    /// [`FrameRouter::frame_ingress`] at the frame's arrival instant.
    Deliver,
    /// The fabric lives in another partition of a parallel run: serialize
    /// on the access link (identical busy accounting, no delivery event)
    /// and hand the frame to [`FrameRouter::frame_departed`] for
    /// cross-partition staging at the window barrier.
    Handoff,
}

type Handler = Rc<RefCell<dyn FnMut(&mut Sim, SocketEvent)>>;

/// Salt folded into the RSS steering hash so queue placement is not
/// correlated with the application's own uses of the connection id.
const RSS_SALT: u64 = 0x1D0A_75EE_D5A1_7A8C;

/// One hardware receive queue: its own interrupt moderation state and its
/// own pending ring. A single-queue port is the 2007 model; with
/// `multi_queue` the NIC exposes one queue per core and RSS-steers flows
/// onto them by a seed-stable hash of the connection id.
struct RxQueue {
    coalescer: RxCoalescer,
    pending: Vec<Frame>,
}

struct Port {
    tx: Link,
    peer: Option<StackRef>,
    peer_port: usize,
    /// Routed alternative to `peer`: the fabric this port attaches to and
    /// the attachment index the fabric knows this port by.
    router: Option<(Rc<dyn FrameRouter>, usize)>,
    queues: Vec<RxQueue>,
}

impl Port {
    fn pending_total(&self) -> u64 {
        self.queues.iter().map(|q| q.pending.len() as u64).sum()
    }
}

struct Conn {
    send: SendState,
    recv: RecvState,
    handler: Option<Handler>,
    delivered: RateMeter,
}

/// Running stack-level statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackStats {
    /// Frames that completed protocol processing.
    pub frames_processed: u64,
    /// Interrupts taken.
    pub interrupts: u64,
    /// Kernel→user deliveries completed.
    pub deliveries: u64,
    /// Deliveries that used the DMA engine.
    pub dma_deliveries: u64,
    /// ACKs processed on the send side.
    pub acks: u64,
    /// Frames that paid the backlog-pressure stall.
    pub stalled_frames: u64,
    /// Peak undelivered backlog observed (bytes).
    pub peak_backlog: u64,
    /// Frames dropped at egress by the fault injector's loss model.
    pub frames_dropped: u64,
    /// Frames dropped at ingress because the bounded rx ring overflowed.
    pub rx_ring_drops: u64,
    /// Frames discarded by the receiver because a predecessor was lost.
    pub ooo_frames: u64,
    /// Retransmission rounds (fast retransmit + RTO triggers).
    pub retransmits: u64,
    /// Bytes rewound for retransmission.
    pub retransmitted_bytes: u64,
    /// Retransmission-timer expiries that triggered recovery.
    pub rto_timeouts: u64,
    /// Deliveries forced onto the CPU copy path by a DMA-down window.
    pub dma_fallbacks: u64,
    /// Frames this stack put on the wire (including ones the loss model
    /// drops — the NIC still transmitted them). Feeds the cluster-level
    /// frame-conservation audit.
    pub frames_sent: u64,
    /// Frames that reached this stack's NIC and were accepted into a port's
    /// pending ring (ring-overflow drops excluded). At any event boundary
    /// `frames_arrived == frames_processed + Σ pending_frames.len()`.
    pub frames_arrived: u64,
    /// Largest peer-advertised window observed at a send. Bounds any single
    /// go-back-N rewind (`in_flight` never exceeds it), so
    /// `retransmitted_bytes ≤ retransmits × peak_window` is an exact
    /// invariant, not a heuristic.
    pub peak_window: u64,
}

/// A simulated host: cores, cache, optional DMA engine, NIC ports and the
/// kernel network path connecting them.
pub struct HostStack {
    name: String,
    params: StackParams,
    ioat: IoatConfig,
    cores: ResourcePool,
    cache: CacheRef,
    copier: CpuCopier,
    dma: Option<DmaEngineRef>,
    alloc: AddressAllocator,
    header_ring: Buffer,
    header_seq: u64,
    ports: Vec<Port>,
    conns: FastHashMap<ConnId, Conn>,
    /// Connections with undelivered data or a copy in flight — a proxy
    /// for the node's runnable receive threads.
    active_rx: usize,
    /// Total undelivered (DMA'd but not yet copied to user) bytes across
    /// all connections — the backlog that competes with hot state for the
    /// L2.
    queued_bytes: u64,
    rx_meter: RateMeter,
    tx_meter: RateMeter,
    stats: StackStats,
    tracer: Tracer,
    node_id: u32,
    faults: FaultInjector,
}

impl std::fmt::Debug for HostStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostStack")
            .field("name", &self.name)
            .field("ioat", &self.ioat)
            .field("ports", &self.ports.len())
            .field("conns", &self.conns.len())
            .finish()
    }
}

impl HostStack {
    /// Creates a node with `cores` CPU cores, the paper's L2 geometry and
    /// the given feature configuration.
    pub fn new(name: &str, cores: usize, params: StackParams, ioat: IoatConfig) -> StackRef {
        Self::with_cache(name, cores, params, ioat, CacheConfig::paper_l2())
    }

    /// Creates a node with an explicit cache geometry.
    pub fn with_cache(
        name: &str,
        cores: usize,
        params: StackParams,
        ioat: IoatConfig,
        cache_cfg: CacheConfig,
    ) -> StackRef {
        assert!(
            cores > 0,
            "host stack '{name}' configured with zero cores — nothing could run the kernel path"
        );
        let cache: CacheRef = Rc::new(RefCell::new(Cache::new(cache_cfg)));
        let dma = ioat
            .dma_engine
            .then(|| DmaEngine::new_ref(params.dma, Some(Rc::clone(&cache))));
        let mut alloc = AddressAllocator::new();
        let header_ring = alloc.alloc(params.header_ring_bytes);
        Rc::new(RefCell::new(HostStack {
            name: name.to_string(),
            params,
            ioat,
            cores: ResourcePool::new(&format!("{name}-core"), cores),
            cache,
            copier: CpuCopier::new(params.copy),
            dma,
            alloc,
            header_ring,
            header_seq: 0,
            ports: Vec::new(),
            conns: FastHashMap::default(),
            active_rx: 0,
            queued_bytes: 0,
            rx_meter: RateMeter::new(),
            tx_meter: RateMeter::new(),
            stats: StackStats::default(),
            tracer: Tracer::disabled(),
            node_id: 0,
            faults: FaultInjector::inert(),
        }))
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature configuration.
    pub fn ioat(&self) -> IoatConfig {
        self.ioat
    }

    /// Stack cost parameters.
    pub fn params(&self) -> &StackParams {
        &self.params
    }

    /// The node's core pool (for utilization queries).
    pub fn cores(&self) -> &ResourcePool {
        &self.cores
    }

    /// The node's cache (shared with the DMA engine).
    pub fn cache(&self) -> &CacheRef {
        &self.cache
    }

    /// The DMA engine, if the `dma_engine` feature is on.
    pub fn dma(&self) -> Option<&DmaEngineRef> {
        self.dma.as_ref()
    }

    /// The node id this stack's trace tracks are attributed to (0 until
    /// [`HostStack::set_tracer`] assigns one).
    pub fn node_id(&self) -> u32 {
        self.node_id
    }

    /// Running statistics.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Runs the stack's conservation audits.
    ///
    /// Every identity checked here is exact at any event boundary — none
    /// depends on the run being drained — so the method is safe to call
    /// mid-run as well as at window close. Failures route through
    /// [`ioat_guard::check`]: collected as structured violations inside an
    /// audit scope, a panic in debug builds otherwise, silent in release
    /// builds without `--audit`.
    pub fn audit(&self, now: SimTime) {
        let component = format!("netsim/{}", self.name);
        let queued: u64 = self.conns.values().map(|c| c.recv.queued()).sum();
        ioat_guard::check(
            &component,
            "backlog bytes = Σ per-conn undelivered",
            now,
            self.queued_bytes == queued,
            || {
                format!(
                    "cached queued_bytes={} but Σ recv.queued()={queued}",
                    self.queued_bytes
                )
            },
        );
        let delivered: u64 = self.conns.values().map(|c| c.recv.delivered_seq).sum();
        ioat_guard::check(
            &component,
            "delivered bytes = Σ per-conn delivered_seq",
            now,
            self.rx_meter.total_bytes() == delivered,
            || {
                format!(
                    "rx meter recorded {} B but Σ recv.delivered_seq={delivered} B",
                    self.rx_meter.total_bytes()
                )
            },
        );
        let pending: u64 = self.ports.iter().map(|p| p.pending_total()).sum();
        ioat_guard::check(
            &component,
            "frame conservation: arrived = processed + pending",
            now,
            self.stats.frames_arrived == self.stats.frames_processed + pending,
            || {
                format!(
                    "frames_arrived={} but frames_processed={} + pending={pending}",
                    self.stats.frames_arrived, self.stats.frames_processed
                )
            },
        );
        let copying = self.conns.values().filter(|c| c.recv.copying).count() as u64;
        ioat_guard::check(
            &component,
            "DMA deliveries ≤ completed deliveries + copies in flight",
            now,
            self.stats.dma_deliveries <= self.stats.deliveries + copying,
            || {
                format!(
                    "dma_deliveries={} but deliveries={} with {copying} copies in flight",
                    self.stats.dma_deliveries, self.stats.deliveries
                )
            },
        );
        // Each retransmission round rewinds exactly `in_flight` bytes, and
        // in-flight never exceeds the largest window the peer advertised
        // at a send — the paper's conservation argument for Fig. 6's loss
        // sensitivity rests on retransmitted traffic being window-bounded.
        let bound = self.stats.retransmits * self.stats.peak_window;
        ioat_guard::check(
            &component,
            "retransmitted bytes ≤ retransmits × peak window",
            now,
            self.stats.retransmitted_bytes <= bound,
            || {
                format!(
                    "retransmitted_bytes={} exceeds {} rounds × peak_window={}",
                    self.stats.retransmitted_bytes, self.stats.retransmits, self.stats.peak_window
                )
            },
        );
        if let Some(engine) = &self.dma {
            engine.borrow().audit(&component, now);
        }
    }

    /// Attaches a tracer. `node_id` becomes the Chrome-trace pid; each
    /// core gets a named track and the DMA channel (when present) shows up
    /// as a pseudo-core one past the core count. Spans are recorded
    /// retroactively from already-computed costs, so enabling tracing
    /// cannot change simulated behavior.
    pub fn set_tracer(&mut self, tracer: Tracer, node_id: u32) {
        tracer.set_process_name(node_id, &self.name);
        for i in 0..self.cores.len() {
            tracer.set_track_name(TrackId::new(node_id, i as u32), &format!("core{i}"));
        }
        if let Some(dma) = &self.dma {
            let track = TrackId::new(node_id, self.cores.len() as u32);
            tracer.set_track_name(track, "dma-chan");
            dma.borrow_mut().set_tracer(tracer.clone(), track);
        }
        self.tracer = tracer;
        self.node_id = node_id;
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches a fault injector. The default is [`FaultInjector::inert`],
    /// under which every fault hook is a no-op: no RNG draws, no timers,
    /// bit-identical runs.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// The attached fault injector (inert by default).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Marks a fault-recovery event on this node's fault track.
    fn fault_instant(&self, name: &'static str, at: SimTime) {
        self.tracer
            .instant(name, Category::Fault, TrackId::new(self.node_id, 0), at);
    }

    fn track(&self, core: usize) -> TrackId {
        TrackId::new(self.node_id, core as u32)
    }

    /// Application-level received-byte meter (goodput).
    pub fn rx_meter(&self) -> &RateMeter {
        &self.rx_meter
    }

    /// Transmitted-payload meter.
    pub fn tx_meter(&self) -> &RateMeter {
        &self.tx_meter
    }

    /// Starts the measurement window on all meters (utilization queries
    /// take the window explicitly, so only byte meters need this).
    pub fn begin_measurement(&mut self, at: SimTime) {
        self.rx_meter.begin_window(at);
        self.tx_meter.begin_window(at);
        for conn in self.conns.values_mut() {
            conn.delivered.begin_window(at);
        }
    }

    /// Overall CPU utilization across the node's cores in `[from, to)` —
    /// the paper's headline metric.
    pub fn cpu_utilization(&self, from: SimTime, to: SimTime) -> f64 {
        self.cores.utilization_between(from, to)
    }

    /// CPU *occupancy* across the node's cores in `[from, to)`:
    /// utilization plus the spin cycles a polling receive mode burns on
    /// its receive cores. A busy-polling core reads as mostly idle on the
    /// utilization meter (spinning does no work), but its idle cycles are
    /// not reclaimable — the poll loop owns them — so each core that
    /// services a receive queue under a polling mode counts as occupied
    /// for the whole window. Under a non-polling mode this equals
    /// [`Self::cpu_utilization`]. The gap between the two, times the core
    /// count, is the number of cores an operator could reclaim by
    /// switching the node off busy-polling (see DESIGN.md §13).
    pub fn cpu_occupancy(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.cores.len() == 0 || !self.ioat.rx_mode.is_polling() {
            return self.cpu_utilization(from, to);
        }
        let mut spinning = vec![false; self.cores.len()];
        for port in &self.ports {
            for q in 0..port.queues.len() {
                spinning[self.rx_core_for(q)] = true;
            }
        }
        let window = to - from;
        let mut busy = SimDuration::ZERO;
        for (core, &spin) in self.cores.members().iter().zip(&spinning) {
            busy += if spin {
                window
            } else {
                core.borrow().meter().busy_between(from, to)
            };
        }
        busy.as_secs_f64() / (window.as_secs_f64() * self.cores.len() as f64)
    }

    /// Bytes delivered to applications on this node during the window.
    pub fn delivered_bytes(&self) -> u64 {
        self.rx_meter.window_bytes()
    }

    /// Per-connection delivered throughput in Mbps over the window ending
    /// at `now`.
    pub fn conn_mbps(&self, conn: ConnId, now: SimTime) -> f64 {
        self.conns.get(&conn).map_or(0.0, |c| c.delivered.mbps(now))
    }

    /// Adds a NIC port transmitting over `tx`; returns the port index.
    /// `coalescing` enables the hardware interrupt-coalescing feature on
    /// the port's receive side — under [`RxMode::Interrupt`] only; the
    /// other modes fix their own notification strategy. With `multi_queue`
    /// the port exposes one receive queue per core, each with independent
    /// interrupt moderation.
    pub fn add_port(&mut self, tx: Link, coalescing: bool) -> usize {
        let p = &self.params;
        let n_queues = if self.ioat.multi_queue {
            self.cores.len()
        } else {
            1
        };
        let queues = (0..n_queues)
            .map(|_| RxQueue {
                coalescer: match self.ioat.rx_mode {
                    RxMode::Interrupt => {
                        RxCoalescer::new(coalescing, p.coalesce_max_frames, p.coalesce_delay)
                    }
                    RxMode::Coalesced => {
                        RxCoalescer::new(true, p.coalesce_max_frames, p.coalesce_delay)
                    }
                    RxMode::BusyPoll | RxMode::ZeroCopy => RxCoalescer::polling(),
                },
                pending: Vec::new(),
            })
            .collect();
        self.ports.push(Port {
            tx,
            peer: None,
            peer_port: 0,
            router: None,
            queues,
        });
        self.ports.len() - 1
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// RSS flow steering: the receive queue on `port` that `conn`'s frames
    /// land in. Seed-stable — a pure function of the connection id, never
    /// of arrival interleaving — so partitioned and multi-threaded runs
    /// steer identically.
    fn rx_queue_for(&self, port: usize, conn: ConnId) -> usize {
        let n = self.ports[port].queues.len();
        if n == 1 {
            0
        } else {
            (stable_mix(conn.0 ^ RSS_SALT) % n as u64) as usize
        }
    }

    /// The core that services receive queue `queue` (queues map 1:1 onto
    /// cores; a single-queue port is serviced by core 0, the 2007 model).
    fn rx_core_for(&self, queue: usize) -> usize {
        queue % self.cores.len()
    }

    /// The core the application thread serving `conn` is affine to.
    /// Threads are distributed round-robin, like a multi-threaded server
    /// pinning one worker per connection.
    fn app_core_for(&self, conn: ConnId) -> usize {
        (conn.0 as usize) % self.cores.len()
    }

    /// Thread wake cost including scheduler contention: each runnable
    /// receive thread beyond the core count adds a fraction of the base
    /// cost (longer run queues, context-switch cache damage).
    fn wake_cost(&self) -> SimDuration {
        let excess = self.active_rx.saturating_sub(self.cores.len());
        self.params
            .wake
            .mul_f64(1.0 + self.params.sched_contention * excess as f64)
    }

    /// A receive thread is runnable when undelivered bytes exist beyond
    /// the copy already in flight — a thread blocked waiting for the DMA
    /// engine is *not* on the run queue.
    fn conn_rx_active(c: &Conn) -> bool {
        c.recv.queued() > c.recv.copying_bytes
    }

    fn header_access_cost(&mut self, frame: &Frame, rcv_kernel_buf: Buffer) -> SimDuration {
        let p = self.params;
        let mut cache = self.cache.borrow_mut();
        // The NIC's DMA write invalidated the header lines in both modes,
        // so the first access is a miss either way; split headers confine
        // that miss to a tiny dedicated ring instead of dragging
        // payload-region lines into the cache. Kernel-bypass receive gets
        // the same confinement from its compact descriptor ring: payload
        // goes straight to user buffers the protocol path never touches.
        if self.ioat.split_header || self.ioat.rx_mode == RxMode::ZeroCopy {
            // Headers land in the small dedicated ring; the NIC write
            // invalidated the lines, so the access misses, but it is
            // confined and independent of any payload backlog.
            let off =
                RecvState::ring_offset(self.header_seq, self.header_ring.len(), p.header_bytes);
            self.header_seq += p.header_bytes;
            let slice = self.header_ring.slice(off, p.header_bytes);
            cache.invalidate_range(slice);
            let out = cache.access_range(slice);
            p.line_hit * out.hit_lines + p.line_miss * out.miss_lines
        } else {
            // The header sits at the front of the frame's landing slice in
            // the big cycling kernel buffer — a miss that also drags
            // payload-bearing lines into the cache. When the undelivered
            // backlog overflows the L2's headroom, the handler's walk over
            // interleaved header/payload skb chains turns into dependent
            // memory stalls (`pollution_stall_per_frame`); split-header
            // placement is immune to this (Fig. 7b).
            let len = p.header_bytes.min(frame.payload.max(1));
            let off =
                RecvState::ring_offset(frame.seq_end, rcv_kernel_buf.len(), frame.payload.max(len));
            let out = cache.access_range(rcv_kernel_buf.slice(off, len));
            let mut cost = p.line_hit * out.hit_lines + p.line_miss * out.miss_lines;
            // Effective L2 headroom for backlog is a fraction of the
            // cache; the stall ramps in past ~10 % occupancy and
            // saturates at ~40 %.
            let cap = cache.config().capacity as f64;
            let pressure = ((self.queued_bytes as f64 - 0.10 * cap) / (0.30 * cap)).clamp(0.0, 1.0);
            if pressure > 0.0 {
                self.stats.stalled_frames += 1;
                cost += p.pollution_stall_per_frame.mul_f64(pressure);
            }
            cost
        }
    }

    fn state_access_cost(&mut self, state_buf: Buffer) -> SimDuration {
        let p = self.params;
        let out = self.cache.borrow_mut().access_range(state_buf);
        p.line_hit * out.hit_lines + p.line_miss * out.miss_lines
    }
}

// ---------------------------------------------------------------------------
// Wiring and connection management (free associated functions on StackRef).
// ---------------------------------------------------------------------------

/// Connects one port on `a` to one port on `b` with a symmetric duplex
/// link. Returns `(port_on_a, port_on_b)`.
pub fn wire(
    a: &StackRef,
    b: &StackRef,
    bandwidth: ioat_simcore::time::Bandwidth,
    latency: SimDuration,
    coalescing: bool,
) -> (usize, usize) {
    let name_a = a.borrow().name.clone();
    let name_b = b.borrow().name.clone();
    let link_ab = Link::new(&format!("{name_a}->{name_b}"), bandwidth, latency);
    let link_ba = Link::new(&format!("{name_b}->{name_a}"), bandwidth, latency);
    let ai = a.borrow_mut().add_port(link_ab, coalescing);
    let bi = b.borrow_mut().add_port(link_ba, coalescing);
    {
        let mut sa = a.borrow_mut();
        sa.ports[ai].peer = Some(Rc::clone(b));
        sa.ports[ai].peer_port = bi;
    }
    {
        let mut sb = b.borrow_mut();
        sb.ports[bi].peer = Some(Rc::clone(a));
        sb.ports[bi].peer_port = ai;
    }
    (ai, bi)
}

/// Adds a port on `s` attached to a [`FrameRouter`] instead of a direct
/// peer. `tx` is the host's access link into the fabric (frames serialize
/// on it before `frame_ingress`); `attachment` is the index the router
/// knows this port by. Returns the port index.
pub fn attach_router(
    s: &StackRef,
    tx: Link,
    coalescing: bool,
    router: Rc<dyn FrameRouter>,
    attachment: usize,
) -> usize {
    let mut st = s.borrow_mut();
    let idx = st.add_port(tx, coalescing);
    st.ports[idx].router = Some((router, attachment));
    idx
}

/// Opens a full-duplex connection between ports `port_a` on `a` and
/// `port_b` on `b`, with the same socket options at both ends. The ports
/// must either be wired directly to each other or both be attached to a
/// router (the router is responsible for delivering between them).
///
/// # Panics
///
/// Panics if the ports are neither wired to each other nor both
/// router-attached, or if the options are inconsistent (e.g. `read_size`
/// larger than `rcvbuf`).
pub fn open_connection(
    a: &StackRef,
    b: &StackRef,
    port_a: usize,
    port_b: usize,
    opts: SocketOpts,
    id: ConnId,
) -> ConnId {
    assert!(
        opts.read_size <= opts.rcvbuf,
        "read_size must fit in the receive buffer"
    );
    assert!(
        opts.mss() <= opts.rcvbuf,
        "MSS must fit in the receive buffer"
    );
    {
        let sa = a.borrow();
        let port = &sa.ports[port_a];
        let wired =
            port.peer.as_ref().is_some_and(|p| Rc::ptr_eq(p, b)) && port.peer_port == port_b;
        let routed = port.router.is_some() && b.borrow().ports[port_b].router.is_some();
        assert!(
            wired || routed,
            "ports are neither wired to each other nor both router-attached"
        );
    }
    install_endpoint(a, port_a, opts, id);
    install_endpoint(b, port_b, opts, id);
    id
}

fn install_endpoint(s: &StackRef, port: usize, opts: SocketOpts, id: ConnId) {
    let mut st = s.borrow_mut();
    assert!(
        !st.conns.contains_key(&id),
        "connection {id} already exists on {}",
        st.name
    );
    let snd_user = st.alloc.alloc(opts.sndbuf);
    let snd_kern = st.alloc.alloc(opts.sndbuf);
    let rcv_kern = st.alloc.alloc(opts.rcvbuf);
    let rcv_user = st.alloc.alloc(opts.rcvbuf);
    let state_len = st.params.conn_state_bytes;
    let state = st.alloc.alloc(state_len);
    let rto_initial = st.params.rto_initial;
    st.conns.insert(
        id,
        Conn {
            send: SendState {
                opts,
                port,
                pending: 0,
                next_seq: 0,
                acked_seq: 0,
                peer_window: opts.rcvbuf,
                user_buf: snd_user,
                kernel_buf: snd_kern,
                waiting_for_drain: false,
                dup_acks: 0,
                in_recovery: false,
                rto_armed: false,
                rto_current: rto_initial,
            },
            recv: RecvState {
                opts,
                received_seq: 0,
                delivered_seq: 0,
                copying: false,
                copying_bytes: 0,
                kernel_buf: rcv_kern,
                user_buf: rcv_user,
                state_buf: state,
                recv_credits: None,
            },
            handler: None,
            delivered: RateMeter::new(),
        },
    );
}

/// Installs the application event handler for `conn` on stack `s`.
pub fn set_handler<F>(s: &StackRef, conn: ConnId, handler: F)
where
    F: FnMut(&mut Sim, SocketEvent) + 'static,
{
    let mut st = s.borrow_mut();
    let c = st.conns.get_mut(&conn).expect("unknown connection");
    c.handler = Some(Rc::new(RefCell::new(handler)));
}

/// Switches `conn` from the default tight-receive-loop mode to explicit
/// read posting with `credits` outstanding reads.
pub fn set_recv_credits(s: &StackRef, conn: ConnId, credits: u64) {
    let mut st = s.borrow_mut();
    let c = st.conns.get_mut(&conn).expect("unknown connection");
    c.recv.recv_credits = Some(credits);
}

/// Posts one more read on `conn` (the application finished processing and
/// called `recv()` again); kicks delivery if data is waiting.
pub fn add_recv_credit(s: &StackRef, sim: &mut Sim, conn: ConnId) {
    {
        let mut st = s.borrow_mut();
        let c = st.conns.get_mut(&conn).expect("unknown connection");
        match &mut c.recv.recv_credits {
            None => {}
            Some(n) => *n += 1,
        }
    }
    try_deliver(s, sim, conn);
}

/// Charges `duration` of application compute to the least-loaded core
/// (the scheduler migrates runnable threads), then runs `then`. Models
/// per-message application processing (validation, transformation, script
/// execution).
pub fn app_compute<F>(s: &StackRef, sim: &mut Sim, conn: ConnId, duration: SimDuration, then: F)
where
    F: FnOnce(&mut Sim) + 'static,
{
    let _ = conn;
    let (core, tracer, track) = {
        let st = s.borrow();
        let idx = st.cores.least_loaded_index(sim.now());
        (
            Rc::clone(st.cores.member(idx)),
            st.tracer.clone(),
            st.track(idx),
        )
    };
    let end = core.borrow_mut().run_job(sim, duration, then);
    tracer.span("app_compute", Category::App, track, end - duration, end);
}

fn emit(s: &StackRef, sim: &mut Sim, conn: ConnId, ev: SocketEvent) {
    let h = s.borrow().conns.get(&conn).and_then(|c| c.handler.clone());
    if let Some(h) = h {
        (h.borrow_mut())(sim, ev);
    }
}

// ---------------------------------------------------------------------------
// Sender path.
// ---------------------------------------------------------------------------

/// Queues `bytes` for transmission on `conn` from the application.
///
/// The caller is notified with [`SocketEvent::SendReady`] when everything
/// queued so far has been sent *and acknowledged*.
pub fn app_send(s: &StackRef, sim: &mut Sim, conn: ConnId, bytes: u64) {
    if bytes == 0 {
        return;
    }
    {
        let mut st = s.borrow_mut();
        let c = st.conns.get_mut(&conn).expect("unknown connection");
        c.send.waiting_for_drain = true;
    }
    send_chunk(s, sim, conn, bytes);
}

/// Processes one `send()`-sized chunk: charges the CPU costs, enqueues the
/// bytes, pumps the window, then schedules the next chunk.
fn send_chunk(s: &StackRef, sim: &mut Sim, conn: ConnId, remaining: u64) {
    let (core, cost, chunk, copy_cost, tracer, track) = {
        let st = s.borrow_mut();
        let p = st.params;
        let (opts, user_buf, kernel_buf, seq) = {
            let c = st.conns.get(&conn).expect("unknown connection");
            (
                c.send.opts,
                c.send.user_buf,
                c.send.kernel_buf,
                c.send.next_seq + c.send.pending,
            )
        };
        let chunk = remaining.min(p.tso_chunk).min(opts.sndbuf);
        let mut cost = p.syscall;
        let mut copy_cost = SimDuration::ZERO;
        if !opts.sendfile {
            // User→kernel copy through this node's cache.
            let off_u = RecvState::ring_offset(seq, user_buf.len(), chunk);
            let off_k = RecvState::ring_offset(seq, kernel_buf.len(), chunk);
            let copier = st.copier;
            let cache = Rc::clone(&st.cache);
            let out = copier.copy(
                &mut cache.borrow_mut(),
                user_buf.slice(off_u, chunk),
                kernel_buf.slice(off_k, chunk),
            );
            copy_cost = out.duration;
            cost += out.duration;
        }
        // Segmentation: per-MSS on the CPU, or one cheap call with TSO.
        if opts.tso {
            cost += p.tso_chunk_cost;
        } else {
            cost += p.segment_cost * chunk.div_ceil(opts.mss());
        }
        let core_idx = st.app_core_for(conn);
        let core = Rc::clone(st.cores.member(core_idx));
        (
            core,
            cost,
            chunk,
            copy_cost,
            st.tracer.clone(),
            st.track(core_idx),
        )
    };
    let s2 = Rc::clone(s);
    let end = core.borrow_mut().run_job(sim, cost, move |sim| {
        {
            let mut st = s2.borrow_mut();
            if let Some(c) = st.conns.get_mut(&conn) {
                c.send.pending += chunk;
            }
        }
        pump(&s2, sim, conn);
        let left = remaining - chunk;
        if left > 0 {
            send_chunk(&s2, sim, conn, left);
        }
    });
    // Retroactive attribution: the user→kernel copy, then syscall +
    // segmentation, on the sending application's core.
    let start = end - cost;
    if !copy_cost.is_zero() {
        tracer.span("tx_copy", Category::Copy, track, start, start + copy_cost);
    }
    tracer.span(
        "tx_proto",
        Category::Protocol,
        track,
        start + copy_cost,
        end,
    );
}

/// Pushes as many frames as the window allows onto the wire, then arms
/// the retransmission timer when faults are in play.
fn pump(s: &StackRef, sim: &mut Sim, conn: ConnId) {
    pump_frames(s, sim, conn);
    arm_rto(s, sim, conn);
}

/// The window-pumping loop. The whole departing packet train is computed
/// under a single stack borrow — the wire model never advances simulated
/// time during `transmit`, so window arithmetic, the tx meter and the
/// fault RNG observe exactly the order the old one-frame-per-pass loop
/// produced, without per-frame `RefCell`/map traffic. Each frame consults
/// the fault injector: a lost frame still serializes on the wire (the
/// sender's NIC transmitted it) but never reaches the peer's
/// `frame_arrived` — and schedules no event at all.
fn pump_frames(s: &StackRef, sim: &mut Sim, conn: ConnId) {
    enum Egress {
        Peer(StackRef, usize),
        Routed(Rc<dyn FrameRouter>, usize),
        Handoff(Rc<dyn FrameRouter>, usize),
    }
    let (train, link, egress) = {
        let mut st = s.borrow_mut();
        let now = sim.now();
        let Some(c) = st.conns.get_mut(&conn) else {
            return;
        };
        let mss = c.send.opts.mss();
        let port_idx = c.send.port;
        let mut train: Vec<(Frame, bool)> = Vec::new();
        loop {
            let sendable = c.send.pending.min(c.send.usable_window());
            if sendable == 0 {
                break;
            }
            let payload = sendable.min(mss);
            c.send.pending -= payload;
            c.send.next_seq += payload;
            train.push((
                Frame {
                    conn,
                    payload,
                    seq_end: c.send.next_seq,
                },
                false,
            ));
        }
        if train.is_empty() {
            return;
        }
        let peer_window = c.send.peer_window;
        st.stats.peak_window = st.stats.peak_window.max(peer_window);
        for (frame, lost) in &mut train {
            st.tx_meter.record(now, frame.payload);
            st.stats.frames_sent += 1;
            *lost = st.faults.frame_lost(port_idx);
            if *lost {
                st.stats.frames_dropped += 1;
                st.fault_instant("pkt_drop", now);
            }
        }
        let port = &st.ports[port_idx];
        let egress = if let Some((router, attachment)) = &port.router {
            match router.egress_mode() {
                EgressMode::Deliver => Egress::Routed(Rc::clone(router), *attachment),
                EgressMode::Handoff => Egress::Handoff(Rc::clone(router), *attachment),
            }
        } else {
            Egress::Peer(
                Rc::clone(port.peer.as_ref().expect("port not wired")),
                port.peer_port,
            )
        };
        (train, port.tx.clone(), egress)
    };
    for (frame, lost) in train {
        if lost {
            link.transmit_dropped(sim, frame.wire_bytes());
            continue;
        }
        match &egress {
            Egress::Peer(peer, peer_port) => {
                let peer2 = Rc::clone(peer);
                let peer_port = *peer_port;
                link.transmit(sim, frame.wire_bytes(), move |sim| {
                    frame_arrived(&peer2, sim, peer_port, frame);
                });
            }
            Egress::Routed(router, attachment) => {
                let r2 = Rc::clone(router);
                let att = *attachment;
                link.transmit(sim, frame.wire_bytes(), move |sim| {
                    r2.frame_ingress(sim, att, frame);
                });
            }
            Egress::Handoff(router, attachment) => {
                // Identical serializer accounting to `transmit`, but the
                // arrival happens in another partition: no local event,
                // the router stages the frame at the window barrier.
                let arrive = link.transmit_dropped(sim, frame.wire_bytes());
                Rc::clone(router).frame_departed(sim, *attachment, frame, arrive);
            }
        }
    }
}

/// Arms the retransmission timer for `conn` when loss is possible and
/// unacknowledged bytes exist. Loss is possible when a fault injector is
/// active *or* the connection's port is router-attached — a switch fabric
/// can tail-drop on buffer exhaustion without any injector, and a dropped
/// final frame of a train produces no duplicate ACKs, so only the RTO can
/// recover it. Strictly a no-op on fault-free wired ports, so classic runs
/// schedule zero extra events.
fn arm_rto(s: &StackRef, sim: &mut Sim, conn: ConnId) {
    let armed = {
        let mut st = s.borrow_mut();
        let lossy_port = |st: &HostStack, conn: ConnId| {
            st.conns
                .get(&conn)
                .is_some_and(|c| st.ports[c.send.port].router.is_some())
        };
        if !st.faults.is_active() && !lossy_port(&st, conn) {
            return;
        }
        let Some(c) = st.conns.get_mut(&conn) else {
            return;
        };
        if c.send.rto_armed || c.send.in_flight() == 0 {
            return;
        }
        c.send.rto_armed = true;
        Some((c.send.rto_current, c.send.acked_seq))
    };
    if let Some((rto, snapshot)) = armed {
        let s2 = Rc::clone(s);
        sim.schedule(rto, move |sim| rto_fired(&s2, sim, conn, snapshot));
    }
}

/// Retransmission-timer expiry: if the cumulative ACK point has not moved
/// since the timer was armed, everything in flight is presumed lost —
/// go-back-N, double the RTO and pump again. If progress happened, the
/// timer simply re-arms for the remaining in-flight bytes.
fn rto_fired(s: &StackRef, sim: &mut Sim, conn: ConnId, acked_snapshot: u64) {
    {
        let mut st = s.borrow_mut();
        let now = sim.now();
        let rto_max = st.params.rto_max;
        let Some(c) = st.conns.get_mut(&conn) else {
            return;
        };
        c.send.rto_armed = false;
        if c.send.in_flight() == 0 {
            return; // drained while the timer was pending
        }
        if c.send.acked_seq > acked_snapshot {
            // Progress since arming: not a loss signal, just re-arm below.
        } else {
            let rewound = c.send.go_back_n();
            c.send.rto_current = (c.send.rto_current * 2).min(rto_max);
            c.send.in_recovery = true;
            c.send.dup_acks = 0;
            st.stats.rto_timeouts += 1;
            st.stats.retransmits += 1;
            st.stats.retransmitted_bytes += rewound;
            st.fault_instant("rto_timeout", now);
        }
    }
    pump(s, sim, conn);
}

// ---------------------------------------------------------------------------
// Receiver path.
// ---------------------------------------------------------------------------

/// A frame has finished arriving at `port` of stack `s` (the NIC has
/// already DMA'd it into kernel memory — no CPU cost yet).
pub fn frame_arrived(s: &StackRef, sim: &mut Sim, port: usize, frame: Frame) {
    let (action, queue) = {
        let mut st = s.borrow_mut();
        let now = sim.now();
        // RSS: steer the frame onto its flow's queue before any other
        // decision — the bounded ring and the coalescer are per-queue.
        let queue = st.rx_queue_for(port, frame.conn);
        // Bounded rx ring (fault injection): frames arriving while the
        // ring is full are dropped by the NIC before any CPU work. The
        // check is deterministic — backlog depth only, no RNG.
        if let Some(cap) = st.faults.rx_ring_slots() {
            if st.ports[port].queues[queue].pending.len() >= cap {
                st.stats.rx_ring_drops += 1;
                st.fault_instant("rx_ring_drop", now);
                return;
            }
        }
        #[cfg(not(feature = "audit-bug"))]
        {
            st.stats.frames_arrived += 1;
        }
        #[cfg(feature = "audit-bug")]
        {
            // Test-only accounting bug: silently drop every 97th increment
            // so the frame-conservation audit has a known defect to catch.
            // Only this counter is skewed; behavior is untouched.
            if st.stats.frames_arrived % 97 != 96 {
                st.stats.frames_arrived += 1;
            }
        }
        // The NIC's DMA write lands the payload in kernel memory and
        // invalidates any stale copies of those lines in the CPU cache —
        // this is why receive-side copies run cold in practice. With
        // split headers the aligned header placement keeps the header
        // ring coherent (the "optimally aligned" benefit of §2.2.1);
        // without it the header lines are invalidated along with the
        // payload.
        if frame.payload > 0 {
            if let Some(c) = st.conns.get(&frame.conn) {
                // Kernel-bypass receive lands payload directly in the user
                // buffer (that is the zero-copy: there is no kernel-side
                // landing zone to copy out of later); every other mode
                // lands it in the kernel socket buffer.
                let buf = if st.ioat.rx_mode == RxMode::ZeroCopy {
                    c.recv.user_buf
                } else {
                    c.recv.kernel_buf
                };
                let off = RecvState::ring_offset(frame.seq_end, buf.len(), frame.payload);
                let slice = buf.slice(off, frame.payload);
                st.cache.borrow_mut().invalidate_range(slice);
            }
        }
        let q = &mut st.ports[port].queues[queue];
        q.pending.push(frame);
        (q.coalescer.on_frame(now), queue)
    };
    match action {
        CoalesceAction::RaiseNow => raise_interrupt(s, sim, port, queue),
        CoalesceAction::ArmTimer(delay) => {
            let s2 = Rc::clone(s);
            sim.schedule(delay, move |sim| {
                let fire = s2.borrow_mut().ports[port].queues[queue]
                    .coalescer
                    .on_timer();
                if fire {
                    raise_interrupt(&s2, sim, port, queue);
                }
            });
        }
        CoalesceAction::Accumulate => {}
    }
}

/// Takes the accumulated batch on `port`'s receive `queue` and runs the
/// notification handler on the queue's core: per-interrupt + per-frame
/// costs (zero interrupt entry under the polling modes — the poller is
/// already on-CPU), then per-frame protocol processing with
/// cache-dependent state/header/payload accesses.
fn raise_interrupt(s: &StackRef, sim: &mut Sim, port: usize, queue: usize) {
    let (core, cost, frames, irq_part, tracer, track) = {
        let mut st = s.borrow_mut();
        let n = st.ports[port].queues[queue].coalescer.take_batch(sim.now());
        if n == 0 {
            return;
        }
        let frames: Vec<Frame> = st.ports[port].queues[queue].pending.drain(..).collect();
        debug_assert_eq!(frames.len(), n as usize);
        let p = st.params;
        // Interrupt-handling part (per-event + per-frame) vs. the TCP/IP
        // protocol part (per-frame base + cache-dependent accesses) — the
        // paper's Fig. 7 decomposition. The polling modes never take the
        // interrupt at all: the dedicated poller reaps descriptors from
        // its own context. (The poller's spin cycles burn a core but are
        // deliberately excluded from the utilization metric — see
        // DESIGN.md §13 — so utilization keeps measuring *work*;
        // `cpu_occupancy` reports the burned cores.)
        let irq_part = if st.ioat.rx_mode.is_polling() {
            SimDuration::ZERO
        } else {
            p.irq_cost + p.irq_per_frame * frames.len() as u64
        };
        let mut cost = irq_part;
        for f in &frames {
            let (state_buf, kernel_buf) = {
                let c = st.conns.get(&f.conn).expect("frame for unknown conn");
                (c.recv.state_buf, c.recv.kernel_buf)
            };
            cost += p.proto_base;
            cost += st.state_access_cost(state_buf);
            cost += st.header_access_cost(f, kernel_buf);
        }
        st.stats.interrupts += 1;
        st.stats.frames_processed += frames.len() as u64;
        let core_idx = st.rx_core_for(queue);
        (
            Rc::clone(st.cores.member(core_idx)),
            cost,
            frames,
            irq_part,
            st.tracer.clone(),
            st.track(core_idx),
        )
    };
    let s2 = Rc::clone(s);
    let end = core.borrow_mut().run_job(sim, cost, move |sim| {
        // Protocol processing done: advance streams, ACK, deliver. Without
        // injected loss every frame classifies `InOrder` (FIFO link, one
        // stream per port), so the discard branches never run.
        let mut acks: Vec<(ConnId, u64, u64, u32)> = Vec::new();
        let mut gaps: Vec<(ConnId, u32)> = Vec::new();
        {
            let mut st = s2.borrow_mut();
            let now = sim.now();
            for f in &frames {
                let class = st.conns[&f.conn].recv.classify(f.payload, f.seq_end);
                match class {
                    FrameClass::InOrder => {
                        let (became_active, grew) = {
                            let c = st.conns.get_mut(&f.conn).expect("unknown conn");
                            let was_active = HostStack::conn_rx_active(c);
                            let before = c.recv.received_seq;
                            c.recv.received_seq = c.recv.received_seq.max(f.seq_end);
                            (
                                !was_active && HostStack::conn_rx_active(c),
                                c.recv.received_seq - before,
                            )
                        };
                        if became_active {
                            st.active_rx += 1;
                        }
                        st.queued_bytes += grew;
                        if st.queued_bytes > st.stats.peak_backlog {
                            st.stats.peak_backlog = st.queued_bytes;
                        }
                    }
                    FrameClass::Duplicate => {
                        // A retransmission of data already received: the
                        // protocol cost was paid above; just re-ACK.
                    }
                    FrameClass::Gap => {
                        // Predecessor lost: the go-back-N receiver drops
                        // the frame and signals with a duplicate ACK.
                        st.stats.ooo_frames += 1;
                        st.fault_instant("ooo_discard", now);
                        match gaps.iter_mut().find(|g| g.0 == f.conn) {
                            Some(g) => g.1 += 1,
                            None => gaps.push((f.conn, 1)),
                        }
                    }
                }
            }
            for f in &frames {
                let c = &st.conns[&f.conn];
                let dup = gaps.iter().find(|g| g.0 == f.conn).map_or(0, |g| g.1);
                let entry = (f.conn, c.recv.received_seq, c.recv.advertised_window(), dup);
                if !acks.iter().any(|a| a.0 == f.conn) {
                    acks.push(entry);
                }
            }
        }
        for (conn, seq, window, dup) in acks {
            send_ack(&s2, sim, conn, seq, window, dup);
            try_deliver(&s2, sim, conn);
        }
    });
    let start = end - cost;
    if !irq_part.is_zero() {
        tracer.span("irq", Category::Interrupt, track, start, start + irq_part);
    }
    tracer.span("tcpip", Category::Protocol, track, start + irq_part, end);
}

/// Sends a cumulative ACK + window update back to the peer. ACKs travel at
/// link latency without occupying the reverse serializer (documented
/// simplification). `dup` carries the number of duplicate-ACK signals in
/// this batch (discarded out-of-order frames); it is 0 on every fault-free
/// path.
fn send_ack(s: &StackRef, sim: &mut Sim, conn: ConnId, seq: u64, window: u64, dup: u32) {
    enum AckPath {
        Peer(StackRef, SimDuration),
        Routed(Rc<dyn FrameRouter>, usize),
    }
    let path = {
        let st = s.borrow();
        let Some(c) = st.conns.get(&conn) else { return };
        let port = &st.ports[c.send.port];
        if let Some((router, attachment)) = &port.router {
            AckPath::Routed(Rc::clone(router), *attachment)
        } else {
            AckPath::Peer(
                Rc::clone(port.peer.as_ref().expect("port not wired")),
                port.tx.latency(),
            )
        }
    };
    match path {
        AckPath::Peer(peer, latency) => {
            sim.schedule(latency, move |sim| {
                ack_received(&peer, sim, conn, seq, window, dup);
            });
        }
        AckPath::Routed(router, attachment) => {
            router.ack_ingress(sim, attachment, conn, seq, window, dup);
        }
    }
}

/// Sender-side ACK processing: charged to the interrupt core, then the
/// window reopens and more frames go out. `dup > 0` reports duplicate
/// ACKs from the receiver; three of them trigger fast retransmit.
pub fn ack_received(s: &StackRef, sim: &mut Sim, conn: ConnId, seq: u64, window: u64, dup: u32) {
    let (core, cost, tracer, track) = {
        let mut st = s.borrow_mut();
        if !st.conns.contains_key(&conn) {
            return;
        }
        st.stats.acks += 1;
        let port = st.conns[&conn].send.port;
        // ACKs for a flow land on the same RSS queue (and hence core) as
        // its data frames would — steering is per-flow, not per-direction.
        let core_idx = st.rx_core_for(st.rx_queue_for(port, conn));
        (
            Rc::clone(st.cores.member(core_idx)),
            st.params.ack_cost,
            st.tracer.clone(),
            st.track(core_idx),
        )
    };
    let s2 = Rc::clone(s);
    let end = core.borrow_mut().run_job(sim, cost, move |sim| {
        let drained = {
            let mut st = s2.borrow_mut();
            let now = sim.now();
            let rto_initial = st.params.rto_initial;
            let Some(c) = st.conns.get_mut(&conn) else {
                return;
            };
            let advanced = c.send.on_ack(seq, window);
            let mut rewound = None;
            if advanced {
                // New data acknowledged: the hole (if any) is filled.
                c.send.dup_acks = 0;
                c.send.in_recovery = false;
                c.send.rto_current = rto_initial;
            } else if c.send.register_dup_acks(dup) {
                // Third duplicate ACK: fast retransmit via go-back-N,
                // without waiting for the (much longer) RTO.
                rewound = Some(c.send.go_back_n());
                c.send.in_recovery = true;
            }
            let drained = c.send.drained() && c.send.waiting_for_drain;
            if let Some(r) = rewound {
                st.stats.retransmits += 1;
                st.stats.retransmitted_bytes += r;
                st.fault_instant("fast_retx", now);
            }
            drained
        };
        pump(&s2, sim, conn);
        if drained {
            let still_drained = {
                let mut st = s2.borrow_mut();
                let c = st.conns.get_mut(&conn).expect("unknown conn");
                if c.send.drained() {
                    c.send.waiting_for_drain = false;
                    true
                } else {
                    false
                }
            };
            if still_drained {
                emit(&s2, sim, conn, SocketEvent::SendReady);
            }
        }
    });
    tracer.span("ack", Category::Protocol, track, end - cost, end);
}

/// Starts a kernel→user delivery for `conn` if bytes are queued and no
/// copy is in progress.
fn try_deliver(s: &StackRef, sim: &mut Sim, conn: ConnId) {
    enum Plan {
        Cpu {
            core: ioat_simcore::ResourceRef,
            cost: SimDuration,
            wake: SimDuration,
            bytes: u64,
            track: TrackId,
        },
        Dma {
            core: ioat_simcore::ResourceRef,
            overhead: SimDuration,
            wake: SimDuration,
            req: DmaRequest,
            engine: DmaEngineRef,
            bytes: u64,
            track: TrackId,
        },
        /// Kernel-bypass delivery: the payload is already sitting in the
        /// user buffer (the NIC put it there at arrival), so handing it to
        /// the application costs neither a wake, a syscall, a CPU copy nor
        /// an engine transfer.
        Bypass { bytes: u64 },
    }

    let tracer = s.borrow().tracer.clone();
    let plan = {
        let mut st = s.borrow_mut();
        let Some(c) = st.conns.get_mut(&conn) else {
            return;
        };
        let queued = c.recv.queued();
        if c.recv.copying || queued == 0 {
            return;
        }
        // The application must have a read posted; while it is busy
        // processing, arriving data backs up in the kernel buffer.
        match &mut c.recv.recv_credits {
            None => {}
            Some(0) => return,
            Some(n) => *n -= 1,
        }
        let bytes = queued.min(c.recv.opts.read_size);
        let was_active = HostStack::conn_rx_active(c);
        c.recv.copying = true;
        c.recv.copying_bytes = bytes;
        let deactivated = was_active && !HostStack::conn_rx_active(c);
        let src_off = RecvState::ring_offset(c.recv.delivered_seq, c.recv.kernel_buf.len(), bytes);
        let dst_off = RecvState::ring_offset(c.recv.delivered_seq, c.recv.user_buf.len(), bytes);
        let src = c.recv.kernel_buf.slice(src_off, bytes);
        let dst = c.recv.user_buf.slice(dst_off, bytes);
        if deactivated {
            st.active_rx -= 1;
        }
        let p = st.params;
        if st.ioat.rx_mode == RxMode::ZeroCopy {
            // The copy-engine question is moot under kernel bypass: there
            // is no kernel→user copy for either the CPU or the engine to
            // perform (the payload landed in the user buffer at arrival).
            Plan::Bypass { bytes }
        } else {
            // Busy-polling readers spin instead of blocking: delivery
            // skips the scheduler wake entirely and pays only the syscall
            // return into the spinning reader.
            let wake = if st.ioat.rx_mode == RxMode::BusyPoll {
                p.syscall
            } else {
                st.wake_cost() + p.syscall
            };
            let mut use_dma = st.ioat.dma_engine && bytes >= p.dma_min_bytes;
            if use_dma && st.faults.dma_down(sim.now()) {
                // DMA-channel failure window: the engine is unavailable, so
                // the delivery transparently falls back to the CPU copy.
                use_dma = false;
                st.stats.dma_fallbacks += 1;
                if let Some(engine) = &st.dma {
                    engine.borrow_mut().note_fallback();
                }
                st.fault_instant("dma_fallback", sim.now());
            }
            if use_dma {
                let engine = Rc::clone(st.dma.as_ref().expect("dma enabled without engine"));
                let req = DmaRequest::new(src, dst);
                // Kernel receive path: the socket buffer is pinned kernel
                // memory, only the user destination pages pay pinning.
                let overhead = wake + engine.borrow().cpu_overhead_prepinned_src(&req);
                st.stats.dma_deliveries += 1;
                // The scheduler migrates runnable receive threads away from
                // busy cores, so deliveries dispatch least-loaded.
                let idx = st.cores.least_loaded_index(sim.now());
                Plan::Dma {
                    core: Rc::clone(st.cores.member(idx)),
                    overhead,
                    wake,
                    req,
                    engine,
                    bytes,
                    track: st.track(idx),
                }
            } else {
                let copier = st.copier;
                let cache = Rc::clone(&st.cache);
                let out = copier.copy(&mut cache.borrow_mut(), src, dst);
                let idx = st.cores.least_loaded_index(sim.now());
                Plan::Cpu {
                    core: Rc::clone(st.cores.member(idx)),
                    cost: wake + out.duration,
                    wake,
                    bytes,
                    track: st.track(idx),
                }
            }
        }
    };

    match plan {
        Plan::Cpu {
            core,
            cost,
            wake,
            bytes,
            track,
        } => {
            let s2 = Rc::clone(s);
            let end = core.borrow_mut().run_job(sim, cost, move |sim| {
                finish_delivery(&s2, sim, conn, bytes);
            });
            let start = end - cost;
            tracer.span("rx_wake", Category::Protocol, track, start, start + wake);
            tracer.span("rx_copy", Category::Copy, track, start + wake, end);
        }
        Plan::Dma {
            core,
            overhead,
            wake,
            req,
            engine,
            bytes,
            track,
        } => {
            let s2 = Rc::clone(s);
            let end = core.borrow_mut().run_job(sim, overhead, move |sim| {
                let s3 = Rc::clone(&s2);
                let engine2 = Rc::clone(&engine);
                DmaEngine::issue(&engine2, sim, req, move |sim| {
                    // Reap the completion on the thread's core, then
                    // deliver.
                    let (core, cost, tracer, track) = {
                        let st = s3.borrow();
                        let idx = st.cores.least_loaded_index(sim.now());
                        (
                            Rc::clone(st.cores.member(idx)),
                            st.params.dma.completion_reap_cost(),
                            st.tracer.clone(),
                            st.track(idx),
                        )
                    };
                    let s4 = Rc::clone(&s3);
                    let end = core.borrow_mut().run_job(sim, cost, move |sim| {
                        finish_delivery(&s4, sim, conn, bytes);
                    });
                    tracer.span("dma_reap", Category::Dma, track, end - cost, end);
                });
            });
            let start = end - overhead;
            tracer.span("rx_wake", Category::Protocol, track, start, start + wake);
            tracer.span("dma_issue", Category::Dma, track, start + wake, end);
        }
        Plan::Bypass { bytes } => {
            // Zero cost, but still an event: the poller observes the
            // descriptor on its next spin, off the event queue rather than
            // off a core so it never queues behind busy cores.
            let s2 = Rc::clone(s);
            sim.schedule(SimDuration::ZERO, move |sim| {
                finish_delivery(&s2, sim, conn, bytes);
            });
        }
    }
}

/// Completes a delivery: advances the stream, reopens the receive window
/// (window-update ACK to the peer), notifies the application and chains
/// the next delivery.
fn finish_delivery(s: &StackRef, sim: &mut Sim, conn: ConnId, bytes: u64) {
    let (seq, window) = {
        let mut st = s.borrow_mut();
        let now = sim.now();
        st.stats.deliveries += 1;
        st.rx_meter.record(now, bytes);
        let (out, activity_change) = {
            let c = st.conns.get_mut(&conn).expect("unknown conn");
            let was_active = HostStack::conn_rx_active(c);
            c.recv.delivered_seq += bytes;
            c.recv.copying = false;
            c.recv.copying_bytes = 0;
            c.delivered.record(now, bytes);
            let is_active = HostStack::conn_rx_active(c);
            (
                (c.recv.received_seq, c.recv.advertised_window()),
                is_active as i64 - was_active as i64,
            )
        };
        match activity_change {
            1 => st.active_rx += 1,
            -1 => st.active_rx -= 1,
            _ => {}
        }
        st.queued_bytes -= bytes;
        st.tracer.counter(
            "rx_backlog_bytes",
            Category::Other,
            TrackId::new(st.node_id, 0),
            now,
            st.queued_bytes as f64,
        );
        out
    };
    send_ack(s, sim, conn, seq, window, 0);
    emit(s, sim, conn, SocketEvent::Delivered(bytes));
    try_deliver(s, sim, conn);
}

/// Cross-stack frame/byte conservation over a set of wired stacks: every
/// frame a sender injects is delivered into a pending ring, dropped by the
/// loss model, dropped at a full rx ring, or still on the wire. With
/// `quiescent` (event queue drained — nothing can be on the wire) the frame
/// identity tightens to exact equality.
pub fn audit_cluster_conservation(stacks: &[StackRef], now: SimTime, quiescent: bool) {
    audit_cluster_conservation_ext(stacks, 0, 0, now, quiescent);
}

/// [`audit_cluster_conservation`] extended with the fabric terms:
/// `switch_dropped` counts frames a [`FrameRouter`] tail-dropped at a full
/// switch buffer after the sender's NIC put them on the wire, and
/// `route_blackholed` counts frames the fabric dropped because no
/// surviving equal-cost port led toward the destination (a flapped link
/// or crashed switch severed every candidate). The identity becomes
/// Σsent = Σarrived + Σlost + Σring-dropped + switch-dropped +
/// route-blackholed (+ in-flight when not quiescent).
pub fn audit_cluster_conservation_ext(
    stacks: &[StackRef],
    switch_dropped: u64,
    route_blackholed: u64,
    now: SimTime,
    quiescent: bool,
) {
    audit_cluster_conservation_sums(
        frame_totals(stacks),
        switch_dropped,
        route_blackholed,
        now,
        quiescent,
    );
}

/// Frame/byte counters summed over a set of stacks — the terms of the
/// cluster conservation identity, detached from the stacks themselves so
/// a parallel run can collect them per partition (plain `Send` data) and
/// audit the *summed* identity on the merge thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterFrameTotals {
    /// Frames senders injected onto wires.
    pub sent: u64,
    /// Frames that reached a receiver's pending ring.
    pub arrived: u64,
    /// Frames the loss model dropped.
    pub lost: u64,
    /// Frames dropped at full receive rings.
    pub ring_dropped: u64,
    /// Bytes injected by transmitters.
    pub tx_bytes: u64,
    /// Bytes delivered to receivers.
    pub rx_bytes: u64,
}

impl ClusterFrameTotals {
    /// Accumulates another partition's totals.
    pub fn merge(&mut self, other: &ClusterFrameTotals) {
        self.sent += other.sent;
        self.arrived += other.arrived;
        self.lost += other.lost;
        self.ring_dropped += other.ring_dropped;
        self.tx_bytes += other.tx_bytes;
        self.rx_bytes += other.rx_bytes;
    }
}

/// Sums the conservation-identity terms over `stacks`.
pub fn frame_totals(stacks: &[StackRef]) -> ClusterFrameTotals {
    let mut t = ClusterFrameTotals::default();
    for s in stacks {
        let st = s.borrow();
        let stats = st.stats();
        t.sent += stats.frames_sent;
        t.arrived += stats.frames_arrived;
        t.lost += stats.frames_dropped;
        t.ring_dropped += stats.rx_ring_drops;
        t.tx_bytes += st.tx_meter().total_bytes();
        t.rx_bytes += st.rx_meter().total_bytes();
    }
    t
}

/// The conservation identity of [`audit_cluster_conservation_ext`] on
/// pre-summed totals.
pub fn audit_cluster_conservation_sums(
    totals: ClusterFrameTotals,
    switch_dropped: u64,
    route_blackholed: u64,
    now: SimTime,
    quiescent: bool,
) {
    let ClusterFrameTotals {
        sent,
        arrived,
        lost,
        ring_dropped,
        tx_bytes,
        rx_bytes,
    } = totals;
    let accounted = arrived + lost + ring_dropped + switch_dropped + route_blackholed;
    let ok = if quiescent {
        sent == accounted
    } else {
        sent >= accounted
    };
    ioat_guard::check(
        "netsim/cluster",
        "frame conservation: sent = arrived + lost + ring-dropped + switch-dropped \
         + route-blackholed + in-flight",
        now,
        ok,
        || {
            format!(
                "frames_sent={sent} vs arrived={arrived} + lost={lost} + \
                 ring_dropped={ring_dropped} + switch_dropped={switch_dropped} + \
                 route_blackholed={route_blackholed} (quiescent={quiescent})"
            )
        },
    );
    ioat_guard::check(
        "netsim/cluster",
        "delivered bytes ≤ injected bytes",
        now,
        rx_bytes <= tx_bytes,
        || format!("rx meters total {rx_bytes} B but tx meters injected only {tx_bytes} B"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioat_simcore::time::Bandwidth;

    fn pair(ioat: IoatConfig, opts: SocketOpts) -> (Sim, StackRef, StackRef, ConnId) {
        let mut sim = Sim::new();
        sim.set_event_limit(50_000_000);
        let a = HostStack::new("a", 4, StackParams::default(), ioat);
        let b = HostStack::new("b", 4, StackParams::default(), ioat);
        let (pa, pb) = wire(
            &a,
            &b,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(15),
            opts.coalescing,
        );
        let id = open_connection(&a, &b, pa, pb, opts, ConnId(1));
        (sim, a, b, id)
    }

    #[test]
    fn bytes_sent_are_delivered_exactly_once() {
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), SocketOpts::tuned());
        let total = 1_000_000u64;
        let got = Rc::new(RefCell::new(0u64));
        let g = Rc::clone(&got);
        set_handler(&b, conn, move |_sim, ev| {
            if let SocketEvent::Delivered(n) = ev {
                *g.borrow_mut() += n;
            }
        });
        app_send(&a, &mut sim, conn, total);
        sim.run();
        assert_eq!(*got.borrow(), total);
        assert_eq!(b.borrow().rx_meter().total_bytes(), total);
        assert_eq!(a.borrow().tx_meter().total_bytes(), total);
    }

    #[test]
    fn send_ready_fires_when_drained() {
        let (mut sim, a, _b, conn) = pair(IoatConfig::disabled(), SocketOpts::tuned());
        let ready_at = Rc::new(RefCell::new(None));
        let r = Rc::clone(&ready_at);
        set_handler(&a, conn, move |sim, ev| {
            if matches!(ev, SocketEvent::SendReady) {
                *r.borrow_mut() = Some(sim.now());
            }
        });
        app_send(&a, &mut sim, conn, 100_000);
        sim.run();
        assert!(ready_at.borrow().is_some(), "SendReady must fire");
    }

    #[test]
    fn throughput_approaches_line_rate() {
        // 10 MB over a 1 Gbps link should take ≈ 85 ms; goodput within
        // ~10 % of the 949 Mbps theoretical TCP goodput.
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), SocketOpts::tuned());
        let total = 10_000_000u64;
        b.borrow_mut().begin_measurement(SimTime::ZERO);
        app_send(&a, &mut sim, conn, total);
        let end = sim.run();
        let mbps = b.borrow().rx_meter().mbps(end);
        assert!(mbps > 850.0, "goodput only {mbps:.0} Mbps");
        assert!(mbps < 1000.0, "goodput {mbps:.0} Mbps exceeds line rate");
    }

    #[test]
    fn ioat_uses_the_dma_engine_for_large_deliveries() {
        let (mut sim, a, b, conn) = pair(IoatConfig::full(), SocketOpts::tuned());
        app_send(&a, &mut sim, conn, 1_000_000);
        sim.run();
        let stats = b.borrow().stats();
        assert!(stats.dma_deliveries > 0, "expected DMA deliveries");
        assert!(b.borrow().dma().unwrap().borrow().stats().bytes > 0);
    }

    #[test]
    fn non_ioat_never_touches_a_dma_engine() {
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), SocketOpts::tuned());
        app_send(&a, &mut sim, conn, 500_000);
        sim.run();
        assert!(b.borrow().dma().is_none());
        assert_eq!(b.borrow().stats().dma_deliveries, 0);
        assert!(b.borrow().stats().deliveries > 0);
    }

    #[test]
    fn ioat_lowers_receiver_cpu_utilization() {
        // The paper's headline effect, in miniature: same transfer, lower
        // receiver CPU with I/OAT.
        let total = 20_000_000u64;
        let run = |ioat: IoatConfig| {
            let (mut sim, a, b, conn) = pair(ioat, SocketOpts::tuned());
            app_send(&a, &mut sim, conn, total);
            let end = sim.run();
            let util = b.borrow().cpu_utilization(SimTime::ZERO, end);
            util
        };
        let non = run(IoatConfig::disabled());
        let ioat = run(IoatConfig::full());
        assert!(
            ioat < non,
            "I/OAT util {ioat:.3} should be below non-I/OAT {non:.3}"
        );
    }

    #[test]
    fn coalescing_reduces_interrupts() {
        let run = |coalescing: bool| {
            let opts = SocketOpts {
                coalescing,
                ..SocketOpts::tuned()
            };
            let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), opts);
            app_send(&a, &mut sim, conn, 2_000_000);
            sim.run();
            let st = b.borrow().stats();
            (st.interrupts, st.frames_processed)
        };
        let (irq_on, frames_on) = run(true);
        let (irq_off, frames_off) = run(false);
        assert_eq!(frames_on, frames_off, "same frame count either way");
        // Explicit coalescing batches harder than the always-on
        // interrupt throttle (ITR), which already amortizes some frames.
        assert!(
            irq_on < irq_off,
            "coalescing ({irq_on}) must batch more than ITR alone ({irq_off})"
        );
    }

    #[test]
    fn small_window_throttles_throughput() {
        // A 4 KB window cannot cover the bandwidth-delay product of a
        // 15 us-latency GigE path, so throughput is throttled well below
        // line rate — the effect larger socket buffers (Case 2) remove.
        let small = SocketOpts {
            sndbuf: 4 * 1024,
            rcvbuf: 4 * 1024,
            read_size: 2 * 1024,
            mtu: 1500,
            ..SocketOpts::case1()
        };
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), small);
        b.borrow_mut().begin_measurement(SimTime::ZERO);
        app_send(&a, &mut sim, conn, 5_000_000);
        let end = sim.run();
        let mbps = b.borrow().rx_meter().mbps(end);
        assert!(
            mbps < 700.0,
            "small window should throttle ({mbps:.0} Mbps)"
        );
    }

    #[test]
    #[should_panic(expected = "neither wired to each other nor both router-attached")]
    fn connecting_unwired_ports_panics() {
        let a = HostStack::new("a", 2, StackParams::default(), IoatConfig::disabled());
        let b = HostStack::new("b", 2, StackParams::default(), IoatConfig::disabled());
        let la = Link::new("x", Bandwidth::from_gbps(1), SimDuration::ZERO);
        let lb = Link::new("y", Bandwidth::from_gbps(1), SimDuration::ZERO);
        a.borrow_mut().add_port(la, false);
        b.borrow_mut().add_port(lb, false);
        open_connection(&a, &b, 0, 0, SocketOpts::tuned(), ConnId(9));
    }

    #[test]
    fn tracing_is_non_perturbing_and_attributes_receive_path() {
        let run = |tracer: Option<Tracer>| {
            let (mut sim, a, b, conn) = pair(IoatConfig::full(), SocketOpts::tuned());
            let tr = tracer.unwrap_or_default();
            a.borrow_mut().set_tracer(tr.clone(), 0);
            b.borrow_mut().set_tracer(tr.clone(), 1);
            app_send(&a, &mut sim, conn, 2_000_000);
            let end = sim.run();
            let util = b.borrow().cpu_utilization(SimTime::ZERO, end);
            let stats = b.borrow().stats();
            (end, util, stats, tr)
        };
        let (end_off, util_off, stats_off, _) = run(None);
        let (end_on, util_on, stats_on, tr) = run(Some(Tracer::enabled()));
        assert_eq!(end_off, end_on, "tracing must not change event timing");
        assert_eq!(util_off.to_bits(), util_on.to_bits());
        assert_eq!(stats_off.deliveries, stats_on.deliveries);
        // The receive path shows up in every paper category.
        let events = tr.events();
        for cat in [
            Category::Interrupt,
            Category::Protocol,
            Category::Copy,
            Category::Dma,
        ] {
            assert!(
                events.iter().any(|e| e.cat == cat),
                "no {} events recorded",
                cat.name()
            );
        }
        // Engine transfers land on the DMA pseudo-track (core 4 of node 1).
        assert!(events
            .iter()
            .any(|e| e.name == "dma_transfer" && e.track == TrackId::new(1, 4)));
    }

    #[test]
    #[should_panic(expected = "zero cores")]
    fn zero_core_stack_is_rejected() {
        let _ = HostStack::new("z", 0, StackParams::default(), IoatConfig::disabled());
    }

    #[cfg(not(feature = "audit-bug"))]
    #[test]
    fn conservation_audits_pass_on_healthy_and_faulty_runs() {
        // Loss + a DMA-down window + a bounded rx ring, all at once: the
        // audits must stay silent because recovery conserves every byte.
        let (mut sim, a, b, conn) = pair(IoatConfig::full(), SocketOpts::tuned());
        let plan = ioat_faults::FaultPlan {
            dma_down: vec![ioat_faults::TimeWindow::new(
                SimTime::from_micros(500),
                SimTime::from_micros(2_000),
            )],
            rx_ring_slots: Some(8),
            ..ioat_faults::FaultPlan::bernoulli_loss(0xF00D, 2e-3)
        };
        a.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 0));
        b.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 1));
        app_send(&a, &mut sim, conn, 3_000_000);
        let end = sim.run();
        let (res, violations) = ioat_guard::with_audit(|| {
            a.borrow().audit(end);
            b.borrow().audit(end);
            audit_cluster_conservation(&[Rc::clone(&a), Rc::clone(&b)], end, true);
            ioat_guard::audit_sim(&sim);
        });
        assert!(res.is_ok());
        assert!(
            violations.is_empty(),
            "unexpected violations: {violations:?}"
        );
    }

    /// With the `audit-bug` feature the frame-arrival counter silently
    /// drops every 97th increment; the conservation audits must catch it
    /// as a structured violation (this is the acceptance-criteria check
    /// that the audits detect a real accounting bug, not just tautologies).
    #[cfg(feature = "audit-bug")]
    #[test]
    fn injected_accounting_bug_is_caught_by_the_frame_audit() {
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), SocketOpts::tuned());
        app_send(&a, &mut sim, conn, 1_000_000); // ≫ 97 frames
        let end = sim.run();
        let (res, violations) = ioat_guard::with_audit(|| {
            b.borrow().audit(end);
            audit_cluster_conservation(&[Rc::clone(&a), Rc::clone(&b)], end, true);
        });
        assert!(res.is_ok());
        assert!(
            violations
                .iter()
                .any(|v| v.invariant.contains("frame conservation")),
            "skewed counter must trip the frame-conservation audit: {violations:?}"
        );
    }

    #[test]
    fn inert_injector_is_bit_identical_to_no_injector() {
        let run = |attach: bool| {
            let (mut sim, a, b, conn) = pair(IoatConfig::full(), SocketOpts::tuned());
            if attach {
                let plan = ioat_faults::FaultPlan::none();
                a.borrow_mut()
                    .set_fault_injector(FaultInjector::new(&plan, 0));
                b.borrow_mut()
                    .set_fault_injector(FaultInjector::new(&plan, 1));
            }
            app_send(&a, &mut sim, conn, 2_000_000);
            let end = sim.run();
            let out = (end, b.borrow().rx_meter().total_bytes(), b.borrow().stats());
            out
        };
        let (end_none, bytes_none, stats_none) = run(false);
        let (end_inert, bytes_inert, stats_inert) = run(true);
        assert_eq!(end_none, end_inert, "inert injector shifted event times");
        assert_eq!(bytes_none, bytes_inert);
        assert_eq!(stats_none.interrupts, stats_inert.interrupts);
        assert_eq!(stats_inert.frames_dropped, 0);
        assert_eq!(stats_inert.retransmits, 0);
    }

    #[test]
    fn loss_is_recovered_and_all_bytes_still_arrive_once() {
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), SocketOpts::tuned());
        let plan = ioat_faults::FaultPlan::bernoulli_loss(0x10AD, 2e-3);
        a.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 0));
        b.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 1));
        let total = 5_000_000u64;
        let got = Rc::new(RefCell::new(0u64));
        let g = Rc::clone(&got);
        set_handler(&b, conn, move |_sim, ev| {
            if let SocketEvent::Delivered(n) = ev {
                *g.borrow_mut() += n;
            }
        });
        app_send(&a, &mut sim, conn, total);
        sim.run();
        assert_eq!(*got.borrow(), total, "recovery must deliver every byte");
        let sa = a.borrow().stats();
        assert!(sa.frames_dropped > 0, "expected injected drops");
        assert!(sa.retransmits > 0, "expected retransmission rounds");
        assert!(sa.retransmitted_bytes > 0);
        let sb = b.borrow().stats();
        assert!(sb.ooo_frames > 0, "receiver should discard gap frames");
    }

    #[test]
    fn rx_ring_overflow_drops_are_recovered() {
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), SocketOpts::tuned());
        let plan = ioat_faults::FaultPlan {
            rx_ring_slots: Some(2),
            ..ioat_faults::FaultPlan::none()
        };
        a.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 0));
        b.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 1));
        let total = 2_000_000u64;
        app_send(&a, &mut sim, conn, total);
        sim.run();
        assert_eq!(b.borrow().rx_meter().total_bytes(), total);
        assert!(
            b.borrow().stats().rx_ring_drops > 0,
            "2-slot ring under coalescing must overflow"
        );
    }

    #[test]
    fn dma_down_window_falls_back_to_cpu_copies() {
        let (mut sim, a, b, conn) = pair(IoatConfig::full(), SocketOpts::tuned());
        let plan = ioat_faults::FaultPlan {
            dma_down: vec![ioat_faults::TimeWindow::new(
                SimTime::ZERO,
                SimTime::from_micros(1_000_000_000),
            )],
            ..ioat_faults::FaultPlan::none()
        };
        b.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 1));
        let total = 1_000_000u64;
        app_send(&a, &mut sim, conn, total);
        sim.run();
        let stats = b.borrow().stats();
        assert_eq!(b.borrow().rx_meter().total_bytes(), total);
        assert_eq!(stats.dma_deliveries, 0, "engine is down the whole run");
        assert!(stats.dma_fallbacks > 0);
        assert_eq!(b.borrow().dma().unwrap().borrow().stats().bytes, 0);
    }

    #[test]
    fn fault_runs_replay_bit_identically_for_a_fixed_seed() {
        let run = || {
            let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), SocketOpts::tuned());
            let plan = ioat_faults::FaultPlan::bernoulli_loss(99, 1e-3);
            a.borrow_mut()
                .set_fault_injector(FaultInjector::new(&plan, 0));
            b.borrow_mut()
                .set_fault_injector(FaultInjector::new(&plan, 1));
            app_send(&a, &mut sim, conn, 3_000_000);
            let end = sim.run();
            let sa = a.borrow().stats();
            (end, sa.frames_dropped, sa.retransmits, sa.rto_timeouts)
        };
        assert_eq!(run(), run(), "same seed must replay the same faults");
    }

    /// Regression for the coalescer tail-flush bug: with explicit
    /// coalescing, a stream whose *final* batch holds fewer than
    /// `coalesce_max_frames` frames must still be delivered in full (the
    /// stale delay timer flushes the partial tail) and the conservation
    /// audits must see every frame and byte.
    #[cfg(not(feature = "audit-bug"))]
    #[test]
    fn coalescing_tail_batch_is_flushed_and_audited() {
        let opts = SocketOpts {
            coalescing: true,
            ..SocketOpts::tuned()
        };
        // Odd total: the transfer cannot end on a full batch boundary.
        let total = 777_777u64;
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), opts);
        app_send(&a, &mut sim, conn, total);
        let end = sim.run();
        assert_eq!(b.borrow().rx_meter().total_bytes(), total);
        let (res, violations) = ioat_guard::with_audit(|| {
            a.borrow().audit(end);
            b.borrow().audit(end);
            audit_cluster_conservation(&[Rc::clone(&a), Rc::clone(&b)], end, true);
        });
        assert!(res.is_ok());
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// Fault-drop variant of the tail-flush regression: injected loss
    /// shuffles which frames form the final batch, and retransmissions
    /// must not strand a partial tail either. The frame-conservation audit
    /// accounts for every byte.
    #[cfg(not(feature = "audit-bug"))]
    #[test]
    fn coalescing_tail_flush_survives_injected_loss() {
        let opts = SocketOpts {
            coalescing: true,
            ..SocketOpts::tuned()
        };
        let total = 777_777u64;
        let (mut sim, a, b, conn) = pair(IoatConfig::disabled(), opts);
        let plan = ioat_faults::FaultPlan::bernoulli_loss(0xC0A1, 2e-3);
        a.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 0));
        b.borrow_mut()
            .set_fault_injector(FaultInjector::new(&plan, 1));
        app_send(&a, &mut sim, conn, total);
        let end = sim.run();
        assert_eq!(b.borrow().rx_meter().total_bytes(), total);
        let (res, violations) = ioat_guard::with_audit(|| {
            a.borrow().audit(end);
            b.borrow().audit(end);
            audit_cluster_conservation(&[Rc::clone(&a), Rc::clone(&b)], end, true);
        });
        assert!(res.is_ok());
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// The bug the tail-flush fix removed: while the delay timer was
    /// armed, the max-frames check was unreachable, so at link rates where
    /// more than `coalesce_max_frames` frames land inside one delay window
    /// the batches grew unbounded. At 10 Gbps ≈ 24 frames fit in the 40 µs
    /// window; post-fix every batch is capped at 8.
    #[test]
    fn coalesced_batches_are_bounded_at_high_link_rates() {
        let mut sim = Sim::new();
        sim.set_event_limit(50_000_000);
        let a = HostStack::new("a", 4, StackParams::default(), IoatConfig::disabled());
        let b = HostStack::new("b", 4, StackParams::default(), IoatConfig::disabled());
        let (pa, pb) = wire(
            &a,
            &b,
            Bandwidth::from_gbps(10),
            SimDuration::from_micros(15),
            true,
        );
        let opts = SocketOpts {
            coalescing: true,
            ..SocketOpts::tuned()
        };
        let conn = open_connection(&a, &b, pa, pb, opts, ConnId(1));
        let total = 5_000_000u64;
        app_send(&a, &mut sim, conn, total);
        sim.run();
        let st = b.borrow().stats();
        assert!(st.frames_processed > 100, "need a real frame stream");
        let max = StackParams::default().coalesce_max_frames as u64;
        assert!(
            st.frames_processed <= st.interrupts * max,
            "mean batch {:.1} exceeds the max-frames bound {max}",
            st.frames_processed as f64 / st.interrupts as f64
        );
        assert_eq!(b.borrow().rx_meter().total_bytes(), total);
    }

    #[test]
    fn rss_steering_is_seed_stable_and_spreads_flows() {
        let mk = |mq: bool| {
            let s = HostStack::new(
                "n",
                4,
                StackParams::default(),
                IoatConfig::disabled().with_multi_queue(mq),
            );
            let l = Link::new("x", Bandwidth::from_gbps(1), SimDuration::ZERO);
            s.borrow_mut().add_port(l, false);
            s
        };
        let a = mk(true);
        let b = mk(true);
        assert_eq!(a.borrow().ports[0].queues.len(), 4);
        let qa: Vec<usize> = (0..64)
            .map(|i| a.borrow().rx_queue_for(0, ConnId(i)))
            .collect();
        let qb: Vec<usize> = (0..64)
            .map(|i| b.borrow().rx_queue_for(0, ConnId(i)))
            .collect();
        // Pure function of the connection id: identical on distinct stacks,
        // independent of arrival order or anything else.
        assert_eq!(qa, qb);
        // Spreads: every queue serves some flow out of 64.
        for target in 0..4 {
            assert!(qa.contains(&target), "queue {target} never selected");
        }
        // Not the trivial `conn % queues` round-robin (which would alias
        // with the app-thread affinity and fake perfect locality).
        assert_ne!(qa, (0..64usize).map(|i| i % 4).collect::<Vec<_>>());
        // Single-queue ports steer everything to queue 0 (the 2007 model).
        let sq = mk(false);
        assert_eq!(sq.borrow().ports[0].queues.len(), 1);
        assert!((0..64).all(|i| sq.borrow().rx_queue_for(0, ConnId(i)) == 0));
    }

    #[test]
    fn multi_queue_spreads_interrupt_load_across_cores() {
        let mut sim = Sim::new();
        sim.set_event_limit(50_000_000);
        let ioat = IoatConfig::disabled().with_multi_queue(true);
        let a = HostStack::new("a", 4, StackParams::default(), ioat);
        let b = HostStack::new("b", 4, StackParams::default(), ioat);
        let tr = Tracer::enabled();
        b.borrow_mut().set_tracer(tr.clone(), 1);
        let (pa, pb) = wire(
            &a,
            &b,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(15),
            false,
        );
        for i in 1..=8 {
            open_connection(&a, &b, pa, pb, SocketOpts::tuned(), ConnId(i));
        }
        for i in 1..=8 {
            app_send(&a, &mut sim, ConnId(i), 500_000);
        }
        sim.run();
        let cores: std::collections::BTreeSet<u32> = tr
            .events()
            .iter()
            .filter(|e| e.name == "tcpip")
            .map(|e| e.track.core)
            .collect();
        assert!(
            cores.len() > 1,
            "RSS should spread protocol work across cores, saw {cores:?}"
        );
    }

    #[test]
    fn busy_poll_skips_interrupt_and_wake_costs() {
        let run = |mode: RxMode| {
            let ioat = IoatConfig::disabled().with_rx_mode(mode);
            let (mut sim, a, b, conn) = pair(ioat, SocketOpts::tuned());
            app_send(&a, &mut sim, conn, 10_000_000);
            let end = sim.run();
            let util = b.borrow().cpu_utilization(SimTime::ZERO, end);
            let bytes = b.borrow().rx_meter().total_bytes();
            (util, bytes)
        };
        let (irq, bytes_irq) = run(RxMode::Interrupt);
        let (busy, bytes_busy) = run(RxMode::BusyPoll);
        assert_eq!(bytes_irq, 10_000_000);
        assert_eq!(bytes_busy, 10_000_000);
        assert!(
            busy < irq,
            "busy-poll receive work {busy:.3} should undercut interrupt-driven {irq:.3}"
        );
    }

    #[cfg(not(feature = "audit-bug"))]
    #[test]
    fn zero_copy_delivers_without_copies_wakes_or_engine_transfers() {
        let ioat = IoatConfig::full().with_rx_mode(RxMode::ZeroCopy);
        let total = 3_000_000u64;
        let (mut sim, a, b, conn) = pair(ioat, SocketOpts::tuned());
        app_send(&a, &mut sim, conn, total);
        let end = sim.run();
        let st = b.borrow().stats();
        assert_eq!(b.borrow().rx_meter().total_bytes(), total);
        assert!(st.deliveries > 0);
        // Kernel bypass: even with the copy engine configured, nothing to
        // offload — there is no rx copy at all.
        assert_eq!(st.dma_deliveries, 0);
        assert_eq!(b.borrow().dma().unwrap().borrow().stats().bytes, 0);
        // And the full delivery pipeline still satisfies conservation.
        let (res, violations) = ioat_guard::with_audit(|| {
            b.borrow().audit(end);
            audit_cluster_conservation(&[Rc::clone(&a), Rc::clone(&b)], end, true);
        });
        assert!(res.is_ok());
        assert!(violations.is_empty(), "{violations:?}");
        // Cheaper than busy-poll, which still pays syscalls and copies.
        let busy = {
            let ioat = IoatConfig::disabled().with_rx_mode(RxMode::BusyPoll);
            let (mut sim, a2, b2, conn) = pair(ioat, SocketOpts::tuned());
            app_send(&a2, &mut sim, conn, total);
            let end = sim.run();
            let util = b2.borrow().cpu_utilization(SimTime::ZERO, end);
            util
        };
        let zc = b.borrow().cpu_utilization(SimTime::ZERO, end);
        assert!(
            zc < busy,
            "zero-copy {zc:.3} should undercut busy-poll {busy:.3}"
        );
    }

    #[test]
    fn forced_coalescing_mode_overrides_the_socket_flag() {
        let run = |mode: RxMode| {
            let opts = SocketOpts {
                coalescing: false,
                ..SocketOpts::tuned()
            };
            let (mut sim, a, b, conn) = pair(IoatConfig::disabled().with_rx_mode(mode), opts);
            app_send(&a, &mut sim, conn, 2_000_000);
            sim.run();
            let st = b.borrow().stats();
            (st.interrupts, st.frames_processed)
        };
        let (irq_mode, frames_irq) = run(RxMode::Interrupt);
        let (coalesced, frames_co) = run(RxMode::Coalesced);
        assert_eq!(frames_irq, frames_co);
        assert!(
            coalesced < irq_mode,
            "RxMode::Coalesced ({coalesced}) must batch harder than ITR alone ({irq_mode})"
        );
    }

    #[test]
    fn multiple_connections_share_a_port_fairly() {
        let mut sim = Sim::new();
        sim.set_event_limit(50_000_000);
        let a = HostStack::new("a", 4, StackParams::default(), IoatConfig::disabled());
        let b = HostStack::new("b", 4, StackParams::default(), IoatConfig::disabled());
        let (pa, pb) = wire(
            &a,
            &b,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(15),
            true,
        );
        let c1 = open_connection(&a, &b, pa, pb, SocketOpts::tuned(), ConnId(1));
        let c2 = open_connection(&a, &b, pa, pb, SocketOpts::tuned(), ConnId(2));
        app_send(&a, &mut sim, c1, 4_000_000);
        app_send(&a, &mut sim, c2, 4_000_000);
        let end = sim.run();
        let m1 = b.borrow().conn_mbps(c1, end);
        let m2 = b.borrow().conn_mbps(c2, end);
        assert!(m1 > 0.0 && m2 > 0.0);
        let ratio = m1 / m2;
        assert!(
            (0.7..1.4).contains(&ratio),
            "unfair split: {m1:.0} vs {m2:.0}"
        );
    }
}
