//! NIC-side receive machinery: frames and interrupt coalescing.
//!
//! The NIC DMAs arriving frames into kernel memory without CPU
//! involvement; the CPU cost starts at the interrupt. With coalescing
//! enabled the adapter batches several frames per interrupt (§2.1: "one
//! interrupt for multiple packets rather than ... every single packet"),
//! trading a bounded delay for fewer handler entries.

use crate::tcp::ConnId;
use ioat_simcore::{SimDuration, SimTime};

/// Default interrupt-throttle gap: even with explicit coalescing off, the
/// adapter (like the e1000's default ITR) never raises interrupts closer
/// together than this.
pub const ITR_MIN_GAP: SimDuration = SimDuration::from_micros(35);

/// Wire overhead per Ethernet frame beyond the TCP payload: Ethernet
/// header + CRC (18), preamble + IFG (20), IP + TCP headers (40).
pub const FRAME_OVERHEAD: u64 = 78;

/// A frame as seen by the receiving NIC: payload bytes of a connection's
/// stream ending at cumulative sequence `seq_end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frame {
    /// The connection the frame belongs to.
    pub conn: ConnId,
    /// TCP payload bytes.
    pub payload: u64,
    /// Cumulative stream position after this frame.
    pub seq_end: u64,
}

impl Frame {
    /// Bytes the frame occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.payload + FRAME_OVERHEAD
    }
}

/// What the NIC should do after accepting a frame into the RX ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceAction {
    /// Raise an interrupt immediately (batch is ready or coalescing off).
    RaiseNow,
    /// First frame of a batch: arm the coalescing timer for this delay.
    ArmTimer(SimDuration),
    /// A timer is already armed; just accumulate.
    Accumulate,
}

/// Per-port interrupt coalescing state machine.
///
/// ```rust
/// use ioat_netsim::nic::{CoalesceAction, RxCoalescer};
/// use ioat_simcore::{SimDuration, SimTime};
///
/// let mut c = RxCoalescer::new(true, 4, SimDuration::from_micros(30));
/// assert!(matches!(c.on_frame(SimTime::ZERO), CoalesceAction::ArmTimer(_)));
/// assert_eq!(c.on_frame(SimTime::ZERO), CoalesceAction::Accumulate);
/// assert!(c.on_timer(), "timer flushes the partial batch");
/// assert_eq!(c.take_batch(SimTime::from_micros(30)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RxCoalescer {
    enabled: bool,
    /// Polling receive (busy-poll / kernel-bypass): every frame is picked
    /// up immediately — no coalescing delay and no interrupt throttling.
    polling: bool,
    max_frames: u32,
    delay: SimDuration,
    pending: u32,
    timer_armed: bool,
    last_raise: Option<SimTime>,
    interrupts_raised: u64,
    frames_seen: u64,
}

impl RxCoalescer {
    /// Creates a coalescer. With `enabled == false` every frame raises an
    /// interrupt immediately.
    pub fn new(enabled: bool, max_frames: u32, delay: SimDuration) -> Self {
        assert!(max_frames > 0, "coalescing batch must be at least 1 frame");
        RxCoalescer {
            enabled,
            polling: false,
            max_frames,
            delay,
            pending: 0,
            timer_armed: false,
            last_raise: None,
            interrupts_raised: 0,
            frames_seen: 0,
        }
    }

    /// Creates a polling-mode coalescer: a dedicated polling core reaps
    /// every frame as it lands, so there is no delay timer and no ITR
    /// throttle — `on_frame` always answers [`CoalesceAction::RaiseNow`].
    pub fn polling() -> Self {
        RxCoalescer {
            polling: true,
            ..Self::new(false, 1, SimDuration::ZERO)
        }
    }

    /// Registers an arriving frame and decides what to do.
    pub fn on_frame(&mut self, now: SimTime) -> CoalesceAction {
        self.frames_seen += 1;
        self.pending += 1;
        if self.polling {
            return CoalesceAction::RaiseNow;
        }
        if self.enabled {
            // The full-batch check must run even while the delay timer is
            // armed — the timer arms on the *first* frame of a batch, so
            // every batch that fills up does so with the timer armed.
            // (Checking `timer_armed` first made this branch dead code and
            // batches grew without bound at high link rates.) The raise
            // drains the batch; the still-scheduled timer later finds
            // whatever a subsequent partial batch accumulated, or nothing.
            if self.pending >= self.max_frames {
                return CoalesceAction::RaiseNow;
            }
            if self.timer_armed {
                return CoalesceAction::Accumulate;
            }
            self.timer_armed = true;
            return CoalesceAction::ArmTimer(self.delay);
        }
        if self.timer_armed {
            return CoalesceAction::Accumulate;
        }
        // Interrupt throttling only: raise immediately unless the
        // last interrupt was too recent.
        match self.last_raise {
            Some(last) if now < last + ITR_MIN_GAP => {
                self.timer_armed = true;
                CoalesceAction::ArmTimer((last + ITR_MIN_GAP) - now)
            }
            _ => CoalesceAction::RaiseNow,
        }
    }

    /// The coalescing timer fired. Returns `true` if there is a batch to
    /// process (it may have been drained already by a full-batch raise).
    pub fn on_timer(&mut self) -> bool {
        self.timer_armed = false;
        self.pending > 0
    }

    /// Takes the accumulated batch for interrupt processing, resetting the
    /// state machine.
    pub fn take_batch(&mut self, now: SimTime) -> u32 {
        let n = self.pending;
        self.pending = 0;
        self.timer_armed = false;
        if n > 0 {
            self.interrupts_raised += 1;
            self.last_raise = Some(now);
        }
        n
    }

    /// Frames currently accumulated.
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Interrupts raised so far.
    pub fn interrupts_raised(&self) -> u64 {
        self.interrupts_raised
    }

    /// Frames seen so far.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Mean frames per interrupt so far (0 when no interrupts yet).
    pub fn frames_per_interrupt(&self) -> f64 {
        if self.interrupts_raised == 0 {
            0.0
        } else {
            self.frames_seen as f64 / self.interrupts_raised as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_coalescer_is_interrupt_throttled() {
        let mut c = RxCoalescer::new(false, 8, SimDuration::from_micros(30));
        // First frame raises immediately.
        assert_eq!(c.on_frame(SimTime::ZERO), CoalesceAction::RaiseNow);
        assert_eq!(c.take_batch(SimTime::ZERO), 1);
        // A frame inside the ITR gap defers to the gap edge...
        let t1 = SimTime::from_micros(10);
        assert!(matches!(
            c.on_frame(t1),
            CoalesceAction::ArmTimer(d) if d == ITR_MIN_GAP - SimDuration::from_micros(10)
        ));
        assert_eq!(
            c.on_frame(SimTime::from_micros(20)),
            CoalesceAction::Accumulate
        );
        assert!(c.on_timer());
        assert_eq!(c.take_batch(SimTime::ZERO + ITR_MIN_GAP), 2);
        // ...and a frame past the gap raises immediately again.
        let late = SimTime::ZERO + ITR_MIN_GAP + ITR_MIN_GAP;
        assert_eq!(c.on_frame(late), CoalesceAction::RaiseNow);
    }

    #[test]
    fn timer_flushes_partial_batch() {
        let mut c = RxCoalescer::new(true, 8, SimDuration::from_micros(30));
        assert!(
            matches!(c.on_frame(SimTime::ZERO), CoalesceAction::ArmTimer(d) if d == SimDuration::from_micros(30))
        );
        assert_eq!(c.on_frame(SimTime::ZERO), CoalesceAction::Accumulate);
        assert!(c.on_timer(), "timer finds a 2-frame batch");
        assert_eq!(c.take_batch(SimTime::from_micros(30)), 2);
        assert!(!c.on_timer(), "no second batch");
    }

    #[test]
    fn full_batch_preempts_timer() {
        // Regression for the coalescing tail-flush bug: the timer arms on
        // the first frame of every batch, so the old `timer_armed` early
        // return made the max-frames check unreachable and batches grew
        // without bound at high link rates.
        let mut c = RxCoalescer::new(true, 3, SimDuration::from_micros(30));
        assert!(matches!(
            c.on_frame(SimTime::ZERO),
            CoalesceAction::ArmTimer(_)
        ));
        assert_eq!(c.on_frame(SimTime::ZERO), CoalesceAction::Accumulate);
        // Third frame fills the batch while the timer is armed: it must
        // fire immediately, not wait out the delay.
        assert_eq!(c.on_frame(SimTime::ZERO), CoalesceAction::RaiseNow);
        assert_eq!(c.take_batch(SimTime::ZERO), 3);
        // The stale timer finds an empty batch and does nothing.
        assert!(!c.on_timer());
        // Next frame re-arms a fresh timer.
        assert!(matches!(
            c.on_frame(SimTime::ZERO),
            CoalesceAction::ArmTimer(_)
        ));
    }

    #[test]
    fn stale_timer_flushes_a_partial_tail_batch() {
        // A full batch preempts the timer, then a stream's *final* frames
        // arrive — fewer than max_frames. The delayed interrupt must still
        // fire for them (the held-partial-batch hazard): either the stale
        // first timer or the freshly armed one flushes the tail.
        let mut c = RxCoalescer::new(true, 2, SimDuration::from_micros(30));
        assert!(matches!(
            c.on_frame(SimTime::ZERO),
            CoalesceAction::ArmTimer(_)
        ));
        assert_eq!(c.on_frame(SimTime::ZERO), CoalesceAction::RaiseNow);
        assert_eq!(c.take_batch(SimTime::ZERO), 2);
        // Tail frame (e.g. the frame that would have completed the next
        // batch was dropped by a fault): a new timer arms...
        assert!(matches!(
            c.on_frame(SimTime::ZERO),
            CoalesceAction::ArmTimer(_)
        ));
        // ...and the stale timer from the preempted batch fires first,
        // flushing the partial tail early. No frame is ever held forever.
        assert!(c.on_timer(), "stale timer flushes the 1-frame tail");
        assert_eq!(c.take_batch(SimTime::from_micros(30)), 1);
        // The fresh timer then finds nothing.
        assert!(!c.on_timer());
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn polling_mode_reaps_every_frame_immediately() {
        let mut c = RxCoalescer::polling();
        for i in 0..5u64 {
            // Back-to-back arrivals well inside the ITR gap: polling has
            // neither a delay timer nor an interrupt throttle.
            let now = SimTime::from_micros(i);
            assert_eq!(c.on_frame(now), CoalesceAction::RaiseNow);
            assert_eq!(c.take_batch(now), 1);
        }
        assert_eq!(c.frames_seen(), 5);
        assert_eq!(c.interrupts_raised(), 5);
    }

    #[test]
    fn frame_wire_size_includes_overhead() {
        let f = Frame {
            conn: ConnId(1),
            payload: 1460,
            seq_end: 1460,
        };
        assert_eq!(f.wire_bytes(), 1538);
    }

    #[test]
    fn coalescing_batches_more_than_throttling() {
        // Frames every 10us for 1ms: explicit coalescing (80us windows)
        // takes fewer interrupts than ITR throttling (35us gap).
        let run = |enabled: bool| {
            let mut c = RxCoalescer::new(enabled, 16, SimDuration::from_micros(80));
            let mut timer_at: Option<SimTime> = None;
            let mut irqs = 0u64;
            for i in 0..100u64 {
                let now = SimTime::from_micros(10 * i);
                if let Some(t) = timer_at {
                    if now >= t {
                        timer_at = None;
                        if c.on_timer() && c.take_batch(t) > 0 {
                            irqs += 1;
                        }
                    }
                }
                match c.on_frame(now) {
                    CoalesceAction::RaiseNow => {
                        c.take_batch(now);
                        irqs += 1;
                    }
                    CoalesceAction::ArmTimer(d) => timer_at = Some(now + d),
                    CoalesceAction::Accumulate => {}
                }
            }
            irqs
        };
        let coalesced = run(true);
        let throttled = run(false);
        assert!(
            coalesced < throttled,
            "coalesced {coalesced} should batch more than throttled {throttled}"
        );
        assert!(throttled < 100, "ITR must batch at least somewhat");
    }
}
