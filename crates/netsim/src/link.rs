//! Point-to-point links.
//!
//! The testbed connects its six GigE ports through per-VLAN paths on a
//! store-and-forward switch, so each port pair behaves as a dedicated
//! full-duplex link: a serializing transmitter (one frame on the wire at a
//! time) plus a fixed propagation/switching latency.

use ioat_simcore::time::Bandwidth;
use ioat_simcore::{Resource, ResourceRef, Sim, SimDuration, SimTime};
use std::rc::Rc;

/// One direction of a link: a serializer and a delay.
///
/// ```rust
/// use ioat_netsim::Link;
/// use ioat_simcore::time::Bandwidth;
/// use ioat_simcore::{Sim, SimDuration};
///
/// let mut sim = Sim::new();
/// let link = Link::new("up", Bandwidth::from_gbps(1), SimDuration::from_micros(20));
/// link.transmit(&mut sim, 1_500, |sim| assert_eq!(sim.now().as_nanos(), 32_000));
/// sim.run();
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    tx: ResourceRef,
    bandwidth: Bandwidth,
    latency: SimDuration,
}

impl Link {
    /// Creates a link with the given line rate and one-way latency.
    ///
    /// # Panics
    /// A zero line rate would make every transfer time infinite (and the
    /// utilization math divide by zero), so it is rejected here instead of
    /// surfacing as a hang deep inside a run.
    pub fn new(name: &str, bandwidth: Bandwidth, latency: SimDuration) -> Self {
        assert!(
            bandwidth.as_bps() > 0,
            "link '{name}' configured with zero bandwidth — transfers would never complete"
        );
        Link {
            tx: Resource::new_ref(format!("link-{name}")),
            bandwidth,
            latency,
        }
    }

    /// Line rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// One-way propagation + switching latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Serializes `wire_bytes` onto the link, then delivers after the
    /// propagation latency. Frames queue FIFO behind earlier frames.
    /// Returns the delivery instant.
    ///
    /// The serialization end is a pure function of the transmitter's
    /// backlog, so the delivery is scheduled directly at `end + latency`
    /// with [`Resource::consume`] doing the busy accounting — one event
    /// per frame instead of the former two (serialize-completion +
    /// delivery). `schedule_deferred` keys the delivery at the serialize
    /// end, so same-instant ties resolve exactly as if the old relay
    /// event had scheduled it: execution order is bit-identical.
    pub fn transmit<F>(&self, sim: &mut Sim, wire_bytes: u64, deliver: F) -> SimTime
    where
        F: FnOnce(&mut Sim) + 'static,
    {
        let serialize = self.bandwidth.transfer_time(wire_bytes);
        let done = self.tx.borrow_mut().consume(sim, serialize);
        let arrive = done + self.latency;
        sim.schedule_deferred(done, arrive, deliver);
        arrive
    }

    /// Serializes `wire_bytes` onto the link for a frame that will never
    /// arrive (fault injection): the transmitter's busy accounting is
    /// identical to [`Link::transmit`], but no delivery event is
    /// scheduled. Returns the instant the frame would have arrived.
    pub fn transmit_dropped(&self, sim: &mut Sim, wire_bytes: u64) -> SimTime {
        let serialize = self.bandwidth.transfer_time(wire_bytes);
        self.tx.borrow_mut().consume(sim, serialize) + self.latency
    }

    /// Bytes-per-second utilization bookkeeping: fraction of `[from, to)`
    /// the transmitter was busy.
    pub fn utilization_between(&self, from: SimTime, to: SimTime) -> f64 {
        self.tx.borrow().meter().utilization_between(from, to)
    }

    /// The transmitter resource (for tests and detailed accounting).
    pub fn transmitter(&self) -> ResourceRef {
        Rc::clone(&self.tx)
    }
}

/// A full-duplex link: two independent directions.
#[derive(Debug, Clone)]
pub struct DuplexLink {
    /// Direction A → B.
    pub forward: Link,
    /// Direction B → A.
    pub reverse: Link,
}

impl DuplexLink {
    /// Creates a symmetric duplex link.
    pub fn new(name: &str, bandwidth: Bandwidth, latency: SimDuration) -> Self {
        DuplexLink {
            forward: Link::new(&format!("{name}-fwd"), bandwidth, latency),
            reverse: Link::new(&format!("{name}-rev"), bandwidth, latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn frames_serialize_back_to_back() {
        let mut sim = Sim::new();
        let link = Link::new("t", Bandwidth::from_gbps(1), SimDuration::from_micros(10));
        let deliveries = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let d = Rc::clone(&deliveries);
            link.transmit(&mut sim, 1_500, move |sim| {
                d.borrow_mut().push(sim.now().as_nanos());
            });
        }
        sim.run();
        // 12us serialization each, 10us latency: 22, 34, 46.
        assert_eq!(*deliveries.borrow(), vec![22_000, 34_000, 46_000]);
    }

    #[test]
    fn duplex_directions_are_independent() {
        let mut sim = Sim::new();
        let link = DuplexLink::new("d", Bandwidth::from_gbps(1), SimDuration::ZERO);
        let fwd_done = Rc::new(RefCell::new(0u64));
        let rev_done = Rc::new(RefCell::new(0u64));
        let f = Rc::clone(&fwd_done);
        let r = Rc::clone(&rev_done);
        link.forward.transmit(&mut sim, 1_500, move |sim| {
            *f.borrow_mut() = sim.now().as_nanos()
        });
        link.reverse.transmit(&mut sim, 1_500, move |sim| {
            *r.borrow_mut() = sim.now().as_nanos()
        });
        sim.run();
        // Both finish at 12us — no shared serialization.
        assert_eq!(*fwd_done.borrow(), 12_000);
        assert_eq!(*rev_done.borrow(), 12_000);
    }

    #[test]
    fn transmit_returns_the_delivery_instant() {
        let mut sim = Sim::new();
        let link = Link::new("p", Bandwidth::from_gbps(1), SimDuration::from_micros(25));
        let observed = Rc::new(RefCell::new(Vec::new()));
        let mut predicted = Vec::new();
        for bytes in [64u64, 1_500, 9_000] {
            let o = Rc::clone(&observed);
            predicted.push(
                link.transmit(&mut sim, bytes, move |sim| o.borrow_mut().push(sim.now()))
                    .as_nanos(),
            );
        }
        sim.run();
        let observed: Vec<u64> = observed.borrow().iter().map(|t| t.as_nanos()).collect();
        assert_eq!(predicted, observed);
    }

    #[test]
    fn idle_gap_restarts_serialization_immediately() {
        let mut sim = Sim::new();
        let link = Link::new("g", Bandwidth::from_gbps(1), SimDuration::from_micros(10));
        let times = Rc::new(RefCell::new(Vec::new()));
        let t1 = Rc::clone(&times);
        link.transmit(&mut sim, 1_500, move |sim| {
            t1.borrow_mut().push(sim.now().as_nanos());
        });
        // Submit the second frame 50 us later, long after the wire idles:
        // it must serialize from its submission time, not queue-extend.
        let l2 = link.clone();
        let t2 = Rc::clone(&times);
        sim.schedule(SimDuration::from_micros(50), move |sim| {
            l2.transmit(sim, 1_500, move |sim| {
                t2.borrow_mut().push(sim.now().as_nanos());
            });
        });
        sim.run();
        // 12 us serialization + 10 us latency; second starts at 50 us.
        assert_eq!(*times.borrow(), vec![22_000, 72_000]);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_link_is_rejected() {
        // `Bandwidth::from_bps` already rejects zero at construction; the
        // assert in `Link::new` is defense-in-depth for any future
        // constructor that slips a zero rate through.
        let _ = Link::new("z", Bandwidth::from_bps(0), SimDuration::ZERO);
    }

    #[test]
    fn sustained_rate_matches_line_rate() {
        let mut sim = Sim::new();
        let link = Link::new("r", Bandwidth::from_gbps(1), SimDuration::from_micros(5));
        let n = 1_000u64;
        for _ in 0..n {
            link.transmit(&mut sim, 1_250, |_| {});
        }
        let end = sim.run();
        // 1250 B at 1 Gbps = 10 us per frame; n frames + 5 us latency.
        assert_eq!(end.as_nanos(), n * 10_000 + 5_000);
        let util = link.utilization_between(SimTime::ZERO, SimTime::from_nanos(n * 10_000));
        assert!((util - 1.0).abs() < 1e-9);
    }
}
