//! Message framing over byte-stream sockets.
//!
//! `ioat-netsim` sockets deliver byte counts, not contents (the simulator
//! never materializes payloads). Applications need message boundaries and
//! typed metadata, so a framed [`channel`] pairs a socket with a shared
//! in-order metadata queue: the sender enqueues `(wire_bytes, meta)` and
//! streams `wire_bytes`; the receiver reassembles deliveries and pops the
//! metadata when a full message has arrived. TCP's in-order delivery
//! guarantees the queue and the byte stream stay in lockstep.

use crate::socket::{Socket, SocketEvent};
use ioat_simcore::Sim;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One direction of a framed channel.
pub struct MsgSender<T> {
    socket: Socket,
    queue: Rc<RefCell<VecDeque<(u64, T)>>>,
}

impl<T> std::fmt::Debug for MsgSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgSender")
            .field("queued", &self.queue.borrow().len())
            .finish()
    }
}

impl<T: 'static> MsgSender<T> {
    /// Sends a message of `wire_bytes` carrying `meta`.
    ///
    /// # Panics
    ///
    /// Panics if `wire_bytes` is zero — every message must occupy the
    /// wire, or framing would desynchronize.
    pub fn send(&self, sim: &mut Sim, wire_bytes: u64, meta: T) {
        assert!(wire_bytes > 0, "messages must have a wire size");
        self.queue.borrow_mut().push_back((wire_bytes, meta));
        self.socket.send(sim, wire_bytes);
    }

    /// The underlying socket.
    pub fn socket(&self) -> &Socket {
        &self.socket
    }
}

/// Builds a framed channel over the socket pair `(tx, rx)`: the returned
/// sender queues messages; `on_msg` fires on the receiver side once per
/// complete message.
///
/// The receiver side installs the socket's event handler, so a socket can
/// carry either a framed channel or a raw handler, not both. For duplex
/// messaging, build one channel per direction (each endpoint of a
/// connection has its own handler slot on its own stack).
pub fn channel<T, F>(tx: Socket, rx: Socket, mut on_msg: F) -> MsgSender<T>
where
    T: 'static,
    F: FnMut(&mut Sim, T) + 'static,
{
    let queue: Rc<RefCell<VecDeque<(u64, T)>>> = Rc::new(RefCell::new(VecDeque::new()));
    let rx_queue = Rc::clone(&queue);
    let rx2 = rx.clone();
    let mut partial = 0u64;
    rx.set_handler(move |sim, ev| {
        if let SocketEvent::Delivered(bytes) = ev {
            partial += bytes;
            let mut completed_any = false;
            loop {
                let ready = {
                    let q = rx_queue.borrow();
                    match q.front() {
                        Some(&(need, _)) if partial >= need => Some(need),
                        _ => None,
                    }
                };
                let Some(need) = ready else { break };
                partial -= need;
                let (_, meta) = rx_queue.borrow_mut().pop_front().expect("checked above");
                completed_any = true;
                on_msg(sim, meta);
            }
            // Mid-message deliveries must not consume the application's
            // read credit: keep reading until a full message lands (a
            // no-op for endpoints in tight-receive-loop mode).
            if !completed_any {
                rx2.post_recv(sim);
            }
        }
    });
    MsgSender { socket: tx, queue }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IoatConfig, SocketOpts, StackParams};
    use crate::socket::socket_pair;
    use crate::stack::HostStack;
    use crate::tcp::ConnId;
    use ioat_simcore::time::Bandwidth;
    use ioat_simcore::SimDuration;

    fn setup() -> (Sim, Socket, Socket) {
        let sim = Sim::new();
        let a = HostStack::new("a", 2, StackParams::default(), IoatConfig::disabled());
        let b = HostStack::new("b", 2, StackParams::default(), IoatConfig::disabled());
        let (sa, sb) = socket_pair(
            &a,
            &b,
            Bandwidth::from_gbps(1),
            SimDuration::from_micros(10),
            SocketOpts::tuned(),
            ConnId(1),
        );
        (sim, sa, sb)
    }

    #[test]
    fn messages_arrive_in_order_with_metadata() {
        let (mut sim, sa, sb) = setup();
        let got: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let g = Rc::clone(&got);
        let sender = channel(sa, sb, move |_sim, meta: u32| g.borrow_mut().push(meta));
        sender.send(&mut sim, 1_000, 1);
        sender.send(&mut sim, 50_000, 2);
        sender.send(&mut sim, 3, 3);
        sim.run();
        assert_eq!(*got.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn small_messages_batched_in_one_delivery_all_pop() {
        let (mut sim, sa, sb) = setup();
        let got: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let g = Rc::clone(&got);
        let sender = channel(sa, sb, move |_sim, meta: u32| g.borrow_mut().push(meta));
        for i in 0..20 {
            sender.send(&mut sim, 100, i);
        }
        sim.run();
        assert_eq!(got.borrow().len(), 20);
        assert_eq!(*got.borrow(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "wire size")]
    fn zero_byte_messages_are_rejected() {
        let (mut sim, sa, sb) = setup();
        let sender = channel(sa, sb, move |_sim, _meta: ()| {});
        sender.send(&mut sim, 0, ());
    }
}
