//! Configuration: socket options, I/OAT feature flags and stack cost
//! parameters.

use ioat_memsim::{CopyParams, DmaConfig};
use ioat_simcore::SimDuration;

/// Standard Ethernet MTU.
pub const MTU_STANDARD: u64 = 1500;
/// The paper's "jumbo" MTU for Case 4 (§4.3: "we increased the MTU-size to
/// 2048 bytes").
pub const MTU_JUMBO: u64 = 2048;
/// TCP + IP header bytes carried inside the MTU.
pub const TCPIP_HEADERS: u64 = 40;

/// Per-connection socket options — the knobs the paper sweeps as
/// "Cases 1–5" in §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SocketOpts {
    /// Send socket buffer in bytes; bounds the sender's in-flight window.
    pub sndbuf: u64,
    /// Receive socket buffer in bytes; bounds the advertised window.
    pub rcvbuf: u64,
    /// TCP segmentation offload: the host hands the NIC buffers larger
    /// than the MTU and the controller cuts the frames.
    pub tso: bool,
    /// Maximum transmission unit in bytes.
    pub mtu: u64,
    /// Receive interrupt coalescing (one interrupt for several frames).
    pub coalescing: bool,
    /// Zero-copy send (`sendfile()`): skip the user→kernel copy.
    pub sendfile: bool,
    /// Application read size: how many bytes each `recv()` drains; also
    /// the kernel→user copy granularity.
    pub read_size: u64,
}

impl SocketOpts {
    /// Case 1: default socket options, no optimizations.
    pub fn case1() -> Self {
        SocketOpts {
            sndbuf: 64 * 1024,
            rcvbuf: 64 * 1024,
            tso: false,
            mtu: MTU_STANDARD,
            coalescing: false,
            sendfile: false,
            read_size: 16 * 1024,
        }
    }

    /// Case 2: Case 1 plus 1 MB socket buffers.
    pub fn case2() -> Self {
        SocketOpts {
            sndbuf: 1024 * 1024,
            rcvbuf: 1024 * 1024,
            read_size: 64 * 1024,
            ..Self::case1()
        }
    }

    /// Case 3: Case 2 plus TCP segmentation offload.
    pub fn case3() -> Self {
        SocketOpts {
            tso: true,
            ..Self::case2()
        }
    }

    /// Case 4: Case 3 plus jumbo (2048-byte) frames.
    pub fn case4() -> Self {
        SocketOpts {
            mtu: MTU_JUMBO,
            ..Self::case3()
        }
    }

    /// Case 5: Case 4 plus receive interrupt coalescing.
    pub fn case5() -> Self {
        SocketOpts {
            coalescing: true,
            ..Self::case4()
        }
    }

    /// The configuration used when the paper is not sweeping socket
    /// options (all optimizations on).
    pub fn tuned() -> Self {
        Self::case5()
    }

    /// The five cases in sweep order, with their paper labels.
    pub fn all_cases() -> [(&'static str, SocketOpts); 5] {
        [
            ("Case 1", Self::case1()),
            ("Case 2", Self::case2()),
            ("Case 3", Self::case3()),
            ("Case 4", Self::case4()),
            ("Case 5", Self::case5()),
        ]
    }

    /// Maximum TCP payload per frame under these options.
    pub fn mss(&self) -> u64 {
        self.mtu - TCPIP_HEADERS
    }

    /// The advertised receive window.
    pub fn window(&self) -> u64 {
        self.rcvbuf
    }
}

impl Default for SocketOpts {
    fn default() -> Self {
        Self::tuned()
    }
}

/// Which I/OAT features are active on a node (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IoatConfig {
    /// Offload kernel→user copies to the asynchronous DMA engine.
    pub dma_engine: bool,
    /// Split-header receive placement: headers land in a small dedicated
    /// ring, payload goes to separate buffers the CPU never touches during
    /// protocol processing.
    pub split_header: bool,
    /// Multiple receive queues with flow affinity. The paper could not
    /// evaluate this ("currently disabled in Linux"); we implement it for
    /// the ablation bench.
    pub multi_queue: bool,
}

impl IoatConfig {
    /// Traditional communication — the paper's "non-I/OAT" baseline.
    pub fn disabled() -> Self {
        IoatConfig::default()
    }

    /// Only the copy engine (the paper's "I/OAT-DMA" configuration in
    /// Fig. 7).
    pub fn dma_only() -> Self {
        IoatConfig {
            dma_engine: true,
            ..Self::default()
        }
    }

    /// DMA engine + split headers — the paper's "I/OAT" / "I/OAT-SPLIT"
    /// configuration (multi-queue stays off, as in the Linux kernel the
    /// paper used).
    pub fn full() -> Self {
        IoatConfig {
            dma_engine: true,
            split_header: true,
            multi_queue: false,
        }
    }

    /// Everything on, including the multi-queue feature the paper could
    /// not measure.
    pub fn full_with_multi_queue() -> Self {
        IoatConfig {
            dma_engine: true,
            split_header: true,
            multi_queue: true,
        }
    }

    /// True when any feature is on.
    pub fn any(&self) -> bool {
        self.dma_engine || self.split_header || self.multi_queue
    }

    /// Short label used in result tables.
    pub fn label(&self) -> &'static str {
        match (self.dma_engine, self.split_header, self.multi_queue) {
            (false, false, false) => "non-I/OAT",
            (true, false, false) => "I/OAT-DMA",
            (true, true, false) => "I/OAT",
            (true, true, true) => "I/OAT+MQ",
            _ => "I/OAT-custom",
        }
    }
}

/// Cost parameters of the host stack model.
///
/// Defaults are calibrated against the paper's testbed (dual-core dual
/// 3.46 GHz Xeon, 2 MB L2) and the TCP/IP processing characterizations the
/// paper cites (\[11], \[15], \[16]): receive-side processing costs a few
/// microseconds per packet, dominated by memory accesses, and goes up
/// sharply when connection/header state misses in cache.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StackParams {
    /// Fixed CPU cost per received packet (demux, TCP state machine),
    /// excluding the cache-dependent accesses below.
    pub proto_base: SimDuration,
    /// Cost to take one interrupt (context save, handler entry).
    pub irq_cost: SimDuration,
    /// NIC→kernel bookkeeping per frame inside the handler (ring
    /// manipulation, skb alloc).
    pub irq_per_frame: SimDuration,
    /// Cost of a syscall entry/exit (`recv`, `send`).
    pub syscall: SimDuration,
    /// Cost to wake and dispatch a blocked thread (scheduler + context
    /// switch).
    pub wake: SimDuration,
    /// Sender CPU cost to cut one MSS-sized segment when TSO is off.
    pub segment_cost: SimDuration,
    /// Sender CPU cost per large TSO chunk handed to the NIC.
    pub tso_chunk_cost: SimDuration,
    /// TSO chunk size in bytes.
    pub tso_chunk: u64,
    /// Bytes of hot per-connection state touched on every packet.
    pub conn_state_bytes: u64,
    /// Bytes of packet headers the CPU reads per packet.
    pub header_bytes: u64,
    /// Size of the dedicated split-header ring (stays cache-resident).
    pub header_ring_bytes: u64,
    /// Cost per cache line access that hits (pipelined L2 hit).
    pub line_hit: SimDuration,
    /// Cost per *dependent* cache line miss on the protocol path (full
    /// memory latency; these accesses serialize).
    pub line_miss: SimDuration,
    /// Scheduler contention: fractional extra wake cost per runnable
    /// receive thread beyond the core count (run-queue lengths, context
    /// switch cache damage). Drives the Fig. 4 CPU growth with thread
    /// count.
    pub sched_contention: f64,
    /// Extra per-frame stall on the receive path once the undelivered
    /// backlog overflows the L2's headroom: without split headers the
    /// handler walks skb chains and headers interleaved with DMA-cold
    /// payload, so every step is a dependent memory stall. Split-header
    /// placement is immune (headers live in their own hot ring).
    /// Magnitude calibrated against Fig. 7b.
    pub pollution_stall_per_frame: SimDuration,
    /// CPU `memcpy` cost model for kernel↔user copies.
    pub copy: CopyParams,
    /// DMA engine cost model.
    pub dma: DmaConfig,
    /// Minimum kernel→user copy size offloaded to the DMA engine; smaller
    /// copies stay on the CPU (mirrors the `net_dma` sysctl threshold).
    pub dma_min_bytes: u64,
    /// ACK processing cost on the sender.
    pub ack_cost: SimDuration,
    /// Max frames folded into one coalesced interrupt.
    pub coalesce_max_frames: u32,
    /// Max time the NIC delays an interrupt while coalescing.
    pub coalesce_delay: SimDuration,
    /// Initial retransmission timeout. Only consulted when a fault plan
    /// injects loss; LAN-tuned so recovery fits the measurement windows
    /// (a real kernel's 200 ms floor would dwarf the 150 ms experiment).
    pub rto_initial: SimDuration,
    /// Upper bound on the exponentially backed-off RTO.
    pub rto_max: SimDuration,
}

impl Default for StackParams {
    fn default() -> Self {
        StackParams {
            proto_base: SimDuration::from_nanos(750),
            irq_cost: SimDuration::from_nanos(2_000),
            irq_per_frame: SimDuration::from_nanos(200),
            syscall: SimDuration::from_nanos(700),
            wake: SimDuration::from_nanos(1_500),
            segment_cost: SimDuration::from_nanos(450),
            tso_chunk_cost: SimDuration::from_nanos(1_400),
            tso_chunk: 64 * 1024,
            conn_state_bytes: 320,
            header_bytes: 128,
            header_ring_bytes: 8 * 1024,
            line_hit: SimDuration::from_nanos(5),
            line_miss: SimDuration::from_nanos(90),
            sched_contention: 0.12,
            pollution_stall_per_frame: SimDuration::from_nanos(4_500),
            copy: CopyParams::default(),
            // Kernel-context engine costs: the per-request descriptor
            // write is far cheaper than the user-level channel
            // acquisition Fig. 6 measures (DmaConfig::default covers that
            // case).
            dma: DmaConfig {
                startup: SimDuration::from_nanos(300),
                ..DmaConfig::default()
            },
            dma_min_bytes: 1024,
            ack_cost: SimDuration::from_nanos(350),
            coalesce_max_frames: 8,
            coalesce_delay: SimDuration::from_micros(40),
            rto_initial: SimDuration::from_millis(3),
            rto_max: SimDuration::from_millis(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_build_on_each_other() {
        let [c1, c2, c3, c4, c5] = SocketOpts::all_cases().map(|(_, c)| c);
        assert!(c2.sndbuf > c1.sndbuf && c2.rcvbuf > c1.rcvbuf);
        assert!(!c2.tso && c3.tso);
        assert_eq!(c3.mtu, MTU_STANDARD);
        assert_eq!(c4.mtu, MTU_JUMBO);
        assert!(!c4.coalescing && c5.coalescing);
        assert_eq!(SocketOpts::tuned(), c5);
    }

    #[test]
    fn mss_subtracts_headers() {
        assert_eq!(SocketOpts::case1().mss(), 1460);
        assert_eq!(SocketOpts::case4().mss(), 2008);
    }

    #[test]
    fn ioat_labels() {
        assert_eq!(IoatConfig::disabled().label(), "non-I/OAT");
        assert_eq!(IoatConfig::dma_only().label(), "I/OAT-DMA");
        assert_eq!(IoatConfig::full().label(), "I/OAT");
        assert_eq!(IoatConfig::full_with_multi_queue().label(), "I/OAT+MQ");
        assert!(!IoatConfig::disabled().any());
        assert!(IoatConfig::full().any());
    }

    #[test]
    fn default_params_are_positive() {
        let p = StackParams::default();
        assert!(p.proto_base.as_nanos() > 0);
        assert!(p.line_miss > p.line_hit);
        assert!(p.pollution_stall_per_frame > p.proto_base);
        assert!(p.tso_chunk > 0 && p.dma_min_bytes > 0);
    }
}
